"""Enumeration of connected edge subsets and subtrees.

CT-Index exhaustively enumerates every *tree-shaped* substructure of up
to a size limit (§3).  We enumerate connected edge subsets uniquely with
the ESU algorithm (Wernicke 2006) applied to the line graph — two edges
are adjacent iff they share an endpoint, and a set of edges induces a
connected subgraph iff it is connected in the line graph.  ESU's
root-anchored, exclusive-neighborhood extension discipline guarantees
each subset is produced exactly once, with no global "seen" table.

For trees, subsets that acquire a cycle are pruned immediately: adding
edges never removes a cycle, and every connected subset of a tree's
edge set is itself a tree, so the pruned search still reaches every
subtree exactly once.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.features.kernels import csr_adjacency, csr_edge_list
from repro.graphs.graph import Graph
from repro.utils.budget import Budget

__all__ = ["connected_edge_subsets", "enumerate_trees"]

Edge = tuple[int, int]


def connected_edge_subsets(
    graph: Graph,
    max_edges: int,
    trees_only: bool = False,
    budget: Budget | None = None,
) -> Iterator[tuple[Edge, ...]]:
    """Yield every connected edge subset of size ``1..max_edges`` once.

    Subsets are yielded as tuples of ``(u, v)`` edges with ``u < v``, in
    discovery order.  With ``trees_only`` the enumeration is restricted
    to acyclic subsets (subtrees).
    """
    if max_edges < 1:
        return
    if csr_adjacency(graph) is not None:
        # The ESU core only touches the graph through its edge list;
        # extract it in one vectorized pass.  Row order matches
        # ``edges()`` on the same CSR graph, so discovery order is
        # byte-identical.
        edges: list[Edge] = csr_edge_list(graph)
    else:
        edges = [(u, v) if u < v else (v, u) for u, v in graph.edges()]
    incident: dict[int, list[int]] = {}
    for index, (u, v) in enumerate(edges):
        incident.setdefault(u, []).append(index)
        incident.setdefault(v, []).append(index)
    neighbors: list[set[int]] = [
        {other for w in edge for other in incident[w] if other != index}
        for index, edge in enumerate(edges)
    ]

    subset: list[int] = []
    subset_ids: set[int] = set()
    subset_vertices: set[int] = set()

    def extend(hood: set[int], ext: set[int], root: int) -> Iterator[tuple[Edge, ...]]:
        """ESU extension step.

        ``hood`` is the exact line-graph neighborhood of the current
        subset (adjacent edge ids, subset excluded); ``ext`` the ESU
        extension set.  A candidate's *exclusive* neighbors — adjacent
        to it but to no current subset edge — join the extension, so
        each subset is reachable along exactly one generation path.
        """
        yield tuple(edges[i] for i in subset)
        if len(subset) == max_edges:
            return
        ext_work = set(ext)
        while ext_work:
            candidate = ext_work.pop()
            u, v = edges[candidate]
            if trees_only and u in subset_vertices and v in subset_vertices:
                continue
            exclusive = {
                x
                for x in neighbors[candidate]
                if x > root and x not in hood and x not in subset_ids
            }
            new_hood = (hood | neighbors[candidate]) - subset_ids
            new_hood.discard(candidate)
            subset.append(candidate)
            subset_ids.add(candidate)
            added_vertices = {u, v} - subset_vertices
            subset_vertices.update(added_vertices)
            yield from extend(new_hood, ext_work | exclusive, root)
            subset.pop()
            subset_ids.discard(candidate)
            subset_vertices.difference_update(added_vertices)

    for root in range(len(edges)):
        if budget is not None:
            budget.check()
        subset.append(root)
        subset_ids.add(root)
        subset_vertices.update(edges[root])
        hood = set(neighbors[root])
        ext = {x for x in neighbors[root] if x > root}
        yield from extend(hood, ext, root)
        subset.pop()
        subset_ids.discard(root)
        subset_vertices.clear()


def enumerate_trees(
    graph: Graph, max_edges: int, budget: Budget | None = None
) -> Iterator[tuple[Edge, ...]]:
    """Yield every subtree (acyclic connected edge subset) up to the limit."""
    yield from connected_edge_subsets(graph, max_edges, trees_only=True, budget=budget)
