"""CSR-native feature-enumeration kernels (the query/build hot path).

The enumeration modules in this package were written against the dict
:class:`~repro.graphs.graph.Graph` API — ``neighbors()`` tuples, one
``label()`` call per visit — and keep working unchanged on a
:class:`~repro.graphs.csr.CSRGraph` through its read-API parity.  That
parity walk, however, pays a method call and a tuple-cache probe per
DFS step.  The kernels below run the *same* enumerations directly over
the CSR arrays: iterative DFS over ``indptr``/``indices`` with
preallocated int stacks, per-vertex label *ids* instead of label
objects, and canonical-label lookups memoized per id-sequence across
the whole run.

Byte-identity contract: a CSR graph's neighbor runs are sorted
ascending, and ``CSRGraph.neighbors()`` returns exactly those runs —
so a kernel iterating an ``indices`` slice visits neighbors in the
same order the dict-walk does on the same ``CSRGraph``.  Every kernel
therefore produces the *identical* result structure, including dict
insertion order and generator yield order, which is what keeps
canonical sweep digests byte-identical across feature cores (pinned by
the parity suite in ``tests/test_feature_kernels.py``).

The active core is selected by the ``REPRO_FEATURE_CORE`` environment
variable (``csr`` by default, ``dict`` to force the legacy walk),
surfaced on the CLI as ``--feature-core``.  The dispatch lives in the
feature modules themselves: a kernel is used only when the host graph
actually carries CSR arrays, so dict ``Graph`` inputs always take the
dict-walk regardless of the toggle.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.canonical.paths import path_canonical
from repro.utils.budget import Budget

__all__ = [
    "FEATURE_CORE_ENV",
    "FEATURE_CORES",
    "active_feature_core",
    "csr_adjacency",
    "csr_edge_list",
    "csr_path_features",
    "csr_simple_cycles",
]

#: Environment variable selecting the feature-enumeration core
#: (mirrors :data:`repro.core.knobs.FEATURE_CORE`, the declaration of
#: record; duplicated as a literal to avoid a package import cycle).
FEATURE_CORE_ENV = "REPRO_FEATURE_CORE"
#: Recognized core names, default first.
FEATURE_CORES = ("csr", "dict")


def active_feature_core() -> str:
    """The selected feature core: ``csr`` (default) or ``dict``.

    Delegates to :data:`repro.core.knobs.FEATURE_CORE` — read from the
    environment on every call, mirroring
    :func:`repro.graphs.csr.active_graph_core`, so tests and the CLI
    can flip cores without touching module state; unrecognized values
    fall back to the default.  Imported lazily: the index modules pull
    this module in during ``repro.core`` package init.
    """
    from repro.core.knobs import FEATURE_CORE

    return FEATURE_CORE.active()


def csr_adjacency(graph) -> tuple[np.ndarray, np.ndarray] | None:
    """*graph*'s ``(indptr, indices)`` arrays, or ``None`` off-core.

    The probe the feature modules dispatch on: it answers only when the
    kernels should run — the graph carries CSR arrays *and* the active
    feature core is ``csr``.
    """
    if active_feature_core() != "csr":
        return None
    arrays = getattr(graph, "adjacency_arrays", None)
    if arrays is None:
        return None
    return arrays()


# ----------------------------------------------------------------------
# paths (Grapes / GGSX / gCode)
# ----------------------------------------------------------------------


def csr_path_features(
    graph,
    max_edges: int,
    include_vertices: bool = True,
    budget: Budget | None = None,
) -> dict:
    """CSR twin of :func:`repro.features.paths.path_features`.

    Same enumeration, iteratively: one DFS frame per path edge held in
    preallocated parallel stacks (vertex, resume cursor, label id), the
    canonical label computed once per distinct label-id sequence and
    memoized for the rest of the run.  Output is byte-identical to the
    dict-walk on the same graph, down to dict insertion order.
    """
    # Local import: paths.py imports this module for the dispatch probe.
    from repro.features.paths import PathOccurrences

    if max_edges < 0:
        raise ValueError(f"max_edges must be non-negative, got {max_edges}")
    indptr_arr, indices_arr = graph.adjacency_arrays()
    indptr: list[int] = indptr_arr.tolist()
    indices: list[int] = indices_arr.tolist()
    label_ids: list[int] = graph.label_ids_array().tolist()
    table = graph.label_table
    order = len(label_ids)

    features: dict[tuple, PathOccurrences] = {}
    #: label-id sequence -> canonical label tuple, shared across starts.
    canon_of: dict[tuple[int, ...], tuple] = {}
    on_path = bytearray(order)
    # Preallocated DFS stacks: vertex, resume cursor into ``indices``,
    # and the label-id run of the current path (depth == edges so far).
    vstack = [0] * (max_edges + 1)
    cstack = [0] * (max_edges + 1)
    lstack = [0] * (max_edges + 1)

    def record(ids: tuple[int, ...], start: int) -> None:
        canonical = canon_of.get(ids)
        if canonical is None:
            canonical = canon_of[ids] = path_canonical(
                [table[i] for i in ids]
            )
        entry = features.get(canonical)
        if entry is None:
            entry = features[canonical] = PathOccurrences()
        entry.count += 1
        entry.starts.add(start)

    for start in range(order):
        if budget is not None:
            budget.check()
        if include_vertices:
            record((label_ids[start],), start)
        if max_edges == 0:
            continue
        on_path[start] = 1
        depth = 0
        vstack[0] = start
        cstack[0] = indptr[start]
        lstack[0] = label_ids[start]
        while depth >= 0:
            v = vstack[depth]
            cursor = cstack[depth]
            end = indptr[v + 1]
            descended = False
            while cursor < end:
                w = indices[cursor]
                cursor += 1
                if on_path[w]:
                    continue
                lid = label_ids[w]
                lstack[depth + 1] = lid
                record(tuple(lstack[: depth + 2]), start)
                if depth + 1 < max_edges:
                    cstack[depth] = cursor
                    depth += 1
                    on_path[w] = 1
                    vstack[depth] = w
                    cstack[depth] = indptr[w]
                    descended = True
                    break
            if descended:
                continue
            on_path[v] = 0
            depth -= 1
    return features


# ----------------------------------------------------------------------
# cycles (CT-Index / Tree+Δ)
# ----------------------------------------------------------------------


def csr_simple_cycles(
    graph, max_edges: int, budget: Budget | None = None
) -> Iterator[tuple[int, ...]]:
    """CSR twin of :func:`repro.features.cycles.enumerate_simple_cycles`.

    Identical anchored enumeration over the raw ``indptr``/``indices``
    lists; yields the same vertex tuples in the same order as the
    dict-walk on the same graph.
    """
    if max_edges < 3:
        return
    indptr_arr, indices_arr = graph.adjacency_arrays()
    indptr: list[int] = indptr_arr.tolist()
    indices: list[int] = indices_arr.tolist()
    order = len(indptr) - 1

    on_path = bytearray(order)
    # One frame per path vertex: the vertex and its resume cursor.
    path = [0] * max_edges
    cstack = [0] * max_edges

    for anchor in range(order):
        if budget is not None:
            budget.check()
        on_path[anchor] = 1
        depth = 0  # index of the path's last vertex
        path[0] = anchor
        cstack[0] = indptr[anchor]
        while depth >= 0:
            v = path[depth]
            cursor = cstack[depth]
            end = indptr[v + 1]
            descended = False
            while cursor < end:
                w = indices[cursor]
                cursor += 1
                if w == anchor:
                    # Closing edge: ≥ 3 vertices and a fixed direction.
                    if depth >= 2 and path[1] < path[depth]:
                        yield tuple(path[: depth + 1])
                    continue
                if w < anchor or on_path[w]:
                    continue
                if depth + 1 == max_edges:
                    continue  # one more vertex would exceed the limit
                cstack[depth] = cursor
                depth += 1
                on_path[w] = 1
                path[depth] = w
                cstack[depth] = indptr[w]
                descended = True
                break
            if descended:
                continue
            on_path[v] = 0
            depth -= 1
    return


# ----------------------------------------------------------------------
# connected edge subsets (CT-Index trees)
# ----------------------------------------------------------------------


def csr_edge_list(graph) -> list[tuple[int, int]]:
    """All edges as ``(u, v)`` tuples with ``u < v``, in one shot.

    The ESU enumeration in :mod:`repro.features.trees` only touches the
    host graph through its edge list; extracting it vectorized (instead
    of the per-vertex ``edges()`` generator) is the whole CSR kernel
    for trees.  Row order — ascending ``u``, then ascending ``v`` —
    matches ``CSRGraph.edges()`` exactly, so the downstream enumeration
    is byte-identical.
    """
    indptr, indices = graph.adjacency_arrays()
    if not indices.shape[0]:
        return []
    rows = np.repeat(
        np.arange(indptr.shape[0] - 1, dtype=np.int64), np.diff(indptr)
    )
    keep = rows < indices
    return list(zip(rows[keep].tolist(), indices[keep].tolist()))
