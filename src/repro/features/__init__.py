"""Exhaustive feature enumeration (paper §2.2, extraction approach (i)).

Grapes, GraphGrepSX, CT-Index and gCode all *exhaustively enumerate*
size-limited substructures of every graph:

* :mod:`~repro.features.paths` — all simple label paths up to a length
  limit, with occurrence counts and start locations (Grapes, GGSX,
  gCode);
* :mod:`~repro.features.trees` — all subtrees up to an edge limit
  (CT-Index), built on a line-graph ESU enumeration of connected edge
  subsets;
* :mod:`~repro.features.cycles` — all simple cycles up to an edge limit
  (CT-Index, Tree+Δ's Δ features).

Feature *size* is the number of edges throughout, as in the paper.
"""

from repro.features.cycles import enumerate_simple_cycles
from repro.features.kernels import (
    FEATURE_CORE_ENV,
    FEATURE_CORES,
    active_feature_core,
)
from repro.features.paths import PathOccurrences, path_features
from repro.features.trees import connected_edge_subsets, enumerate_trees

__all__ = [
    "path_features",
    "PathOccurrences",
    "enumerate_trees",
    "connected_edge_subsets",
    "enumerate_simple_cycles",
    "FEATURE_CORE_ENV",
    "FEATURE_CORES",
    "active_feature_core",
]
