"""Enumeration of simple cycles up to a length limit.

CT-Index combines tree features with *simple cycle* features (§3), and
Tree+Δ derives its Δ features from the simple cycles of query graphs.
The enumeration below produces each cycle exactly once using the
classic anchored scheme: a cycle is reported from its minimum-id vertex
(the anchor), growing simple paths through vertices larger than the
anchor, and accepting a closure back to the anchor only when the second
path vertex is smaller than the last — fixing one of the two traversal
directions.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.features.kernels import csr_adjacency, csr_simple_cycles
from repro.graphs.graph import Graph
from repro.utils.budget import Budget

__all__ = ["enumerate_simple_cycles"]


def enumerate_simple_cycles(
    graph: Graph, max_edges: int, budget: Budget | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield each simple cycle of ``3..max_edges`` edges exactly once.

    Cycles are yielded as vertex tuples in cyclic order, starting at the
    cycle's minimum-id vertex.  A cycle of *k* vertices has *k* edges,
    so ``max_edges`` bounds both.
    """
    if csr_adjacency(graph) is not None:
        # CSR host under the csr feature core: same cycles, same order.
        yield from csr_simple_cycles(graph, max_edges, budget=budget)
        return
    if max_edges < 3:
        return
    on_path = [False] * graph.order
    path: list[int] = []

    def search(anchor: int, vertex: int) -> Iterator[tuple[int, ...]]:
        for neighbor in graph.neighbors(vertex):
            if neighbor == anchor:
                # Closing edge: need ≥ 3 vertices and a fixed direction.
                if len(path) >= 3 and path[1] < path[-1]:
                    yield tuple(path)
                continue
            if neighbor < anchor or on_path[neighbor]:
                continue
            if len(path) == max_edges:
                continue  # adding a vertex would exceed the edge limit
            on_path[neighbor] = True
            path.append(neighbor)
            yield from search(anchor, neighbor)
            path.pop()
            on_path[neighbor] = False

    for anchor in graph.vertices():
        if budget is not None:
            budget.check()
        on_path[anchor] = True
        path.append(anchor)
        yield from search(anchor, anchor)
        path.pop()
        on_path[anchor] = False
