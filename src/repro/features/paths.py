"""Exhaustive simple-path enumeration with counts and locations.

Grapes and GraphGrepSX both index every simple path of up to a maximum
number of edges, found by depth-first search from every vertex (§3).
Grapes additionally records *location information*: the ids of the
vertices where each path starts, plus an occurrence counter per graph.

Counting semantics: every *directed traversal* of a path counts one
occurrence, so a (non-palindromic) path instance contributes two — once
from each endpoint.  What matters for filtering correctness is that the
same convention applies to data graphs and queries: a monomorphism maps
traversals injectively, hence query counts never exceed data counts for
contained queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.canonical.paths import path_canonical
from repro.features.kernels import csr_adjacency, csr_path_features
from repro.graphs.graph import Graph
from repro.utils.budget import Budget

__all__ = ["PathOccurrences", "path_features"]


@dataclass(slots=True)
class PathOccurrences:
    """Aggregate of one path feature inside one graph."""

    #: Number of directed traversals realizing the feature.
    count: int = 0
    #: Vertices at which some traversal of the feature starts.
    starts: set[int] = field(default_factory=set)

    def record(self, start: int) -> None:
        self.count += 1
        self.starts.add(start)


def path_features(
    graph: Graph,
    max_edges: int,
    include_vertices: bool = True,
    budget: Budget | None = None,
) -> dict[tuple, PathOccurrences]:
    """Enumerate all simple paths of ``0..max_edges`` edges in *graph*.

    Parameters
    ----------
    graph:
        Host graph.
    max_edges:
        Maximum feature size (edges per path); must be ≥ 0.
    include_vertices:
        Whether to include size-0 features (single labeled vertices).
        Both Grapes and GGSX match single-vertex query labels, so this
        defaults to on.
    budget:
        Optional time budget, polled once per start vertex.

    Returns
    -------
    dict
        Canonical path label (tuple of vertex labels) → occurrence
        aggregate.
    """
    if max_edges < 0:
        raise ValueError(f"max_edges must be non-negative, got {max_edges}")
    if csr_adjacency(graph) is not None:
        # CSR host under the csr feature core: the array kernel yields
        # a byte-identical dict (same insertion order, same aggregates).
        return csr_path_features(
            graph, max_edges, include_vertices=include_vertices, budget=budget
        )
    features: dict[tuple, PathOccurrences] = {}

    def record(labels: list, start: int) -> None:
        canonical = path_canonical(labels)
        entry = features.get(canonical)
        if entry is None:
            entry = features[canonical] = PathOccurrences()
        entry.record(start)

    on_path = [False] * graph.order
    label_stack: list = []

    def extend(vertex: int, start: int, depth: int) -> None:
        for neighbor in graph.neighbors(vertex):
            if on_path[neighbor]:
                continue
            label_stack.append(graph.label(neighbor))
            record(label_stack, start)
            if depth + 1 < max_edges:
                on_path[neighbor] = True
                extend(neighbor, start, depth + 1)
                on_path[neighbor] = False
            label_stack.pop()

    for start in graph.vertices():
        if budget is not None:
            budget.check()
        if include_vertices:
            record([graph.label(start)], start)
        if max_edges == 0:
            continue
        on_path[start] = True
        label_stack.append(graph.label(start))
        extend(start, start, 0)
        label_stack.pop()
        on_path[start] = False
    return features
