"""Frequent feature mining (paper §2.2, extraction approach (ii)).

gIndex mines frequent *subgraph* features and Tree+Δ mines frequent
*tree* features; both keep only features whose support ratio clears a
threshold, and gIndex further restricts the index to *discriminative*
features.  This package provides:

* :mod:`~repro.mining.gspan` — a pattern-growth miner in the gSpan
  family: patterns are minimum DFS codes, extension is restricted to
  the rightmost path, and non-minimal codes are pruned so each pattern
  is explored exactly once.  A ``trees_only`` switch drops backward
  (cycle-closing) extensions, yielding the frequent-tree miner.
* :mod:`~repro.mining.discriminative` — gIndex's discriminative-ratio
  selection over the mined frequent set.
"""

from repro.mining.discriminative import select_discriminative
from repro.mining.gspan import Embedding, MinedPattern, mine_frequent_patterns

__all__ = [
    "Embedding",
    "MinedPattern",
    "mine_frequent_patterns",
    "select_discriminative",
]
