"""Discriminative feature selection (gIndex, §3).

gIndex does not index every frequent fragment: a fragment earns a place
only if it *discriminates* — its support set is substantially smaller
than the intersection of the support sets of its already-indexed
subfragments.  Formally, with indexed subfeatures ``f' ⊆ f`` and
discriminative ratio γ, feature ``f`` is selected iff::

    |∩ D(f')|  ≥  γ · |D(f)|

(the candidate set an index of the subfeatures alone would produce is at
least γ times larger than what indexing ``f`` achieves).  Features are
examined in increasing size so subfeatures are always decided first;
size-1 features are measured against the whole dataset.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.canonical.order import label_key
from repro.isomorphism.vf2 import is_subgraph
from repro.mining.gspan import MinedPattern
from repro.utils.budget import Budget

__all__ = ["select_discriminative"]


def select_discriminative(
    patterns: Iterable[MinedPattern],
    gamma: float,
    num_graphs: int,
    budget: Budget | None = None,
) -> list[MinedPattern]:
    """Return the discriminative subset of *patterns* under ratio *gamma*.

    Parameters
    ----------
    patterns:
        Frequent patterns (any order; sorted internally by size).
    gamma:
        Discriminative ratio γ ≥ 1 (gIndex default 2.0).  Larger γ
        selects fewer features.
    num_graphs:
        Dataset size; the base candidate set for size-1 features.
    budget:
        Optional time budget, polled once per examined pattern.

    Notes
    -----
    Finding the indexed subfeatures of a candidate requires subgraph
    tests between pattern graphs.  Two sound prefilters keep this
    affordable: only smaller features can be subfeatures, and a
    subfeature's support set must be a superset of the candidate's —
    so features with smaller support are skipped without a VF2 call.
    """
    if gamma < 1.0:
        raise ValueError(f"gamma must be >= 1.0, got {gamma}")
    ordered = sorted(
        patterns,
        key=lambda pattern: (pattern.size, _code_key(pattern.code)),
    )
    selected: list[MinedPattern] = []
    selected_supports: list[set[int]] = []
    for pattern in ordered:
        if budget is not None:
            budget.check()
        support = pattern.support_set()
        candidate_pool = _subfeature_intersection(
            pattern, support, selected, selected_supports, num_graphs
        )
        if candidate_pool >= gamma * len(support):
            selected.append(pattern)
            selected_supports.append(support)
    return selected


def _subfeature_intersection(
    pattern: MinedPattern,
    support: set[int],
    selected: list[MinedPattern],
    selected_supports: list[set[int]],
    num_graphs: int,
) -> int:
    """Size of ``∩ D(f')`` over indexed subfeatures ``f'`` of *pattern*."""
    intersection: set[int] | None = None
    for candidate, candidate_support in zip(selected, selected_supports):
        if candidate.size >= pattern.size:
            continue
        if len(candidate_support) < len(support):
            continue  # a subfeature's support is never smaller
        if not support <= candidate_support:
            continue  # same necessary condition, element-wise
        if not is_subgraph(candidate.graph, pattern.graph):
            continue
        intersection = (
            set(candidate_support)
            if intersection is None
            else intersection & candidate_support
        )
        if len(intersection) <= len(support):
            break  # cannot shrink below |D(f)|; stop early
    return num_graphs if intersection is None else len(intersection)


def _code_key(code) -> tuple:
    """Deterministic ordering key for DFS codes with arbitrary labels."""
    return tuple(
        (i, j, label_key(li), label_key(lj)) for i, j, li, lj in code
    )
