"""Pattern-growth frequent subgraph/tree mining (gSpan family).

The miner enumerates connected patterns by growing minimum DFS codes
(:mod:`repro.canonical.dfscode`) one edge at a time:

1. seed with every frequent single-edge pattern;
2. extend each pattern's embeddings along the rightmost path (backward
   edges from the rightmost vertex, forward edges from rightmost-path
   vertices) — the gSpan restriction that makes generation complete
   without revisiting;
3. keep a child only if its DFS code is *minimal* (canonical); the same
   pattern reached along any other path is discarded, since the prefix
   property guarantees the minimal code itself arises from the minimal
   parent;
4. prune by support (anti-monotone): children inherit embeddings only
   from their parent, so infrequent branches die immediately.

With ``trees_only`` backward extensions are skipped entirely, which
restricts the search to acyclic patterns — the frequent-tree miner that
Tree+Δ builds on.  The paper's observation that "frequent feature
mining is a very computationally costly process" (§5.2.1) is a property
of this search space itself; expect exponential behaviour when most
features are frequent (e.g. few distinct labels, §5.2.3).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.canonical.dfscode import (
    DfsCode,
    dfs_code_graph,
    is_min_dfs_code,
    rightmost_path,
)
from repro.canonical.order import label_key
from repro.graphs.graph import Graph
from repro.utils.budget import Budget

__all__ = ["Embedding", "MinedPattern", "mine_frequent_patterns"]


class Embedding(NamedTuple):
    """One occurrence of a pattern inside a dataset graph."""

    graph_id: int
    #: DFS index -> host-graph vertex.
    vmap: tuple[int, ...]
    #: Host-graph edges used, as a frozenset of 2-vertex frozensets.
    used: frozenset


@dataclass(slots=True)
class MinedPattern:
    """A frequent pattern together with its occurrences."""

    code: DfsCode
    graph: Graph
    embeddings: list[Embedding] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Feature size: number of edges."""
        return len(self.code)

    def support_set(self) -> set[int]:
        """Ids of the dataset graphs containing the pattern."""
        return {embedding.graph_id for embedding in self.embeddings}

    @property
    def support(self) -> int:
        return len(self.support_set())


def mine_frequent_patterns(
    graphs: Sequence[Graph],
    min_support: int,
    max_edges: int,
    trees_only: bool = False,
    keep=None,
    budget: Budget | None = None,
) -> dict[DfsCode, MinedPattern]:
    """Mine all frequent connected patterns of ``1..max_edges`` edges.

    Parameters
    ----------
    graphs:
        The dataset; ids are taken from each graph's ``graph_id`` (as
        assigned by :class:`~repro.graphs.dataset.GraphDataset`), or the
        positional index when unset.
    min_support:
        Minimum number of distinct graphs a pattern must occur in
        (absolute count; callers convert the paper's support *ratio*).
    max_edges:
        Maximum pattern size in edges.
    trees_only:
        Restrict the search to acyclic patterns.
    keep:
        Optional predicate ``DfsCode -> bool``; patterns failing it are
        neither reported nor expanded.  This is gIndex's apriori pruning
        on the query side ("if a fragment does not appear in the index,
        no supergraphs of that fragment will be produced", §3): mining
        the query graph with ``keep = code in frequent_index`` grows
        exactly the indexed fragments of the query.
    budget:
        Optional time budget, polled once per pattern expansion.

    Returns
    -------
    dict
        Minimum DFS code → :class:`MinedPattern`, for every frequent
        pattern (passing *keep*).
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    if max_edges < 1:
        return {}

    indexed_graphs = [
        (graph.graph_id if graph.graph_id is not None else position, graph)
        for position, graph in enumerate(graphs)
    ]
    frequent: dict[DfsCode, MinedPattern] = {}
    stack: list[MinedPattern] = [
        seed
        for seed in _frequent_seeds(indexed_graphs, min_support)
        if keep is None or keep(seed.code)
    ]

    # Embedding lists dominate mining memory; ~180 bytes each covers
    # the tuple, the vertex map and the edge frozenset refs.
    embeddings_alive = sum(len(pattern.embeddings) for pattern in stack)
    while stack:
        if budget is not None:
            budget.check()
            budget.check_memory(embeddings_alive * 180)
        pattern = stack.pop()
        frequent[pattern.code] = pattern
        if pattern.size >= max_edges:
            continue
        for child in _children(pattern, indexed_graphs, trees_only):
            if len(child.support_set()) < min_support:
                continue
            if not is_min_dfs_code(child.code):
                continue
            if keep is not None and not keep(child.code):
                continue
            embeddings_alive += len(child.embeddings)
            stack.append(child)
    return frequent


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------


def _frequent_seeds(
    indexed_graphs: list[tuple[int, Graph]], min_support: int
) -> list[MinedPattern]:
    """All frequent single-edge patterns with their embeddings.

    For a symmetric edge (equal endpoint labels) both directed
    embeddings are kept: later rightmost extensions must be able to
    grow from either endpoint.
    """
    seeds: dict[DfsCode, MinedPattern] = {}
    for graph_id, graph in indexed_graphs:
        for u, v in graph.edges():
            for a, b in ((u, v), (v, u)):
                la, lb = graph.label(a), graph.label(b)
                if label_key(la) > label_key(lb):
                    continue
                code: DfsCode = ((0, 1, la, lb),)
                pattern = seeds.get(code)
                if pattern is None:
                    pattern = seeds[code] = MinedPattern(code, dfs_code_graph(code))
                pattern.embeddings.append(
                    Embedding(graph_id, (a, b), frozenset((frozenset((a, b)),)))
                )
    return [
        pattern
        for pattern in seeds.values()
        if len(pattern.support_set()) >= min_support
    ]


def _children(
    pattern: MinedPattern,
    indexed_graphs: list[tuple[int, Graph]],
    trees_only: bool,
) -> list[MinedPattern]:
    """Rightmost-path extensions of *pattern*, grouped by code edge."""
    graph_by_id = dict(indexed_graphs)
    rpath = rightmost_path(pattern.code)
    rm_index = rpath[-1]
    next_index = pattern.graph.order
    children: dict[tuple, MinedPattern] = {}

    def child_for(code_edge: tuple) -> MinedPattern:
        child = children.get(code_edge)
        if child is None:
            code = pattern.code + (code_edge,)
            child = children[code_edge] = MinedPattern(code, dfs_code_graph(code))
        return child

    for embedding in pattern.embeddings:
        host = graph_by_id[embedding.graph_id]
        rm_vertex = embedding.vmap[rm_index]
        mapped = set(embedding.vmap)
        if not trees_only:
            # Backward extensions: rightmost vertex -> rightmost-path vertex.
            for j_index in rpath[:-1]:
                target = embedding.vmap[j_index]
                if not host.has_edge(rm_vertex, target):
                    continue
                host_edge = frozenset((rm_vertex, target))
                if host_edge in embedding.used:
                    continue
                code_edge = (
                    rm_index,
                    j_index,
                    pattern.graph.label(rm_index),
                    pattern.graph.label(j_index),
                )
                child_for(code_edge).embeddings.append(
                    Embedding(
                        embedding.graph_id,
                        embedding.vmap,
                        embedding.used | {host_edge},
                    )
                )
        # Forward extensions: rightmost-path vertex -> new vertex.
        for i_index in rpath:
            source = embedding.vmap[i_index]
            for w in host.neighbors(source):
                if w in mapped:
                    continue
                code_edge = (
                    i_index,
                    next_index,
                    pattern.graph.label(i_index),
                    host.label(w),
                )
                host_edge = frozenset((source, w))
                child_for(code_edge).embeddings.append(
                    Embedding(
                        embedding.graph_id,
                        embedding.vmap + (w,),
                        embedding.used | {host_edge},
                    )
                )

    for child in children.values():
        child.embeddings = _deduplicate(child.embeddings)
    return list(children.values())


def _deduplicate(embeddings: list[Embedding]) -> list[Embedding]:
    """Drop duplicate (graph, vertex-map, edge-set) occurrences."""
    seen: set[tuple] = set()
    unique: list[Embedding] = []
    for embedding in embeddings:
        key = (embedding.graph_id, embedding.vmap, embedding.used)
        if key not in seen:
            seen.add(key)
            unique.append(embedding)
    return unique
