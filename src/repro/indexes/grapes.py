"""Grapes — parallel path trie with location information [9].

Giugno et al., *GRAPES: A Software for Parallel Searching on Biological
Graphs Targeting Multi-Core Architectures*, PLoS One 2013.  Grapes
shares GraphGrepSX's feature type (simple paths up to a size limit,
default 4) and exhaustive DFS extraction, and differs in three ways
that this class reproduces:

1. **Location information** — for every (feature, graph) pair the trie
   records the start vertices of the feature's occurrences, alongside
   the occurrence count.
2. **Parallel construction** — dataset graphs are partitioned across a
   pool of workers (paper setting: 6); each worker builds a complete
   trie over its disjoint share, and the shards are merged.  This
   mirrors the original's disjoint-trie-parts design.  (CPython threads
   serialize CPU-bound work, so the *structure* is preserved while the
   speedup is platform-dependent; see DESIGN.md.)
3. **Component-wise verification** — filtering projects each surviving
   graph onto the vertices that start matched query features, splits
   that projection into connected components, and verification tests
   the query against each sufficiently large component (in parallel)
   rather than the whole graph.

Soundness of the projection: with single-vertex features included,
every vertex in an embedding image starts at least one matched feature
traversal, so a (connected) query's image lies entirely inside one
marked component.  Disconnected queries fall back to whole-graph
verification.

Reproduces: Grapes (Giugno et al., PLoS One 2013) — reference [9] of
the benchmarked paper.

Feature class: paths — exhaustively enumerated simple label paths of
up to ``max_path_edges`` edges, with per-graph location information.

Known deviations: construction parallelism uses a Python thread pool,
so on CPython the disjoint-trie structure is preserved but CPU-bound
speedup is platform-dependent (the original is native multi-core);
disconnected queries skip component-wise verification and test the
whole graph; the trie is pure Python rather than the original's C++
structures.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.features.paths import path_features
from repro.graphs.dataset import DatasetDelta, GraphDataset, removal_remap
from repro.graphs.graph import Graph
from repro.indexes.base import GraphIndex
from repro.indexes.pathtrie import PathTrie
from repro.isomorphism.vf2 import SubgraphMatcher
from repro.utils.budget import Budget

__all__ = ["GrapesIndex"]


class GrapesIndex(GraphIndex):
    """Grapes: parallel path trie with start-vertex locations.

    Parameters
    ----------
    max_path_edges:
        Maximum feature size in edges (paper setting: 4).
    workers:
        Worker-pool width for parallel build and verification (paper
        setting: 6).
    """

    name = "grapes"

    def __init__(self, max_path_edges: int = 4, workers: int = 6) -> None:
        super().__init__()
        if max_path_edges < 1:
            raise ValueError(f"max_path_edges must be >= 1, got {max_path_edges}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.max_path_edges = max_path_edges
        self.workers = workers
        self._trie = PathTrie(keep_locations=True)
        #: graph id -> marked components, computed by the last filter().
        #: Guarded by the query's identity: verification for any other
        #: query must not reuse another query's projections (that would
        #: drop true answers).
        self._components_cache: dict[int, list[set[int]]] = {}
        self._components_query: Graph | None = None

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def _build(self, dataset: GraphDataset, budget: Budget | None) -> dict:
        shards = [list(dataset)[i :: self.workers] for i in range(self.workers)]
        shards = [shard for shard in shards if shard]

        def build_shard(shard: list[Graph]) -> PathTrie:
            trie = PathTrie(keep_locations=True)
            for graph in shard:
                if budget is not None:
                    budget.check()
                    # Memory is a whole-index property; each worker
                    # sees its shard's share of the allowance.
                    budget.check_memory(trie.estimated_bytes() * len(shards))
                features = path_features(graph, self.max_path_edges, budget=budget)
                for canonical, occurrences in features.items():
                    trie.insert(
                        canonical,
                        graph.graph_id,
                        occurrences.count,
                        occurrences.starts,
                    )
            return trie

        if not shards:  # empty dataset (e.g. a delete-everything delta)
            tries = [PathTrie(keep_locations=True)]
        elif len(shards) == 1:
            tries = [build_shard(shards[0])]
        else:
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                tries = list(pool.map(build_shard, shards))
        self._trie = tries[0]
        for shard_trie in tries[1:]:
            self._trie.merge(shard_trie)
        return {
            "trie_nodes": self._trie.node_count(),
            "features": self._trie.num_features,
            "workers": len(shards),
        }

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------

    def _update(
        self,
        new_dataset: GraphDataset,
        delta: DatasetDelta,
        budget: Budget | None,
    ) -> dict:
        """True incremental maintenance over the per-graph postings.

        Every (feature, graph) payload in the trie is independent of
        every other graph, so a delta is exactly: drop the removed ids,
        re-densify the survivors (:meth:`PathTrie.remap_graphs`), and
        insert the added graphs' features under their new ids.  The
        canonical export then matches a cold build byte for byte.
        """
        assert self._dataset is not None
        remap = removal_remap(len(self._dataset), delta.removed)
        self._trie.remap_graphs(remap)
        first_new = len(new_dataset) - len(delta.added)
        for graph_id in range(first_new, len(new_dataset)):
            if budget is not None:
                budget.check()
                budget.check_memory(self._trie.estimated_bytes())
            graph = new_dataset[graph_id]
            features = path_features(graph, self.max_path_edges, budget=budget)
            for canonical, occurrences in features.items():
                self._trie.insert(
                    canonical, graph_id, occurrences.count, occurrences.starts
                )
        self._components_cache = {}
        self._components_query = None
        return {
            "trie_nodes": self._trie.node_count(),
            "features": self._trie.num_features,
            "added": len(delta.added),
            "removed": len(delta.removed),
        }

    # ------------------------------------------------------------------
    # filter
    # ------------------------------------------------------------------

    def _filter(self, query: Graph, budget: Budget | None) -> set[int]:
        assert self._dataset is not None
        self._components_cache = {}
        self._components_query = query
        query_paths = path_features(query, self.max_path_edges, budget=budget)

        # Stage 1: occurrence-count dominance, as in GGSX.
        candidates: set[int] | None = None
        matched_nodes = []
        for canonical, occurrences in query_paths.items():
            if budget is not None:
                budget.check()
            node = self._trie.lookup(canonical)
            if node is None:
                return set()
            matched_nodes.append(node)
            matching = {
                graph_id
                for graph_id, count in node.counts.items()
                if count >= occurrences.count
            }
            candidates = matching if candidates is None else candidates & matching
            if not candidates:
                return set()
        if candidates is None:
            return self._dataset.all_ids()

        # Stage 2: location-based refinement.  Mark, per candidate, the
        # vertices starting any matched feature; an embedding must live
        # inside one connected component of the marked projection.
        if not query.is_connected():
            return candidates  # projection argument needs connectivity
        marked: dict[int, set[int]] = {graph_id: set() for graph_id in candidates}
        for node in matched_nodes:
            assert node.starts is not None
            for graph_id, starts in node.starts.items():
                if graph_id in marked:
                    marked[graph_id].update(starts)

        survivors = set()
        query_labels = query.label_histogram()
        for graph_id in candidates:
            components = self._marked_components(graph_id, marked[graph_id])
            viable = [
                component
                for component in components
                if _labels_dominate(
                    self._dataset[graph_id], component, query_labels
                )
            ]
            if viable:
                survivors.add(graph_id)
                self._components_cache[graph_id] = viable
        return survivors

    def _marked_components(self, graph_id: int, marked: set[int]) -> list[set[int]]:
        """Connected components of the graph's projection onto *marked*."""
        assert self._dataset is not None
        graph = self._dataset[graph_id]
        components: list[set[int]] = []
        unvisited = set(marked)
        while unvisited:
            start = unvisited.pop()
            component = {start}
            stack = [start]
            while stack:
                v = stack.pop()
                for w in graph.neighbors(v):
                    if w in unvisited:
                        unvisited.discard(w)
                        component.add(w)
                        stack.append(w)
            components.append(component)
        return components

    # ------------------------------------------------------------------
    # verify (per component, in parallel)
    # ------------------------------------------------------------------

    def verify(
        self, query: Graph, candidates: set[int], budget: Budget | None = None
    ) -> set[int]:
        """Test the query against each marked component of each candidate.

        Components of one graph are checked concurrently (paper §3:
        "each such component assigned to a different thread"), stopping
        at the first match per graph.
        """
        self._require_built()
        assert self._dataset is not None
        cache_valid = self._components_query is query
        answers = set()
        for graph_id in candidates:
            if budget is not None:
                budget.check()
            graph = self._dataset[graph_id]
            components = (
                self._components_cache.get(graph_id) if cache_valid else None
            )
            if components is None or not query.is_connected():
                if SubgraphMatcher(query, graph, budget=budget).exists():
                    answers.add(graph_id)
                continue
            if self._query_in_any_component(query, graph, components, budget):
                answers.add(graph_id)
        return answers

    def _query_in_any_component(
        self,
        query: Graph,
        graph: Graph,
        components: list[set[int]],
        budget: Budget | None,
    ) -> bool:
        large_enough = [c for c in components if len(c) >= query.order]
        if not large_enough:
            return False

        def check(component: set[int]) -> bool:
            projection, _ = graph.induced_subgraph(component)
            return SubgraphMatcher(query, projection, budget=budget).exists()

        if len(large_enough) == 1 or self.workers == 1:
            return any(check(component) for component in large_enough)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return any(pool.map(check, large_enough))

    def _size_payload(self) -> object:
        return self._trie

    # -- artifact contract ---------------------------------------------

    def _index_params(self) -> dict:
        # ``workers`` shapes build parallelism, not the merged trie's
        # content, but it is a constructor knob the profile fixes —
        # keeping it in the address keeps reuse conservative.
        return {"max_path_edges": self.max_path_edges, "workers": self.workers}

    def _export_payload(self) -> object:
        # Canonical nested tuples, not the live trie: the live dicts
        # remember insertion history (shard interleaving, update order),
        # so only the sorted form satisfies the update == rebuild
        # byte-identity contract.  dedup_structure makes equal exports
        # pickle to equal bytes (pickle memoizes leaves by identity).
        from repro.utils.hashing import dedup_structure

        return dedup_structure(self._trie.to_canonical())

    def _import_payload(self, payload: object) -> None:
        assert isinstance(payload, tuple)
        # from_canonical builds fresh dicts/sets, so several instances
        # can materialize one in-memory payload without sharing state.
        self._trie = PathTrie.from_canonical(payload)
        # Per-query projection state never travels with the payload.
        self._components_cache = {}
        self._components_query = None


def _labels_dominate(graph: Graph, component: set[int], query_labels: dict) -> bool:
    """Cheap per-component prune: the component must offer enough
    vertices of every label the query needs."""
    counts: dict[object, int] = {}
    for v in component:
        lbl = graph.label(v)
        counts[lbl] = counts.get(lbl, 0) + 1
    return all(counts.get(lbl, 0) >= needed for lbl, needed in query_labels.items())
