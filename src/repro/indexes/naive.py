"""The no-index baseline: subgraph isomorphism against every graph.

This is the "naive method" of the paper's introduction — every graph in
the dataset is a candidate, and verification does all the work.  It
serves two roles in the reproduction: a correctness oracle for the
other indexes (its answer set is ground truth) and the datum against
which filtering power is visible.

Reproduces: the index-free baseline the benchmarked paper compares
every method against (its introduction's "naive method").

Feature class: none — no features are extracted; the candidate set is
always the entire dataset.

Known deviations: none by construction; subgraph-isomorphism testing
is our stock VF2, the same verifier the indexed methods use, so
baseline comparisons isolate filtering power exactly.
"""

from __future__ import annotations

from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.indexes.base import GraphIndex
from repro.utils.budget import Budget

__all__ = ["NaiveIndex"]


class NaiveIndex(GraphIndex):
    """Full-scan baseline: the candidate set is the whole dataset."""

    name = "naive"

    def _build(self, dataset: GraphDataset, budget: Budget | None) -> dict:
        return {"num_graphs": len(dataset)}

    def _filter(self, query: Graph, budget: Budget | None) -> set[int]:
        assert self._dataset is not None
        return self._dataset.all_ids()

    def _size_payload(self) -> object:
        return ()

    # -- artifact contract ---------------------------------------------

    def _index_params(self) -> dict:
        return {}

    def _export_payload(self) -> object:
        return None  # no structure: the candidate set is the dataset

    def _import_payload(self, payload: object) -> None:
        pass
