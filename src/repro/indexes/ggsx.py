"""GraphGrepSX (GGSX) — path suffix trie with occurrence counts [2].

Bonnici et al., *Enhancing graph database indexing by suffix tree
structure*, PRIB 2010.  Index construction enumerates every simple path
of up to ``max_path_edges`` edges (default 4, the configuration of
§4.1) by depth-first search from every vertex and stores, per path
feature and per graph, the number of occurrences.  Filtering extracts
the query's paths the same way and keeps the graphs whose occurrence
counts dominate the query's for *every* query path feature.
Verification is stock first-match VF2.

GGSX represents the "simple features, exhaustive enumeration, no
locations" corner of the design space; the paper finds it (with
Grapes) the consistently fastest method, and the only one to index
100,000-graph datasets (§5.2.4).

Reproduces: GraphGrepSX (Bonnici et al., PRIB 2010) — reference [2]
of the benchmarked paper.

Feature class: paths — exhaustively enumerated simple label paths of
up to ``max_path_edges`` edges, with per-graph occurrence counts.

Known deviations: the index is a trie over canonical path labels
rather than the original's suffix tree — the exhaustive enumeration
emits every sub-path as a feature, so the two structures store the
same node set and filter identically (see
:mod:`repro.indexes.pathtrie`); verification is stock first-match VF2
in pure Python.
"""

from __future__ import annotations

from repro.features.paths import path_features
from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.indexes.base import GraphIndex
from repro.indexes.pathtrie import PathTrie
from repro.utils.budget import Budget

__all__ = ["GraphGrepSXIndex"]


class GraphGrepSXIndex(GraphIndex):
    """GraphGrepSX: exhaustive path enumeration into a count trie.

    Parameters
    ----------
    max_path_edges:
        Maximum feature size in edges (paper setting: 4).
    """

    name = "ggsx"

    def __init__(self, max_path_edges: int = 4) -> None:
        super().__init__()
        if max_path_edges < 1:
            raise ValueError(f"max_path_edges must be >= 1, got {max_path_edges}")
        self.max_path_edges = max_path_edges
        self._trie = PathTrie(keep_locations=False)

    def _build(self, dataset: GraphDataset, budget: Budget | None) -> dict:
        self._trie = PathTrie(keep_locations=False)
        for graph in dataset:
            if budget is not None:
                budget.check()
                budget.check_memory(self._trie.estimated_bytes())
            features = path_features(graph, self.max_path_edges, budget=budget)
            for canonical, occurrences in features.items():
                self._trie.insert(canonical, graph.graph_id, occurrences.count)
        return {
            "trie_nodes": self._trie.node_count(),
            "features": self._trie.num_features,
        }

    def _filter(self, query: Graph, budget: Budget | None) -> set[int]:
        assert self._dataset is not None
        query_paths = path_features(query, self.max_path_edges, budget=budget)
        candidates: set[int] | None = None
        for canonical, occurrences in query_paths.items():
            if budget is not None:
                budget.check()
            node = self._trie.lookup(canonical)
            if node is None:
                return set()  # the feature exists nowhere in the dataset
            matching = {
                graph_id
                for graph_id, count in node.counts.items()
                if count >= occurrences.count
            }
            candidates = matching if candidates is None else candidates & matching
            if not candidates:
                return set()
        return self._dataset.all_ids() if candidates is None else candidates

    def _size_payload(self) -> object:
        return self._trie

    # -- artifact contract ---------------------------------------------

    def _index_params(self) -> dict:
        return {"max_path_edges": self.max_path_edges}

    def _export_payload(self) -> object:
        return self._trie

    def _import_payload(self, payload: object) -> None:
        assert isinstance(payload, PathTrie)
        self._trie = payload
