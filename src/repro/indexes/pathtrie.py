"""The label-path trie shared by GraphGrepSX and Grapes.

Both methods index every simple path of up to ``max_path_edges`` edges.
GraphGrepSX organizes them in a suffix tree whose nodes carry per-graph
occurrence counts [2]; Grapes uses a trie that additionally stores
*location information* — the start vertices of each path per graph [9].
Because the exhaustive DFS enumeration emits every sub-path of every
path as a feature in its own right, a trie over all canonical path
labels stores exactly the node set of the suffix tree of the path set;
the two structures coincide for filtering purposes, differing only in
the per-node payload.

The trie maps each canonical path label (a tuple of vertex labels) to
per-graph occurrence data; lookups walk label by label.

Reproduces: the shared index structure of GraphGrepSX [2] and Grapes
[9] (see :mod:`repro.indexes.ggsx` and :mod:`repro.indexes.grapes`
for the methods built on it).

Feature class: paths — canonical label paths, stored once per distinct
label sequence with per-graph counts and (optionally) start-vertex
locations.

Known deviations: one trie serves both methods, whereas the originals
ship a suffix tree (GGSX) and a location-annotated trie (Grapes); as
documented above the node sets coincide under exhaustive sub-path
enumeration, so only the per-node payload differs.
"""

from __future__ import annotations

from collections.abc import Iterator

__all__ = ["PathTrie", "TrieNode"]


class TrieNode:
    """One trie node: children by label, per-graph payload at terminals.

    ``counts`` maps graph id → number of directed traversals of the
    path ending at this node; ``starts`` (only populated when the trie
    keeps locations) maps graph id → set of start vertices.
    """

    __slots__ = ("children", "counts", "starts")

    def __init__(self) -> None:
        self.children: dict[object, TrieNode] = {}
        self.counts: dict[int, int] = {}
        self.starts: dict[int, set[int]] | None = None


class PathTrie:
    """Trie over canonical path labels with per-graph occurrence data.

    Parameters
    ----------
    keep_locations:
        Store start-vertex sets per (feature, graph) — the Grapes
        location information.  Off for GraphGrepSX.
    """

    __slots__ = (
        "root",
        "keep_locations",
        "num_features",
        "num_nodes",
        "num_count_entries",
        "num_location_entries",
    )

    #: Rough per-item byte costs for the cheap size estimate
    #: (CPython dict/set entry overheads; calibrated against deep_sizeof).
    _NODE_BYTES = 200
    _COUNT_ENTRY_BYTES = 80
    _LOCATION_ENTRY_BYTES = 60

    def __init__(self, keep_locations: bool = False) -> None:
        self.root = TrieNode()
        self.keep_locations = keep_locations
        self.num_features = 0
        self.num_nodes = 1
        self.num_count_entries = 0
        self.num_location_entries = 0

    def insert(
        self,
        label_path: tuple,
        graph_id: int,
        count: int,
        starts: set[int] | None = None,
    ) -> None:
        """Record *count* occurrences of a feature in graph *graph_id*."""
        node = self.root
        for label in label_path:
            child = node.children.get(label)
            if child is None:
                child = node.children[label] = TrieNode()
                self.num_nodes += 1
            node = child
        if not node.counts:
            self.num_features += 1
        if graph_id not in node.counts:
            self.num_count_entries += 1
        node.counts[graph_id] = node.counts.get(graph_id, 0) + count
        if self.keep_locations:
            if node.starts is None:
                node.starts = {}
            entry = node.starts.setdefault(graph_id, set())
            if starts:
                before = len(entry)
                entry.update(starts)
                self.num_location_entries += len(entry) - before

    def estimated_bytes(self) -> int:
        """Cheap running size estimate for memory-budget polling.

        Exact accounting is :func:`repro.utils.sizeof.deep_sizeof` on
        the trie; this O(1) counter-based estimate tracks growth well
        enough for the paper's memory breaking points.
        """
        return (
            self.num_nodes * self._NODE_BYTES
            + self.num_count_entries * self._COUNT_ENTRY_BYTES
            + self.num_location_entries * self._LOCATION_ENTRY_BYTES
        )

    def lookup(self, label_path: tuple) -> TrieNode | None:
        """The terminal node for a canonical path label, if indexed."""
        node = self.root
        for label in label_path:
            node = node.children.get(label)
            if node is None:
                return None
        return node

    def merge(self, other: "PathTrie") -> None:
        """Merge *other* into this trie (used by Grapes' parallel build).

        The per-worker tries cover disjoint graph-id sets, so payload
        merging is plain dictionary union.
        """
        stack = [(self.root, other.root)]
        while stack:
            mine, theirs = stack.pop()
            if theirs.counts:
                if not mine.counts:
                    self.num_features += 1
                for graph_id, count in theirs.counts.items():
                    if graph_id not in mine.counts:
                        self.num_count_entries += 1
                    mine.counts[graph_id] = mine.counts.get(graph_id, 0) + count
            if theirs.starts:
                if mine.starts is None:
                    mine.starts = {}
                for graph_id, starts in theirs.starts.items():
                    entry = mine.starts.setdefault(graph_id, set())
                    before = len(entry)
                    entry.update(starts)
                    self.num_location_entries += len(entry) - before
            for label, their_child in theirs.children.items():
                my_child = mine.children.get(label)
                if my_child is None:
                    my_child = mine.children[label] = TrieNode()
                    self.num_nodes += 1
                stack.append((my_child, their_child))

    # ------------------------------------------------------------------
    # canonical form + incremental maintenance
    # ------------------------------------------------------------------

    def to_canonical(self) -> tuple:
        """The trie as nested sorted tuples — one canonical byte form.

        A live trie's dictionaries remember insertion history, so its
        pickle bytes differ between (say) a sharded parallel build and
        an incremental update even when the content is equal.  The
        canonical form sorts every level (children by ``repr`` of the
        label, payload entries by graph id) and **prunes** subtrees
        holding no counts anywhere — exactly the nodes a cold build
        over the same feature set would never create.  Grapes exports
        this form, which is what the update == rebuild byte-identity
        contract compares.
        """

        def encode(node: TrieNode) -> tuple | None:
            children = []
            for label, child in sorted(
                node.children.items(), key=lambda item: repr(item[0])
            ):
                encoded = encode(child)
                if encoded is not None:
                    children.append((label, encoded))
            counts = tuple(sorted(node.counts.items()))
            if not counts and not children:
                return None
            starts: tuple | None = None
            if node.starts is not None and counts:
                starts = tuple(
                    (graph_id, tuple(sorted(vertex_set)))
                    for graph_id, vertex_set in sorted(node.starts.items())
                )
            return (counts, starts, tuple(children))

        encoded_root = encode(self.root)
        if encoded_root is None:
            encoded_root = ((), None, ())
        return (bool(self.keep_locations), encoded_root)

    @classmethod
    def from_canonical(cls, data: tuple) -> "PathTrie":
        """Rebuild a live trie from :meth:`to_canonical` output.

        Always returns a fresh structure (fresh dicts and sets), so one
        exported payload can be materialized into several index
        instances without sharing mutable state.
        """
        keep_locations, encoded_root = data
        trie = cls(keep_locations=bool(keep_locations))

        def decode(node: TrieNode, encoded: tuple) -> None:
            counts, starts, children = encoded
            if counts:
                trie.num_features += 1
                trie.num_count_entries += len(counts)
                node.counts = dict(counts)
            if starts is not None:
                node.starts = {
                    graph_id: set(vertex_tuple)
                    for graph_id, vertex_tuple in starts
                }
                trie.num_location_entries += sum(
                    len(vertex_tuple) for _, vertex_tuple in starts
                )
            for label, encoded_child in children:
                child = node.children[label] = TrieNode()
                trie.num_nodes += 1
                decode(child, encoded_child)

        decode(trie.root, encoded_root)
        return trie

    def remap_graphs(self, remap: dict[int, int]) -> None:
        """Rewrite per-graph payloads through *remap* and prune the dead.

        Graph ids absent from *remap* are dropped (deleted graphs);
        surviving ids are rewritten to their post-delta values.  Nodes
        whose subtree loses every count are physically removed, and the
        size counters are recomputed, so the live trie matches what a
        cold build over the surviving graphs would construct.
        """

        def rewrite(node: TrieNode) -> bool:
            alive = False
            for label in list(node.children):
                if rewrite(node.children[label]):
                    alive = True
                else:
                    del node.children[label]
            if node.counts:
                node.counts = {
                    remap[graph_id]: count
                    for graph_id, count in node.counts.items()
                    if graph_id in remap
                }
            if node.counts:
                alive = True
                if node.starts is not None:
                    node.starts = {
                        remap[graph_id]: starts
                        for graph_id, starts in node.starts.items()
                        if graph_id in remap
                    }
            else:
                node.starts = None
            return alive

        rewrite(self.root)
        self.num_nodes = 1
        self.num_features = 0
        self.num_count_entries = 0
        self.num_location_entries = 0
        for node in self.nodes():
            if node is not self.root:
                self.num_nodes += 1
            if node.counts:
                self.num_features += 1
                self.num_count_entries += len(node.counts)
            if node.starts:
                self.num_location_entries += sum(
                    len(starts) for starts in node.starts.values()
                )

    def nodes(self) -> Iterator[TrieNode]:
        """Iterate over all trie nodes (for size/statistics reporting)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())
