"""gCode — spectral vertex signatures in a search tree [28].

Zou, Chen, Yu & Lu, *A novel spectral coding in a large graph
database*, EDBT 2008.  gCode exhaustively enumerates paths of up to a
small depth (paper setting: 2) around every vertex and condenses them
into a *vertex signature* with three components (§3):

1. a counter-string over the labels of the vertices reachable along
   those paths (the "level-n path tree" of the vertex),
2. a counter-string over the labels of the vertex's direct neighbors,
3. the top-m eigenvalues (paper setting: m=2) of the adjacency matrix
   of the level-n path tree rooted at the vertex.

Soundness of signature dominance: a monomorphism maps the level-n path
tree of a query vertex onto a subtree of the image's path tree, so
per-label counts dominate and — by Cauchy eigenvalue interlacing for
principal submatrices — so do the sorted eigenvalues.

Graph codes (the multiset of vertex signatures plus a graph-level label
counter) are kept sorted by graph order, standing in for the original's
balanced search tree: filtering skips every graph with fewer vertices
than the query via binary search, then (stage 1) checks label-counter
dominance, then (stage 2) requires a semi-perfect bipartite matching of
query signatures onto dominating, distinct data-vertex signatures.

gCode represents "encoded exhaustive paths": slow in absolute terms —
signature construction and matching dominate, making it the slowest
method in most of the paper's plots — but with better scaling in
density/graph count than the frequent-mining methods (§6).

Reproduces: gCode (Zou, Chen, Yu & Lu, EDBT 2008) — reference [28] of
the benchmarked paper.

Feature class: paths — exhaustive paths of depth ``path_depth`` around
every vertex, encoded into spectral vertex signatures (label counters
plus top-``m`` eigenvalues of the level-n path tree).

Known deviations: graph codes are kept in a list sorted by graph
order with binary-search skipping, standing in for the original's
balanced search tree (same pruning, different lookup constants);
stage-2 filtering solves the signature-dominance assignment as an
exact bipartite matching in pure Python.
"""

from __future__ import annotations

import bisect
from typing import NamedTuple

import numpy as np

from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.indexes.base import GraphIndex
from repro.utils.budget import Budget
from repro.utils.hashing import stable_hash

__all__ = ["GCodeIndex", "VertexSignature"]

#: Tolerance for eigenvalue dominance (floating-point head-room only;
#: must stay small enough never to mask a genuine violation).
_EIGEN_EPSILON = 1e-6


class VertexSignature(NamedTuple):
    """The gCode signature of one vertex."""

    label: object
    #: Bucketed, saturated counts of direct-neighbor labels.
    neighbor_counts: tuple[int, ...]
    #: Bucketed, saturated counts of labels over the level-n path tree.
    tree_counts: tuple[int, ...]
    #: Top-m eigenvalues of the path-tree adjacency matrix, descending,
    #: padded with ``-inf``.
    eigenvalues: tuple[float, ...]

    def dominates(self, other: "VertexSignature") -> bool:
        """True iff *other* (a query signature) fits under this one."""
        if self.label != other.label:
            return False
        if any(q > g for q, g in zip(other.neighbor_counts, self.neighbor_counts)):
            return False
        if any(q > g for q, g in zip(other.tree_counts, self.tree_counts)):
            return False
        return all(
            q <= g + _EIGEN_EPSILON
            for q, g in zip(other.eigenvalues, self.eigenvalues)
        )


class _GraphCode(NamedTuple):
    graph_id: int
    order: int
    label_counts: tuple[int, ...]
    signatures: tuple[VertexSignature, ...]


class GCodeIndex(GraphIndex):
    """gCode: spectral vertex signatures with two-stage filtering.

    Parameters
    ----------
    path_depth:
        Level of the per-vertex path tree (paper setting: 2).
    top_eigenvalues:
        Eigenvalues retained per signature (paper setting: 2).
    counter_buckets:
        Width of the label counter-strings (paper setting: 32).
    """

    name = "gcode"

    def __init__(
        self,
        path_depth: int = 2,
        top_eigenvalues: int = 2,
        counter_buckets: int = 32,
    ) -> None:
        super().__init__()
        if path_depth < 1:
            raise ValueError(f"path_depth must be >= 1, got {path_depth}")
        if top_eigenvalues < 1:
            raise ValueError(f"top_eigenvalues must be >= 1, got {top_eigenvalues}")
        if counter_buckets < 1:
            raise ValueError(f"counter_buckets must be >= 1, got {counter_buckets}")
        self.path_depth = path_depth
        self.top_eigenvalues = top_eigenvalues
        self.counter_buckets = counter_buckets
        #: Graph codes sorted by graph order (the "search tree").
        self._codes: list[_GraphCode] = []
        self._orders: list[int] = []
        #: (label_table, bucket ids) for the CSR fast path; datasets
        #: share one label table, so one hash pass covers every graph.
        self._bucket_cache: tuple[object, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # signature construction
    # ------------------------------------------------------------------

    def graph_code(self, graph: Graph, budget: Budget | None = None) -> _GraphCode:
        """Compute the full gCode of one graph."""
        signatures = []
        for v in graph.vertices():
            if budget is not None and v % 64 == 0:
                budget.check()
            signatures.append(self.vertex_signature(graph, v))
        ids = getattr(graph, "label_ids_array", None)
        if ids is not None:
            label_counts = self._bucket_counts_from_ids(
                self._bucket_array(graph), ids()
            )
        else:
            label_counts = self._bucket_counts(
                graph.label(v) for v in graph.vertices()
            )
        return _GraphCode(
            graph_id=graph.graph_id if graph.graph_id is not None else -1,
            order=graph.order,
            label_counts=label_counts,
            signatures=tuple(signatures),
        )

    def vertex_signature(self, graph: Graph, vertex: int) -> VertexSignature:
        """Signature of one vertex: counters plus path-tree spectrum."""
        ids = getattr(graph, "label_ids_array", None)
        if ids is not None:
            neighbor_counts = self._bucket_counts_from_ids(
                self._bucket_array(graph), ids()[graph.neighbors_slice(vertex)]
            )
        else:
            neighbor_counts = self._bucket_counts(
                graph.label(w) for w in graph.neighbors(vertex)
            )
        tree_labels, adjacency = self._path_tree(graph, vertex)
        tree_counts = self._bucket_counts(tree_labels)
        eigenvalues = self._top_eigenvalues(adjacency)
        return VertexSignature(
            label=graph.label(vertex),
            neighbor_counts=neighbor_counts,
            tree_counts=tree_counts,
            eigenvalues=eigenvalues,
        )

    def _path_tree(self, graph: Graph, root: int) -> tuple[list, list[tuple[int, int]]]:
        """The level-n path tree of *root*.

        Nodes are the simple paths of length ``0..path_depth`` starting
        at *root*; each node is labeled by its endpoint's label and
        linked to its one-edge extensions.  Returns the node labels and
        the tree's edge list (over node ids).
        """
        labels = [graph.label(root)]
        edges: list[tuple[int, int]] = []
        # Frontier entries: (node_id, path vertices as tuple).
        frontier: list[tuple[int, tuple[int, ...]]] = [(0, (root,))]
        for _ in range(self.path_depth):
            next_frontier: list[tuple[int, tuple[int, ...]]] = []
            for node_id, path in frontier:
                tail = path[-1]
                for w in graph.neighbors(tail):
                    if w in path:
                        continue
                    child_id = len(labels)
                    labels.append(graph.label(w))
                    edges.append((node_id, child_id))
                    next_frontier.append((child_id, path + (w,)))
            frontier = next_frontier
        return labels, edges

    def _top_eigenvalues(self, edges: list[tuple[int, int]]) -> tuple[float, ...]:
        if not edges:
            return tuple([-float("inf")] * self.top_eigenvalues)
        size = max(max(u, v) for u, v in edges) + 1
        matrix = np.zeros((size, size))
        for u, v in edges:
            matrix[u, v] = matrix[v, u] = 1.0
        spectrum = np.linalg.eigvalsh(matrix)[::-1]  # descending
        top = [float(value) for value in spectrum[: self.top_eigenvalues]]
        while len(top) < self.top_eigenvalues:
            top.append(-float("inf"))
        return tuple(top)

    def _bucket_counts(self, labels) -> tuple[int, ...]:
        counts = [0] * self.counter_buckets
        for label in labels:
            bucket = stable_hash(label) % self.counter_buckets
            if counts[bucket] < 255:  # saturating counters keep dominance
                counts[bucket] += 1
        return tuple(counts)

    def _bucket_array(self, graph) -> np.ndarray:
        """Bucket id per label-table entry, cached across CSR graphs."""
        table = graph.label_table
        cached = self._bucket_cache
        if cached is None or cached[0] is not table:
            buckets = np.array(
                [stable_hash(label) % self.counter_buckets for label in table],
                dtype=np.int64,
            )
            self._bucket_cache = cached = (table, buckets)
        return cached[1]

    def _bucket_counts_from_ids(
        self, bucket_of: np.ndarray, label_ids: np.ndarray
    ) -> tuple[int, ...]:
        """Vectorized twin of :meth:`_bucket_counts` over label ids.

        ``bincount`` then clamp matches the scalar saturating loop
        exactly: counts only grow, so clamping after the fact is the
        same as refusing increments past 255.  Counts come back as
        Python ints so signatures stay byte-identical across cores.
        """
        counts = np.bincount(bucket_of[label_ids], minlength=self.counter_buckets)
        return tuple(np.minimum(counts, 255).tolist())

    # ------------------------------------------------------------------
    # build / filter
    # ------------------------------------------------------------------

    def _build(self, dataset: GraphDataset, budget: Budget | None) -> dict:
        codes = []
        # Rough per-signature footprint: two counter tuples + spectrum.
        signature_bytes = self.counter_buckets * 2 * 30 + self.top_eigenvalues * 30 + 120
        signatures_built = 0
        for graph in dataset:
            if budget is not None:
                budget.check()
                budget.check_memory(signatures_built * signature_bytes)
            codes.append(self.graph_code(graph, budget=budget))
            signatures_built += graph.order
        codes.sort(key=lambda code: code.order)
        self._codes = codes
        self._orders = [code.order for code in codes]
        return {"signatures": sum(code.order for code in codes)}

    def _filter(self, query: Graph, budget: Budget | None) -> set[int]:
        query_code = self.graph_code(query, budget=budget)
        candidates = set()
        start = bisect.bisect_left(self._orders, query.order)
        for code in self._codes[start:]:
            if budget is not None:
                budget.check()
            if not _counts_dominate(query_code.label_counts, code.label_counts):
                continue
            if self._signatures_match(query_code.signatures, code.signatures):
                candidates.add(code.graph_id)
        return candidates

    def _signatures_match(
        self,
        query_signatures: tuple[VertexSignature, ...],
        data_signatures: tuple[VertexSignature, ...],
    ) -> bool:
        """Stage-2 filter: semi-perfect matching of query signatures.

        Every query vertex must claim a *distinct* data vertex whose
        signature dominates its own (Kuhn's augmenting-path matching).
        """
        adjacency = []
        for q_sig in query_signatures:
            row = [
                j
                for j, g_sig in enumerate(data_signatures)
                if g_sig.dominates(q_sig)
            ]
            if not row:
                return False
            adjacency.append(row)
        # Try scarce query vertices first: fewer options, faster failure.
        order = sorted(range(len(adjacency)), key=lambda i: len(adjacency[i]))
        matched_to: dict[int, int] = {}

        def try_assign(qi: int, banned: set[int]) -> bool:
            for dj in adjacency[qi]:
                if dj in banned:
                    continue
                banned.add(dj)
                if dj not in matched_to or try_assign(matched_to[dj], banned):
                    matched_to[dj] = qi
                    return True
            return False

        return all(try_assign(qi, set()) for qi in order)

    def _size_payload(self) -> object:
        return (self._codes, self._orders)

    # -- artifact contract ---------------------------------------------

    def _index_params(self) -> dict:
        return {
            "path_depth": self.path_depth,
            "top_eigenvalues": self.top_eigenvalues,
            "counter_buckets": self.counter_buckets,
        }

    def _export_payload(self) -> object:
        return (self._codes, self._orders)

    def _import_payload(self, payload: object) -> None:
        codes, orders = payload  # type: ignore[misc]
        self._codes = codes
        self._orders = orders


def _counts_dominate(query_counts: tuple[int, ...], data_counts: tuple[int, ...]) -> bool:
    return all(q <= g for q, g in zip(query_counts, data_counts))
