"""gIndex — frequent, discriminative subgraph features [21].

Yan, Yu & Han, *Graph indexing: a frequent structure-based approach*,
SIGMOD 2004.  Index construction mines all frequent subgraph fragments
up to a size limit (paper settings: size 10, support ratio 0.1) and
retains only the *discriminative* ones (ratio γ = 2.0) — a fragment
whose support is not substantially smaller than the intersection of its
already-indexed subfragments adds no pruning power and is dropped.
Every frequent fragment, discriminative or not, stays in a lookup set
standing in for the prefix tree's internal nodes: it drives apriori
pruning at query time.

Query processing grows the query's fragments one edge at a time from
single edges, never expanding a fragment absent from the frequent set
("if a fragment does not appear in the index, no supergraphs of that
fragment will be produced", §3).  The candidate set intersects the
graph-id lists of the matched discriminative fragments; this equals the
paper's "intersection over maximal fragments per expansion path"
because a subfragment's id list is a superset of its extensions', so
non-maximal terms never change the intersection.

gIndex represents the frequent-mining / graph-features corner: strong
filtering on small sparse datasets, but indexing cost explodes as
graphs grow (§5.2.1) or labels shrink (§5.2.3).

Reproduces: gIndex (Yan, Yu & Han, SIGMOD 2004) — reference [21] of
the benchmarked paper.

Feature class: subgraphs — frequent, discriminative subgraph fragments
of up to ``max_fragment_edges`` edges, mined with gSpan.

Known deviations: a flat frequent-fragment lookup set stands in for
the original's prefix tree (same apriori pruning, different constant
factors); the mining support is a single ``support_ratio`` rather than
the original's size-increasing support function; candidate
intersection uses all matched discriminative fragments, which equals
the paper's maximal-fragments-per-expansion-path intersection (see
above) without tracking maximality.
"""

from __future__ import annotations

import math

from repro.canonical.dfscode import DfsCode
from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.indexes.base import GraphIndex
from repro.mining.discriminative import select_discriminative
from repro.mining.gspan import mine_frequent_patterns
from repro.utils.budget import Budget

__all__ = ["GIndex"]


class GIndex(GraphIndex):
    """gIndex: frequent + discriminative subgraph fragments.

    Parameters
    ----------
    max_fragment_edges:
        Maximum fragment size in edges (paper setting: 10).
    support_ratio:
        Minimum fraction of dataset graphs containing a fragment for it
        to be frequent (paper setting: 0.1).
    discriminative_ratio:
        γ for discriminative selection (paper setting: 2.0).
    """

    name = "gindex"

    def __init__(
        self,
        max_fragment_edges: int = 10,
        support_ratio: float = 0.1,
        discriminative_ratio: float = 2.0,
    ) -> None:
        super().__init__()
        if max_fragment_edges < 1:
            raise ValueError(f"max_fragment_edges must be >= 1, got {max_fragment_edges}")
        if not 0.0 < support_ratio <= 1.0:
            raise ValueError(f"support_ratio must be in (0, 1], got {support_ratio}")
        self.max_fragment_edges = max_fragment_edges
        self.support_ratio = support_ratio
        self.discriminative_ratio = discriminative_ratio
        #: Discriminative fragment -> graph-id list (the index payload).
        self._id_lists: dict[DfsCode, frozenset[int]] = {}
        #: All frequent fragments (apriori pruning set).
        self._frequent: set[DfsCode] = set()

    def _build(self, dataset: GraphDataset, budget: Budget | None) -> dict:
        min_support = max(1, math.ceil(self.support_ratio * len(dataset)))
        frequent = mine_frequent_patterns(
            list(dataset),
            min_support=min_support,
            max_edges=self.max_fragment_edges,
            budget=budget,
        )
        selected = select_discriminative(
            frequent.values(),
            gamma=self.discriminative_ratio,
            num_graphs=len(dataset),
            budget=budget,
        )
        self._frequent = set(frequent)
        self._id_lists = {
            pattern.code: frozenset(pattern.support_set()) for pattern in selected
        }
        return {
            "frequent_fragments": len(frequent),
            "indexed_fragments": len(self._id_lists),
            "min_support": min_support,
        }

    def _filter(self, query: Graph, budget: Budget | None) -> set[int]:
        assert self._dataset is not None
        if query.size == 0:
            return self._dataset.all_ids()
        # Grow the query's fragments with apriori pruning against the
        # frequent set: mining the single query graph with support 1.
        fragments = mine_frequent_patterns(
            [query],
            min_support=1,
            max_edges=self.max_fragment_edges,
            keep=self._frequent.__contains__,
            budget=budget,
        )
        candidates: set[int] | None = None
        for code in fragments:
            id_list = self._id_lists.get(code)
            if id_list is None:
                continue  # frequent but not discriminative: apriori only
            candidates = (
                set(id_list) if candidates is None else candidates & id_list
            )
            if not candidates:
                return set()
        return self._dataset.all_ids() if candidates is None else candidates

    def _size_payload(self) -> object:
        return (self._id_lists, self._frequent)

    # -- artifact contract ---------------------------------------------

    def _index_params(self) -> dict:
        return {
            "max_fragment_edges": self.max_fragment_edges,
            "support_ratio": self.support_ratio,
            "discriminative_ratio": self.discriminative_ratio,
        }

    def _export_payload(self) -> object:
        return (self._id_lists, self._frequent)

    def _import_payload(self, payload: object) -> None:
        id_lists, frequent = payload  # type: ignore[misc]
        self._id_lists = id_lists
        self._frequent = frequent
