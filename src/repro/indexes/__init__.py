"""The six benchmarked subgraph-query indexes plus two baselines.

Every method follows the filter-and-verify contract of
:class:`~repro.indexes.base.GraphIndex`:

=================  ==========  ===================  =================
Method             Features    Extraction           Index structure
=================  ==========  ===================  =================
GraphGrepSX [2]    paths       exhaustive           suffix/prefix trie
Grapes [9]         paths       exhaustive,parallel  trie + locations
CT-Index [13]      trees+      exhaustive           bit fingerprints
                   cycles
gCode [28]         paths       exhaustive           spectral vertex
                                                    signatures
gIndex [21]        subgraphs   frequent mining      DFS-code table
Tree+Δ [27]        trees (+Δ)  frequent mining      hash table
CNI                vertex      one adjacency pass   neighborhood
                   signatures                       bitmasks
NaiveIndex         —           —                    — (full scan)
=================  ==========  ===================  =================

All indexes share the query pipeline: ``filter`` produces a candidate
id set (never dropping a true answer), ``verify`` runs first-match VF2
over the candidates, and ``query`` reports candidates, answers and
per-stage timings so the harness can compute the paper's metrics.  In
the single-graph regime the same pipeline runs per-vertex: candidate
*domains* in, verified *embedding roots* out (see
:mod:`repro.indexes.base`); the CNI index is the method built for that
regime.
"""

from repro.indexes.base import (
    REGIMES,
    SINGLE_GRAPH,
    TRANSACTIONAL,
    BuildReport,
    GraphIndex,
    QueryResult,
)
from repro.indexes.cni import CNIIndex
from repro.indexes.ctindex import CTIndex
from repro.indexes.gcode import GCodeIndex
from repro.indexes.ggsx import GraphGrepSXIndex
from repro.indexes.gindex import GIndex
from repro.indexes.grapes import GrapesIndex
from repro.indexes.naive import NaiveIndex
from repro.indexes.treedelta import TreeDeltaIndex

#: Factory table: paper method name -> index class (paper defaults).
ALL_INDEX_CLASSES = {
    GrapesIndex.name: GrapesIndex,
    GraphGrepSXIndex.name: GraphGrepSXIndex,
    CTIndex.name: CTIndex,
    GIndex.name: GIndex,
    TreeDeltaIndex.name: TreeDeltaIndex,
    GCodeIndex.name: GCodeIndex,
    CNIIndex.name: CNIIndex,
    NaiveIndex.name: NaiveIndex,
}

__all__ = [
    "GraphIndex",
    "BuildReport",
    "QueryResult",
    "TRANSACTIONAL",
    "SINGLE_GRAPH",
    "REGIMES",
    "NaiveIndex",
    "GraphGrepSXIndex",
    "GrapesIndex",
    "CTIndex",
    "GCodeIndex",
    "GIndex",
    "TreeDeltaIndex",
    "CNIIndex",
    "ALL_INDEX_CLASSES",
]
