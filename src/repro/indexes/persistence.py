"""Saving and loading built indexes — a compat shim over the store.

§6 notes that these indexes are meant to reside in main memory, but a
practical deployment builds once and reuses across processes.  The
machinery lives in :mod:`repro.indexes.store`: indexes serialize as
content-addressed **artifacts** (header + structure payload, per the
:class:`~repro.indexes.base.GraphIndex` artifact contract).  This
module keeps the original single-file ``save_index`` / ``load_index``
API as a thin wrapper: the file is one store artifact with the packed
dataset appended, so a saved index remains standalone — loading it
reconstructs both the dataset and the index structure.

Dataset identity is the one content digest the whole system shares:
:func:`repro.graphs.dataset.dataset_fingerprint` (a BLAKE2b digest of
the flat-array packed form), the same value that keys the shared-memory
arena caches, the index store, and shard-manifest artifact records.
The old weak histogram hash is gone.

Security note: artifact payloads are pickles.  Only load index files
you produced yourself — the same trust model as the original systems'
binary index files.
"""

from __future__ import annotations

from pathlib import Path

from repro.graphs.dataset import (
    GraphDataset,
    dataset_fingerprint,
    pack_dataset,
    unpack_dataset,
)
from repro.indexes.base import GraphIndex
from repro.indexes.store import (
    IndexStoreError,
    artifact_from_index,
    materialize_artifact,
    read_artifact,
    write_artifact,
)

__all__ = ["save_index", "load_index", "dataset_fingerprint", "IndexFileError"]

#: The historical error type; store failures re-raise as this.
IndexFileError = IndexStoreError


def save_index(index: GraphIndex, path: str | Path) -> None:
    """Persist a built index (including its dataset) to *path*.

    The file is a standalone store artifact: header with provenance,
    the index structure payload, and the packed dataset.

    Raises
    ------
    RuntimeError
        If the index has not been built.
    """
    dataset = index.dataset  # raises RuntimeError when unbuilt
    artifact = artifact_from_index(index, dataset_fingerprint(dataset))
    write_artifact(path, artifact, dataset_blob=pack_dataset(dataset))


def load_index(
    path: str | Path, expect_dataset: GraphDataset | None = None
) -> GraphIndex:
    """Load an index persisted by :func:`save_index`.

    Parameters
    ----------
    expect_dataset:
        When given, the stored dataset content digest must match this
        dataset's; a mismatch raises :class:`IndexFileError` (querying
        an index built over different data silently returns wrong ids).
        The returned index is attached to *expect_dataset* when given,
        otherwise to the dataset packed into the file.
    """
    expect_digest = (
        dataset_fingerprint(expect_dataset) if expect_dataset is not None else None
    )
    artifact, dataset_blob = read_artifact(path, expect_digest=expect_digest)
    if expect_dataset is not None:
        dataset = expect_dataset
    elif dataset_blob is not None:
        dataset = unpack_dataset(dataset_blob)
    else:
        raise IndexFileError(
            f"{path}: artifact carries no dataset; pass expect_dataset "
            "(store-tier artifacts are dataset-free by design)"
        )
    return materialize_artifact(artifact, dataset)
