"""Saving and loading built indexes.

§6 notes that these indexes are meant to reside in main memory, but a
practical deployment builds once and reuses across processes.  Indexes
(and the datasets they were built over) are plain Python object graphs,
so persistence is pickle-based, wrapped with a header that records the
method name, library version, and dataset fingerprint so a stale or
mismatched index fails loudly instead of answering queries wrongly.

Security note: pickle executes code on load.  Only load index files
you produced yourself — the same trust model as the original systems'
binary index files.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.graphs.dataset import GraphDataset
from repro.indexes.base import GraphIndex
from repro.utils.hashing import stable_hash

__all__ = ["save_index", "load_index", "dataset_fingerprint", "IndexFileError"]

_MAGIC = "repro-index-v1"


class IndexFileError(RuntimeError):
    """Raised when an index file is malformed or inconsistent."""


@dataclass(frozen=True, slots=True)
class _Header:
    magic: str
    method: str
    dataset_fingerprint: int
    num_graphs: int


def dataset_fingerprint(dataset: GraphDataset) -> int:
    """A cheap, stable content fingerprint of a dataset.

    Hashes graph counts, orders, sizes and label histograms — enough to
    catch the realistic failure mode (loading an index built over a
    different dataset) without hashing every edge.
    """
    parts = [len(dataset)]
    for graph in dataset:
        histogram = tuple(
            sorted(graph.label_histogram().items(), key=lambda kv: repr(kv[0]))
        )
        parts.append((graph.order, graph.size, histogram))
    return stable_hash(tuple(parts))


def save_index(index: GraphIndex, path: str | Path) -> None:
    """Persist a built index (including its dataset) to *path*.

    Raises
    ------
    RuntimeError
        If the index has not been built.
    """
    dataset = index.dataset  # raises RuntimeError when unbuilt
    header = _Header(
        magic=_MAGIC,
        method=index.name,
        dataset_fingerprint=dataset_fingerprint(dataset),
        num_graphs=len(dataset),
    )
    with open(path, "wb") as handle:
        pickle.dump(header, handle, protocol=pickle.HIGHEST_PROTOCOL)
        pickle.dump(index, handle, protocol=pickle.HIGHEST_PROTOCOL)


def load_index(
    path: str | Path, expect_dataset: GraphDataset | None = None
) -> GraphIndex:
    """Load an index persisted by :func:`save_index`.

    Parameters
    ----------
    expect_dataset:
        When given, the stored dataset fingerprint must match this
        dataset's; a mismatch raises :class:`IndexFileError` (querying
        an index built over different data silently returns wrong ids).
    """
    with open(path, "rb") as handle:
        try:
            header = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError) as exc:
            raise IndexFileError(f"{path}: not an index file") from exc
        if not isinstance(header, _Header) or header.magic != _MAGIC:
            raise IndexFileError(f"{path}: not a {_MAGIC} file")
        index = pickle.load(handle)
    if not isinstance(index, GraphIndex):
        raise IndexFileError(f"{path}: payload is not a GraphIndex")
    if expect_dataset is not None:
        fingerprint = dataset_fingerprint(expect_dataset)
        if fingerprint != header.dataset_fingerprint:
            raise IndexFileError(
                f"{path}: index was built over a different dataset "
                f"(method {header.method!r}, {header.num_graphs} graphs)"
            )
    return index
