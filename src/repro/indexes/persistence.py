"""Deprecated alias module — the single-file API lives in the store.

``save_index`` / ``load_index`` / ``IndexFileError`` (and the
re-exported ``dataset_fingerprint``) moved to
:mod:`repro.indexes.store`, which has owned the actual machinery since
the artifact contract landed.  This stub keeps old imports working and
warns **once per process** on first attribute access; it will be
removed in a future release — import from ``repro.indexes.store`` (or
``repro.graphs.dataset`` for ``dataset_fingerprint``).
"""

from __future__ import annotations

import warnings

__all__ = ["save_index", "load_index", "dataset_fingerprint", "IndexFileError"]

_warned = False


def _warn_once() -> None:
    global _warned
    if _warned:
        return
    _warned = True
    warnings.warn(
        "repro.indexes.persistence is deprecated; import save_index/"
        "load_index/IndexFileError from repro.indexes.store instead",
        DeprecationWarning,
        stacklevel=3,
    )


def __getattr__(name: str):
    if name in ("save_index", "load_index", "IndexFileError"):
        _warn_once()
        from repro.indexes import store

        return getattr(store, name)
    if name == "dataset_fingerprint":
        _warn_once()
        from repro.graphs.dataset import dataset_fingerprint

        return dataset_fingerprint
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
