"""Tree+Δ — frequent trees plus on-demand graph features [27].

Zhao, Yu & Yu, *Graph indexing: tree + delta >= graph*, VLDB 2007.
Index construction mines only frequent *tree* features (paper settings:
size 10, support ratio 0.1) into a hash table of canonical label →
graph-id list — trees canonicalize and mine far cheaper than general
subgraphs, which is the method's founding observation.

At query time, all tree fragments of the query are looked up (with
apriori pruning on absent fragments) and their id lists intersected.
Then the Δ step "reclaims" the filtering power trees lack on cyclic
queries: each simple cycle of the query, and each of its one-edge
extensions, is considered a candidate *graph feature* δ.  The
discriminative ratio of δ against its tree subfeatures is::

    disc(δ) = 1 − |D(δ)| / |C_T(δ)|

where ``C_T(δ)`` intersects the id lists of δ's tree fragments and
``D(δ)`` is computed by subgraph tests over ``C_T(δ)``.  A δ whose
ratio clears ``delta_min_discriminative`` (paper's ε₀ analog: 0.1)
filters the current query, and one clearing ``delta_add_threshold``
(the §4.1 "support ratio to add new features", 0.8, interpreted here as
the pruning fraction 1 − |D|/|C_T| required for permanent adoption) is
cached in the index for all subsequent queries — the "+Δ" that grows
the index toward graph-feature power where queries prove it pays.

Reproduces: Tree+Δ (Zhao, Yu & Yu, VLDB 2007) — reference [27] of the
benchmarked paper.

Feature class: trees (mined frequent subtrees), extended on demand
with cyclic *graph* features discovered at query time.

Known deviations: Δ candidates are limited to the query's simple
cycles and their one-edge extensions rather than the original's full
reclaimed-feature enumeration; the §4.1 "support ratio to add new
features" (0.8) is interpreted as the pruning fraction required for
permanent adoption (``delta_add_threshold``), as documented above;
tree mining reuses our gSpan restricted to acyclic growth instead of
a dedicated tree miner.
"""

from __future__ import annotations

import math

from repro.canonical.dfscode import DfsCode, min_dfs_code
from repro.features.cycles import enumerate_simple_cycles
from repro.graphs.dataset import DatasetDelta, GraphDataset, removal_remap
from repro.graphs.graph import Graph
from repro.indexes.base import GraphIndex
from repro.isomorphism.vf2 import is_subgraph
from repro.mining.gspan import mine_frequent_patterns
from repro.utils.budget import Budget

__all__ = ["TreeDeltaIndex"]


class TreeDeltaIndex(GraphIndex):
    """Tree+Δ: frequent-tree hash table with on-demand Δ features.

    Parameters
    ----------
    max_feature_edges:
        Maximum tree/Δ feature size in edges (paper setting: 10).
    support_ratio:
        Frequent-tree support threshold (paper setting: 0.1).
    delta_min_discriminative:
        Minimum discriminative ratio for a δ feature to be used for the
        current query (paper setting: 0.1).
    delta_add_threshold:
        Pruning fraction a δ must achieve to be adopted into the index
        permanently (derived from the paper's 0.8 add threshold).
    """

    name = "tree+delta"

    def __init__(
        self,
        max_feature_edges: int = 10,
        support_ratio: float = 0.1,
        delta_min_discriminative: float = 0.1,
        delta_add_threshold: float = 0.8,
    ) -> None:
        super().__init__()
        if max_feature_edges < 1:
            raise ValueError(f"max_feature_edges must be >= 1, got {max_feature_edges}")
        if not 0.0 < support_ratio <= 1.0:
            raise ValueError(f"support_ratio must be in (0, 1], got {support_ratio}")
        self.max_feature_edges = max_feature_edges
        self.support_ratio = support_ratio
        self.delta_min_discriminative = delta_min_discriminative
        self.delta_add_threshold = delta_add_threshold
        #: Frequent-tree hash table: canonical code -> graph-id list.
        self._tree_ids: dict[DfsCode, frozenset[int]] = {}
        #: All frequent tree codes (apriori pruning at query time).
        self._frequent_trees: set[DfsCode] = set()
        #: Adopted Δ features: canonical code -> graph-id list.
        self._delta_ids: dict[DfsCode, frozenset[int]] = {}

    # ------------------------------------------------------------------

    def _build(self, dataset: GraphDataset, budget: Budget | None) -> dict:
        min_support = max(1, math.ceil(self.support_ratio * len(dataset)))
        frequent = mine_frequent_patterns(
            list(dataset),
            min_support=min_support,
            max_edges=self.max_feature_edges,
            trees_only=True,
            budget=budget,
        )
        self._frequent_trees = set(frequent)
        self._tree_ids = {
            code: frozenset(pattern.support_set())
            for code, pattern in frequent.items()
        }
        self._delta_ids = {}
        return {
            "frequent_trees": len(self._tree_ids),
            "min_support": min_support,
        }

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------

    def _update(
        self,
        new_dataset: GraphDataset,
        delta: DatasetDelta,
        budget: Budget | None,
    ) -> dict | None:
        """Incremental maintenance of the frequent-tree table.

        Sound only while the absolute support threshold is unchanged
        (``ceil(support_ratio * |D|)`` before == after); otherwise the
        frequent set can grow in ways only a full re-mine sees, so we
        decline and the base class rebuilds.

        With the threshold fixed the table stays *exact* throughout:

        * every stored id list is the exact support set of its code
          (gSpan records true embeddings), so dropping removed ids and
          re-densifying keeps it exact over the survivors;
        * a code that becomes frequent only after the delta must occur
          in at least one added graph (its survivor support is below
          the threshold by anti-monotonicity), so solo-mining the added
          graphs discovers every table entrant — survivor support for
          brand-new codes is then counted by verification over a
          fragment-pruned candidate pool;
        * finally every entry below the threshold is evicted.

        The Δ table resets to empty, exactly as a cold build leaves it.
        """
        assert self._dataset is not None
        old_min = max(1, math.ceil(self.support_ratio * len(self._dataset)))
        new_min = max(1, math.ceil(self.support_ratio * len(new_dataset)))
        if new_min != old_min:
            return None

        remap = removal_remap(len(self._dataset), delta.removed)
        table: dict[DfsCode, frozenset[int]] = {
            code: frozenset(remap[g] for g in ids if g in remap)
            for code, ids in self._tree_ids.items()
        }

        first_new = len(new_dataset) - len(delta.added)
        added_codes: dict[DfsCode, tuple[Graph, set[int]]] = {}
        for graph_id in range(first_new, len(new_dataset)):
            if budget is not None:
                budget.check()
            mined = mine_frequent_patterns(
                [new_dataset[graph_id]],
                min_support=1,
                max_edges=self.max_feature_edges,
                trees_only=True,
                budget=budget,
            )
            for code, pattern in mined.items():
                entry = added_codes.get(code)
                if entry is None:
                    added_codes[code] = (pattern.graph, {graph_id})
                else:
                    entry[1].add(graph_id)

        for code, (pattern_graph, new_ids) in added_codes.items():
            existing = table.get(code)
            if existing is not None:
                table[code] = existing | frozenset(new_ids)
                continue
            # Brand new code: count its survivor support exactly, with
            # apriori pruning through fragments already tabled.
            candidates = self._survivor_candidates(
                pattern_graph, table, first_new, budget
            )
            verified = set()
            for graph_id in candidates:
                if budget is not None:
                    budget.check()
                if is_subgraph(
                    pattern_graph, new_dataset[graph_id], budget=budget
                ):
                    verified.add(graph_id)
            table[code] = frozenset(verified) | frozenset(new_ids)

        table = {
            code: ids for code, ids in table.items() if len(ids) >= new_min
        }
        self._tree_ids = table
        self._frequent_trees = set(table)
        self._delta_ids = {}
        return {
            "frequent_trees": len(table),
            "min_support": new_min,
            "added": len(delta.added),
            "removed": len(delta.removed),
        }

    def _survivor_candidates(
        self,
        pattern_graph: Graph,
        table: dict[DfsCode, frozenset[int]],
        first_new: int,
        budget: Budget | None,
    ) -> set[int]:
        """Surviving-graph ids that may contain *pattern_graph*.

        Intersects the exact id lists of the pattern's tree fragments
        that are present in *table*; missing fragments only widen the
        pool (verification closes the gap).
        """
        fragments = mine_frequent_patterns(
            [pattern_graph],
            min_support=1,
            max_edges=self.max_feature_edges,
            trees_only=True,
            budget=budget,
        )
        pool: set[int] | None = None
        for code in fragments:
            ids = table.get(code)
            if ids is None:
                continue
            pool = set(ids) if pool is None else pool & ids
            if not pool:
                return set()
        if pool is None:
            return set(range(first_new))
        return {graph_id for graph_id in pool if graph_id < first_new}

    # ------------------------------------------------------------------

    def _filter(self, query: Graph, budget: Budget | None) -> set[int]:
        assert self._dataset is not None
        if query.size == 0:
            return self._dataset.all_ids()

        candidates = self._tree_filter(query, budget=budget)
        if candidates is None:
            return self._dataset.all_ids()
        if not candidates:
            return set()

        for delta_graph, code in self._delta_features(query, budget):
            id_list = self._delta_ids.get(code)
            if id_list is None:
                id_list = self._evaluate_delta(delta_graph, code, budget)
                if id_list is None:
                    continue  # not discriminative enough to use
            candidates &= id_list
            if not candidates:
                return set()
        return candidates

    def _tree_filter(
        self, graph: Graph, budget: Budget | None
    ) -> set[int] | None:
        """Intersect id lists over *graph*'s frequent tree fragments.

        Returns ``None`` when no fragment is indexed (no information).
        """
        fragments = mine_frequent_patterns(
            [graph],
            min_support=1,
            max_edges=self.max_feature_edges,
            trees_only=True,
            keep=self._frequent_trees.__contains__,
            budget=budget,
        )
        candidates: set[int] | None = None
        for code in fragments:
            id_list = self._tree_ids.get(code)
            if id_list is None:
                continue
            candidates = (
                set(id_list) if candidates is None else candidates & id_list
            )
            if not candidates:
                return candidates
        return candidates

    # ------------------------------------------------------------------
    # Δ features
    # ------------------------------------------------------------------

    def _delta_features(self, query: Graph, budget: Budget | None):
        """Candidate Δ features: simple cycles and one-edge extensions.

        Yields ``(feature_graph, canonical_code)``, deduplicated by
        code within this query.
        """
        seen: set[DfsCode] = set()
        for cycle in enumerate_simple_cycles(query, self.max_feature_edges, budget=budget):
            cycle_edges = list(zip(cycle, cycle[1:] + cycle[:1]))
            base = _edge_subgraph(query, cycle_edges)
            for feature in self._cycle_extensions(query, cycle, cycle_edges, base):
                code = min_dfs_code(feature)
                if code not in seen:
                    seen.add(code)
                    yield feature, code

    def _cycle_extensions(self, query, cycle, cycle_edges, base):
        """The cycle itself plus each one-edge adjacent extension."""
        yield base
        if len(cycle_edges) + 1 > self.max_feature_edges:
            return
        on_cycle = set(cycle)
        cycle_edge_set = {frozenset(edge) for edge in cycle_edges}
        seen_extension: set[frozenset] = set()
        for v in cycle:
            for w in query.neighbors(v):
                edge = frozenset((v, w))
                if edge in cycle_edge_set or edge in seen_extension:
                    continue
                seen_extension.add(edge)
                yield _edge_subgraph(query, cycle_edges + [(v, w)])

    def _evaluate_delta(
        self, feature: Graph, code: DfsCode, budget: Budget | None
    ) -> frozenset[int] | None:
        """Score δ against its tree fragments; adopt it if it prunes.

        Returns the id list to filter with, or ``None`` when δ is not
        discriminative (then nothing beyond its trees is known).
        """
        assert self._dataset is not None
        tree_pool = self._tree_filter(feature, budget=budget)
        if tree_pool is None:
            tree_pool = self._dataset.all_ids()
        if not tree_pool:
            return frozenset()
        containing = set()
        for graph_id in tree_pool:
            if budget is not None:
                budget.check()
            if is_subgraph(feature, self._dataset[graph_id], budget=budget):
                containing.add(graph_id)
        discriminative = 1.0 - len(containing) / len(tree_pool)
        if discriminative < self.delta_min_discriminative:
            return None
        id_list = frozenset(containing)
        if discriminative >= 1.0 - self.delta_add_threshold:
            self._delta_ids[code] = id_list
        return id_list

    def _size_payload(self) -> object:
        return (self._tree_ids, self._frequent_trees, self._delta_ids)

    # -- artifact contract ---------------------------------------------

    def _index_params(self) -> dict:
        return {
            "max_feature_edges": self.max_feature_edges,
            "support_ratio": self.support_ratio,
            "delta_min_discriminative": self.delta_min_discriminative,
            "delta_add_threshold": self.delta_add_threshold,
        }

    def _export_payload(self) -> object:
        # The payload is the mined table alone, in one canonical sorted
        # form.  Query-time Δ adoptions are deliberately *excluded*: the
        # Δ table is a per-instance cache whose content depends on which
        # queries happened to run, so folding it in would make the
        # export a function of query history — breaking both the
        # update == rebuild byte-identity contract and determinism of
        # persisted artifacts.  (``repr`` is the sort key because DfsCode
        # tuples can mix label types that don't order against each
        # other; dedup_structure makes equal exports pickle to equal
        # bytes — pickle memoizes leaves by identity.)
        from repro.utils.hashing import dedup_structure

        return dedup_structure(
            tuple(
                sorted(
                    (
                        (code, tuple(sorted(ids)))
                        for code, ids in self._tree_ids.items()
                    ),
                    key=lambda item: repr(item[0]),
                )
            )
        )

    def _import_payload(self, payload: object) -> None:
        assert isinstance(payload, tuple)
        # Fresh containers: the Δ table mutates at query time, and one
        # in-memory payload may back several materialized instances.
        self._tree_ids = {code: frozenset(ids) for code, ids in payload}
        self._frequent_trees = set(self._tree_ids)
        self._delta_ids = {}


def _edge_subgraph(graph: Graph, edges: list[tuple[int, int]]) -> Graph:
    """The subgraph formed by exactly *edges* (vertices re-densified)."""
    vertices = sorted({v for edge in edges for v in edge})
    index_of = {v: i for i, v in enumerate(vertices)}
    feature = Graph([graph.label(v) for v in vertices])
    for u, v in edges:
        feature.add_edge(index_of[u], index_of[v])
    return feature
