"""CNI: compact per-vertex neighborhood-signature index.

Nabti & Seba ("Querying massive graph data: a compact graph index",
and the survey lineage behind it) answer subgraph queries over massive
graphs without feature mining: every data vertex carries a *compact
neighborhood signature* — its label, degree, and a fixed-width bitmask
of the labels in its neighborhood — and filtering is pure signature
dominance.  A data vertex can host a query vertex only if its label
matches, its degree is at least as large, and its mask covers the
query vertex's mask bit-for-bit; no candidate hosting an embedding is
ever dropped, because an embedding maps neighbors onto distinct
same-labeled neighbors.

This is the first index here built *for* the single-graph regime: its
:meth:`CNIIndex._filter_vertices` narrows the per-query-vertex domains
with signature dominance before the generic STwig pruning runs.  The
transactional regime works too — a graph survives filtering iff every
query vertex is dominated by some vertex of that graph — so the same
class passes the same contract suites as the six paper methods.

Reproduces: the compact-neighborhood-index family of Nabti & Seba
(CNI; signature = label + degree + neighborhood-label bitmask, with an
optional radius-2 mask that ORs the neighbors' masks).

Feature class: per-vertex neighborhood signatures — no enumeration, no
mining; construction is one pass over the adjacency per radius.

Known deviations: label bits are assigned by a stable blake2b hash of
the label's ``repr`` (the original hashes into a fixed-width map the
same way but does not pin the hash function); signatures are kept as
plain ints rather than the paper's packed C arrays.
"""

from __future__ import annotations

from hashlib import blake2b

from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.indexes.base import GraphIndex
from repro.utils.budget import Budget

__all__ = ["CNIIndex", "label_bit"]

#: Signature radii the index knows how to build.
_RADII = (1, 2)


def label_bit(label: object, mask_bits: int) -> int:
    """The bit position a label hashes to, stable across processes.

    ``blake2b`` of the label's ``repr`` — never the builtin ``hash()``,
    which is salted per process and would make signatures (and thus
    sweep digests) differ across shards.
    """
    digest = blake2b(repr(label).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % mask_bits


class CNIIndex(GraphIndex):
    """Compact neighborhood signatures with dominance filtering."""

    name = "cni"

    def __init__(self, mask_bits: int = 64, radius: int = 1) -> None:
        super().__init__()
        if mask_bits <= 0:
            raise ValueError(f"mask_bits must be positive, got {mask_bits}")
        if radius not in _RADII:
            raise ValueError(f"radius must be one of {_RADII}, got {radius}")
        self.mask_bits = mask_bits
        self.radius = radius
        #: graph id -> per-vertex signature rows
        #: ``(label, degree, mask[, mask2])``.
        self._signatures: dict[int, list[tuple]] = {}

    # -- construction ----------------------------------------------------

    def _signature_rows(self, graph: Graph) -> list[tuple]:
        bit_of: dict = {}

        def bit(label: object) -> int:
            cached = bit_of.get(label)
            if cached is None:
                cached = bit_of[label] = 1 << label_bit(label, self.mask_bits)
            return cached

        masks = []
        for v in graph.vertices():
            mask = 0
            for w in graph.neighbors(v):
                mask |= bit(graph.label(w))
            masks.append(mask)
        if self.radius == 1:
            return [
                (graph.label(v), graph.degree(v), masks[v])
                for v in graph.vertices()
            ]
        rows = []
        for v in graph.vertices():
            mask2 = 0
            for w in graph.neighbors(v):
                mask2 |= masks[w]
            rows.append((graph.label(v), graph.degree(v), masks[v], mask2))
        return rows

    def _build(self, dataset: GraphDataset, budget: Budget | None) -> dict:
        self._signatures = {}
        vertices = 0
        for graph in dataset:
            if budget is not None:
                budget.check()
            self._signatures[graph.graph_id] = self._signature_rows(graph)
            vertices += graph.order
        return {
            "num_graphs": len(dataset),
            "signature_vertices": vertices,
            "mask_bits": self.mask_bits,
            "radius": self.radius,
        }

    def _size_payload(self) -> object:
        return self._signatures

    # -- filtering -------------------------------------------------------

    def _dominates(self, data_row: tuple, query_row: tuple) -> bool:
        """May the data vertex of *data_row* host *query_row*'s vertex?"""
        if data_row[0] != query_row[0] or data_row[1] < query_row[1]:
            return False
        if query_row[2] & ~data_row[2]:
            return False
        if self.radius == 2 and query_row[3] & ~data_row[3]:
            return False
        return True

    def _filter(self, query: Graph, budget: Budget | None) -> set[int]:
        """Transactional dominance: every query vertex needs a host."""
        assert self._dataset is not None
        query_rows = self._signature_rows(query)
        candidates = set()
        for graph_id, rows in self._signatures.items():
            if budget is not None:
                budget.check()
            if all(
                any(self._dominates(row, qrow) for row in rows)
                for qrow in query_rows
            ):
                candidates.add(graph_id)
        return candidates

    def _filter_vertices(
        self, query: Graph, data: Graph, budget: Budget | None
    ) -> list[set[int]]:
        """Single-graph dominance: per-vertex domains from signatures.

        Starts from the generic label+degree domains and keeps only the
        data vertices whose stored signature dominates the query
        vertex's — a pure narrowing, so the superset invariant holds.
        """
        rows = self._signatures[data.graph_id]
        query_rows = self._signature_rows(query)
        domains = super()._filter_vertices(query, data, budget)
        return [
            {v for v in domain if self._dominates(rows[v], query_rows[u])}
            for u, domain in enumerate(domains)
        ]

    # -- artifact contract ----------------------------------------------

    def _index_params(self) -> dict:
        return {"mask_bits": self.mask_bits, "radius": self.radius}

    def _export_payload(self) -> object:
        return self._signatures

    def _import_payload(self, payload: object) -> None:
        assert isinstance(payload, dict)
        # Queries never mutate signature rows, but one in-memory payload
        # may back several instances — copy the outer mapping.
        self._signatures = dict(payload)
