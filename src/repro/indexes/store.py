"""Content-addressed index artifact store: build once, serve many.

The paper's dominant cost at scale is index *construction* (Figures
1a–6a: hours for gIndex/Tree+Δ on 10k+ graph datasets), yet queries
only ever need the finished structure.  Billion-scale systems therefore
make "build once, serve many" the core contract (Sun et al., *Efficient
Subgraph Matching on Billion Node Graphs*; Nabti & Seba, *Compact
Neighborhood Index for Subgraph Queries*).  This module is that
contract for the reproduction:

* An :class:`IndexArtifact` is one built index, split per the
  :class:`~repro.indexes.base.GraphIndex` artifact contract into a
  *header* (method, canonical ``index_params``, dataset content digest,
  provenance: measured build seconds, payload size, library version)
  and a *payload* (the index structure itself — trie, fingerprints, id
  lists — never the dataset, never the instance).
* The **content address** of an artifact is a pure function of
  ``(method, index_params, dataset_digest)``; two builds of the same
  configuration over the same data collide on purpose, which is what
  makes the artifact reusable across sweep cells, worker processes,
  and CLI invocations.
* An :class:`IndexStore` holds artifacts in two tiers: a bounded
  in-memory LRU (per process; payloads stay live object graphs) over
  an optional on-disk directory (one file per artifact, shareable
  across invocations and machines).  ``get`` promotes disk hits into
  memory; ``put`` writes through.

Reuse semantics: artifacts are stored immediately after a successful
build, so a materialized index answers queries exactly as the freshly
built one did — Tree+Δ's query-time feature adoption starts from the
same post-build state.  Build budgets are *not* re-enforced on reuse
(a reused artifact is a zero-cost build); budget-failed builds are
never stored.

Security note: payloads are pickles.  Only point ``--index-store`` at
directories you produced yourself — the same trust model as the
original systems' binary index files.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path

from repro import __version__
from repro.graphs.dataset import (
    GraphDataset,
    dataset_fingerprint,
    pack_dataset,
    unpack_dataset,
)
from repro.indexes import ALL_INDEX_CLASSES
from repro.indexes.base import BuildReport, GraphIndex
from repro.utils.hashing import stable_hash

__all__ = [
    "ArtifactProvenance",
    "IndexArtifact",
    "IndexStore",
    "IndexStoreError",
    "StoreStats",
    "IndexFileError",
    "artifact_address",
    "artifact_from_index",
    "clear_stores",
    "lineage_address",
    "load_index",
    "materialize_artifact",
    "read_artifact",
    "read_artifact_header",
    "save_index",
    "shared_store",
    "strip_lineage",
    "write_artifact",
]

#: Artifact schema tag; bump when the on-disk layout changes.  Loading
#: any other tag is a loud "stale artifact" failure, never a guess.
#: v2: headers carry update lineage (parent address + delta digest).
_ARTIFACT_SCHEMA = "repro-index-artifact-v2"

#: Default capacity of the in-memory LRU tier, in artifacts.
_DEFAULT_MEMORY_ITEMS = 8


class IndexStoreError(RuntimeError):
    """An artifact that cannot be read or does not match its address."""


# ----------------------------------------------------------------------
# artifacts
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ArtifactProvenance:
    """Where an artifact came from — carried in every header.

    ``build_seconds`` is the *measured* construction time of the build
    that produced the payload; consumers reusing the artifact report it
    instead of a fake near-zero re-measured timing.
    """

    #: Measured wall-clock seconds of the original build.
    build_seconds: float
    #: The original build's payload size estimate (``size_bytes``).
    size_bytes: int
    #: The original build's detail counters.
    details: dict = field(default_factory=dict)
    #: ``repro.__version__`` of the process that built the payload.
    library_version: str = __version__
    #: Unix timestamp of the original build (0.0 = unknown).  Excluded
    #: from equality: a cold build and a warm (store-served) rerun of
    #: the same configuration must compare equal in tests — when an
    #: artifact was built is bookkeeping, not identity.
    created_at: float = field(default=0.0, compare=False)


@dataclass(frozen=True, slots=True)
class ArtifactHeader:
    """Identity + provenance of one artifact (cheap to read alone)."""

    method: str
    #: Canonical ``index_params()`` items, sorted by key.
    index_params: tuple[tuple[str, object], ...]
    #: Content digest of the dataset the index was built over
    #: (:func:`repro.graphs.dataset.dataset_fingerprint`).
    dataset_digest: int
    num_graphs: int
    provenance: ArtifactProvenance
    #: Update lineage: the address of the artifact this one was derived
    #: from by an incremental ``update()`` ("" = a cold build), and the
    #: :func:`repro.graphs.dataset.delta_fingerprint` of the delta that
    #: derived it.
    parent: str = ""
    delta_digest: int = 0

    @property
    def address(self) -> str:
        # Updated artifacts live at a lineage address — a pure function
        # of (parent address, delta digest) — so `repro index ls` can
        # show derivation chains.  Cold builds keep the content address,
        # preserving gc's name == header.address invariant either way.
        if self.parent:
            return lineage_address(self.parent, self.delta_digest)
        return artifact_address(
            self.method, dict(self.index_params), self.dataset_digest
        )

    def params_dict(self) -> dict:
        return dict(self.index_params)


@dataclass(frozen=True, slots=True)
class IndexArtifact:
    """One built index: header plus the exported structure payload."""

    header: ArtifactHeader
    payload: object

    @property
    def address(self) -> str:
        return self.header.address

    @property
    def provenance(self) -> ArtifactProvenance:
        return self.header.provenance


def _params_key(params: Mapping) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(params.items()))


def artifact_address(method: str, params: Mapping, dataset_digest: int) -> str:
    """The content address of a build: ``method-dataset-params`` digests.

    A pure function of what determines the built structure — the method
    name, its canonical parameters, and the dataset's content digest —
    so equal builds collide (that's the reuse) and any difference in
    any component lands in a different file.
    """
    safe_method = "".join(c if c.isalnum() else "_" for c in method)
    params_digest = stable_hash(_params_key(params))
    return f"{safe_method}-{dataset_digest & 0xFFFFFFFFFFFFFFFF:016x}-{params_digest:016x}"


def lineage_address(parent_address: str, delta_digest: int) -> str:
    """The address of an updated artifact: pure in (parent, delta).

    Two updates of the same parent by equal deltas collide on purpose
    (that's the reuse); the method prefix is carried over from the
    parent so listings stay greppable by method.
    """
    method = parent_address.split("-", 1)[0]
    derived = stable_hash((parent_address, delta_digest & 0xFFFFFFFFFFFFFFFF))
    return f"{method}-upd-{derived:016x}"


def strip_lineage(artifact: IndexArtifact) -> IndexArtifact:
    """The same artifact re-addressed as a cold build.

    Because ``update()`` is byte-identical to a rebuild, an updated
    payload *is* the cold-build payload for the post-delta dataset; the
    serve tier dual-writes under this stripped (content) address so
    future cold starts over the new dataset reuse it.
    """
    import dataclasses

    header = dataclasses.replace(artifact.header, parent="", delta_digest=0)
    return IndexArtifact(header=header, payload=artifact.payload)


def artifact_from_index(
    index: GraphIndex,
    dataset_digest: int,
    created_at: float | None = None,
    clock=time.time,
    parent: str = "",
    delta_digest: int = 0,
) -> IndexArtifact:
    """Snapshot a **built** *index* into an artifact.

    The payload is the index structure only (`export_payload`); the
    header records the build's measured seconds and size as provenance.
    The ``created_at`` wall-clock stamp comes from *clock* (injectable
    for tests) unless given explicitly; measured build *durations* never
    touch the wall clock — they are ``perf_counter`` intervals from
    :class:`repro.utils.timing.Timer`.
    """
    report = index.build_report  # raises RuntimeError when unbuilt
    header = ArtifactHeader(
        method=index.name,
        index_params=_params_key(index.index_params()),
        dataset_digest=dataset_digest,
        num_graphs=len(index.dataset),
        provenance=ArtifactProvenance(
            build_seconds=report.seconds,
            size_bytes=report.size_bytes,
            details=dict(report.details),
            library_version=__version__,
            created_at=clock() if created_at is None else created_at,
        ),
        parent=parent,
        delta_digest=delta_digest if parent else 0,
    )
    return IndexArtifact(header=header, payload=index.export_payload())


def materialize_artifact(
    artifact: IndexArtifact, dataset: GraphDataset
) -> GraphIndex:
    """A fresh, queryable index instance backed by *artifact*.

    Raises
    ------
    IndexStoreError
        If the artifact's method is unknown or *dataset* visibly does
        not match the one the artifact was built over.
    """
    cls = ALL_INDEX_CLASSES.get(artifact.header.method)
    if cls is None:
        raise IndexStoreError(
            f"artifact {artifact.address}: unknown method "
            f"{artifact.header.method!r}"
        )
    if len(dataset) != artifact.header.num_graphs:
        raise IndexStoreError(
            f"artifact {artifact.address}: built over "
            f"{artifact.header.num_graphs} graphs, dataset has {len(dataset)}"
        )
    index = cls(**artifact.header.params_dict())
    provenance = artifact.provenance
    index.adopt_payload(
        artifact.payload,
        dataset,
        BuildReport(
            seconds=provenance.build_seconds,
            size_bytes=provenance.size_bytes,
            details=dict(provenance.details),
        ),
    )
    return index


# ----------------------------------------------------------------------
# single-file serialization (the disk tier's unit; also `repro build --save`)
# ----------------------------------------------------------------------


def write_artifact(
    path: str | Path, artifact: IndexArtifact, dataset_blob: bytes | None = None
) -> None:
    """Write one artifact file: schema, header, payload, optional dataset.

    The write is atomic (temp file + rename) so a crashed invocation
    never leaves a half-written artifact at the final address.  The
    temp name is unique per *writer* — pid for concurrent processes,
    thread id for the serve daemon's request threads — so concurrent
    putters of one address each rename their own complete file (last
    rename wins; the bytes are equal).
    *dataset_blob* (a :func:`repro.graphs.dataset.pack_dataset` buffer)
    makes the file standalone — ``repro build --save`` uses it so
    ``repro query --load`` works without re-reading the dataset.
    """
    path = Path(path)
    tmp = path.with_name(
        f".{path.name}.tmp{os.getpid()}-{threading.get_ident()}"
    )
    try:
        with open(tmp, "wb") as handle:
            pickle.dump(_ARTIFACT_SCHEMA, handle, protocol=pickle.HIGHEST_PROTOCOL)
            pickle.dump(artifact.header, handle, protocol=pickle.HIGHEST_PROTOCOL)
            pickle.dump(artifact.payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            pickle.dump(dataset_blob, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on failed writes
            tmp.unlink()


def _read_schema_and_header(handle, path) -> ArtifactHeader:
    # Unpickling hostile bytes can raise nearly anything (import errors
    # for vanished classes, IndexError from truncated frames, decode
    # errors...); everything must surface as IndexStoreError so callers
    # like IndexStore.get can degrade to a miss instead of crashing.
    try:
        schema = pickle.load(handle)
    except Exception as exc:
        raise IndexStoreError(f"{path}: not an index artifact") from exc
    if schema != _ARTIFACT_SCHEMA:
        raise IndexStoreError(
            f"{path}: stale or foreign artifact (schema {schema!r}, "
            f"expected {_ARTIFACT_SCHEMA!r})"
        )
    try:
        header = pickle.load(handle)
    except Exception as exc:
        raise IndexStoreError(f"{path}: corrupt artifact header") from exc
    if not isinstance(header, ArtifactHeader):
        raise IndexStoreError(f"{path}: corrupt artifact header")
    return header


def read_artifact_header(path: str | Path) -> ArtifactHeader:
    """Read just the header of an artifact file (for ``repro index ls``)."""
    with open(path, "rb") as handle:
        return _read_schema_and_header(handle, path)


def read_artifact(
    path: str | Path, expect_digest: int | None = None
) -> tuple[IndexArtifact, bytes | None]:
    """Read an artifact file back: ``(artifact, dataset_blob_or_None)``.

    With *expect_digest*, the header's dataset digest must match — an
    index built over different data must fail loudly, never answer
    queries wrongly.
    """
    with open(path, "rb") as handle:
        header = _read_schema_and_header(handle, path)
        try:
            payload = pickle.load(handle)
            dataset_blob = pickle.load(handle)
        except Exception as exc:
            raise IndexStoreError(f"{path}: corrupt artifact payload") from exc
    if expect_digest is not None and header.dataset_digest != expect_digest:
        raise IndexStoreError(
            f"{path}: index was built over a different dataset "
            f"(method {header.method!r}, {header.num_graphs} graphs)"
        )
    return IndexArtifact(header=header, payload=payload), dataset_blob


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------


@dataclass(slots=True)
class StoreStats:
    """Counters of one store's activity in this process."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0


class IndexStore:
    """Two-tier content-addressed store of built index artifacts.

    Parameters
    ----------
    root:
        Directory of the on-disk tier (created on first ``put``).
        ``None`` makes the store memory-only — the per-process reuse
        tier the sweep engine uses when no ``--index-store`` is given.
    memory_items:
        Capacity of the in-memory LRU tier.  Payloads in memory are
        live object graphs; materialization hands out fresh index
        instances, so sharing is safe (see the payload-copy notes in
        :meth:`GraphIndex._import_payload` implementations).

    Thread safety
    -------------
    The memory-LRU tier is guarded by an :class:`threading.RLock`: the
    online query service (:mod:`repro.core.serve`) hits one shared
    store from every request thread, and an unlocked ``OrderedDict``
    corrupts under interleaved ``move_to_end``/``popitem`` — two
    threads can race a ``get`` promotion against an eviction and raise
    ``KeyError``, or evict the very entry just promoted.  Every method
    touching ``_memory`` takes the lock; disk I/O (atomic writes,
    header reads) stays outside it so a slow disk tier never serializes
    memory hits.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        memory_items: int = _DEFAULT_MEMORY_ITEMS,
    ) -> None:
        if memory_items < 1:
            raise ValueError(f"memory_items must be >= 1, got {memory_items}")
        self.root = None if root is None else Path(root)
        self.memory_items = memory_items
        self._memory: OrderedDict[str, IndexArtifact] = OrderedDict()
        #: Guards ``_memory`` and ``stats`` (reentrant: ``put`` calls
        #: ``_remember`` with it held).
        self._lock = threading.RLock()
        self.stats = StoreStats()

    def __len__(self) -> int:
        """Artifacts currently held in the memory tier."""
        with self._lock:
            return len(self._memory)

    def __repr__(self) -> str:
        where = "memory-only" if self.root is None else str(self.root)
        return f"IndexStore({where}, {len(self._memory)} in memory)"

    # -- addressing ----------------------------------------------------

    def path_of(self, address: str) -> Path:
        if self.root is None:
            raise IndexStoreError("store has no on-disk tier (no root)")
        return self.root / f"{address}.idx"

    # -- lookup / insert ----------------------------------------------

    def get(
        self, method: str, params: Mapping, dataset_digest: int
    ) -> IndexArtifact | None:
        """The artifact at ``(method, params, dataset_digest)``, or None.

        Memory first, then disk; disk hits are promoted into the memory
        LRU.  A corrupt or stale disk file counts as a miss (the sweep
        must rebuild, not crash); ``repro index gc`` removes such files.
        """
        address = artifact_address(method, params, dataset_digest)
        with self._lock:
            artifact = self._memory.get(address)
            if artifact is not None:
                self._memory.move_to_end(address)
                self.stats.memory_hits += 1
                return artifact
        if self.root is not None:
            path = self.path_of(address)
            if path.exists():
                # Disk reads happen outside the lock: a slow disk tier
                # must never serialize concurrent memory hits.  Two
                # threads missing the same address both read the file;
                # the second _remember is an idempotent overwrite.
                try:
                    artifact, _ = read_artifact(path, expect_digest=dataset_digest)
                except (IndexStoreError, OSError):
                    with self._lock:
                        self.stats.misses += 1
                    return None
                if artifact.address != address:
                    # A renamed/copied file: its header describes some
                    # other (method, params, dataset).  Serving it would
                    # silently answer with the wrong index; `gc` removes
                    # such files.
                    with self._lock:
                        self.stats.misses += 1
                    return None
                with self._lock:
                    self._remember(address, artifact)
                    self.stats.disk_hits += 1
                return artifact
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, artifact: IndexArtifact) -> str:
        """Insert *artifact* in the memory tier and (if rooted) on disk.

        Returns the artifact's content address.  Idempotent: re-putting
        an equal build simply overwrites the same address.
        """
        address = artifact.address
        with self._lock:
            self._remember(address, artifact)
            self.stats.puts += 1
        if self.root is not None:
            # Write-through outside the lock: the write is atomic
            # (temp + rename), so concurrent putters of one address
            # race harmlessly to install equal bytes.
            self.root.mkdir(parents=True, exist_ok=True)
            write_artifact(self.path_of(address), artifact)
        return address

    def _remember(self, address: str, artifact: IndexArtifact) -> None:
        # Callers hold self._lock (RLock, so put -> _remember re-enters).
        with self._lock:
            self._memory[address] = artifact
            self._memory.move_to_end(address)
            while len(self._memory) > self.memory_items:
                self._memory.popitem(last=False)

    def clear_memory(self) -> None:
        """Drop the memory tier (tests and memory pressure); disk stays."""
        with self._lock:
            self._memory.clear()

    # -- maintenance (the `repro index` subcommands) -------------------

    def entries(self) -> list[tuple[Path, ArtifactHeader | None]]:
        """Every ``*.idx`` file in the disk tier with its header
        (``None`` for corrupt/stale files), sorted by file name."""
        if self.root is None or not self.root.exists():
            return []
        out: list[tuple[Path, ArtifactHeader | None]] = []
        for path in sorted(self.root.glob("*.idx")):
            try:
                out.append((path, read_artifact_header(path)))
            except (IndexStoreError, OSError):
                out.append((path, None))
        return out

    def remove(self, address: str) -> bool:
        """Delete one artifact from both tiers; True if anything existed."""
        with self._lock:
            existed = self._memory.pop(address, None) is not None
        if self.root is not None:
            path = self.path_of(address)
            if path.exists():
                path.unlink()
                existed = True
        return existed

    def gc(self, max_bytes: int | None = None) -> dict:
        """Collect garbage in the disk tier.

        Removes unreadable (corrupt or stale-schema) artifact files,
        files whose name does not match their header's content address,
        and — when *max_bytes* is given — evicts oldest-modified
        artifacts until the tier fits the byte budget.  Returns a
        summary dict (removed_corrupt, removed_evicted, kept,
        kept_bytes).
        """
        removed_corrupt = 0
        keep: list[tuple[Path, int, float, ArtifactHeader]] = []
        for path, header in self.entries():
            if header is None or path.name != f"{header.address}.idx":
                path.unlink(missing_ok=True)
                self._drop_address(path.stem)
                removed_corrupt += 1
                continue
            stat = path.stat()
            keep.append((path, stat.st_size, stat.st_mtime, header))
        removed_evicted = 0
        if max_bytes is not None:
            # Addresses referenced as some kept artifact's update parent
            # are lineage *interiors*; everything else is a head (the
            # newest artifact of its chain, or a plain cold build).
            # Evict interiors before heads, oldest-modified first within
            # each class: a chain's serving tip must outlive its
            # superseded ancestors.  (A newest-first "keep what fits"
            # greedy would evict a hot large artifact while keeping cold
            # small ones.)
            referenced = {
                header.parent for _, _, _, header in keep if header.parent
            }
            keep.sort(key=lambda item: (item[0].stem not in referenced, item[2]))
            total = sum(size for _, size, _, _ in keep)
            while keep and total > max_bytes:
                path, size, _, _ = keep.pop(0)
                path.unlink(missing_ok=True)
                self._drop_address(path.stem)
                removed_evicted += 1
                total -= size
        return {
            "removed_corrupt": removed_corrupt,
            "removed_evicted": removed_evicted,
            "kept": len(keep),
            "kept_bytes": sum(size for _, size, _, _ in keep),
        }

    def _drop_address(self, address: str) -> None:
        with self._lock:
            self._memory.pop(address, None)


# ----------------------------------------------------------------------
# per-process shared stores
# ----------------------------------------------------------------------

#: Process-wide stores by resolved root (None = the memory-only default).
#: Worker processes (fork or spawn) resolve their own instances lazily,
#: so one ``--index-store`` directory is shared by every worker of an
#: invocation — and by every later invocation pointing at it.
_ACTIVE: dict[str | None, IndexStore] = {}
_ACTIVE_LOCK = threading.Lock()


def shared_store(root: str | Path | None) -> IndexStore:
    """This process's store for *root* (``None`` = memory-only default).

    Thread-safe: concurrent resolvers of one root (server request
    threads, say) get the same instance, never two racing stores over
    one directory.
    """
    key = None if root is None else str(Path(root))
    with _ACTIVE_LOCK:
        store = _ACTIVE.get(key)
        if store is None:
            store = IndexStore(key)
            _ACTIVE[key] = store
        return store


def clear_stores() -> None:
    """Drop every shared store's memory tier and registry (tests)."""
    with _ACTIVE_LOCK:
        for store in _ACTIVE.values():
            store.clear_memory()
        _ACTIVE.clear()


# ----------------------------------------------------------------------
# standalone index files (the retired persistence module's API)
# ----------------------------------------------------------------------

#: The historical error type of the single-file API; one class with the
#: store's, so ``except`` clauses written against either name work.
IndexFileError = IndexStoreError


def save_index(index: GraphIndex, path: str | Path) -> None:
    """Persist a built index (including its dataset) to *path*.

    The file is a standalone store artifact: header with provenance,
    the index structure payload, and the packed dataset — unlike
    store-tier artifacts, which are dataset-free by design.

    Raises
    ------
    RuntimeError
        If the index has not been built.
    """
    dataset = index.dataset  # raises RuntimeError when unbuilt
    artifact = artifact_from_index(index, dataset_fingerprint(dataset))
    write_artifact(path, artifact, dataset_blob=pack_dataset(dataset))


def load_index(
    path: str | Path, expect_dataset: GraphDataset | None = None
) -> GraphIndex:
    """Load an index persisted by :func:`save_index`.

    Parameters
    ----------
    expect_dataset:
        When given, the stored dataset content digest must match this
        dataset's; a mismatch raises :class:`IndexFileError` (querying
        an index built over different data silently returns wrong ids).
        The returned index is attached to *expect_dataset* when given,
        otherwise to the dataset packed into the file.
    """
    expect_digest = (
        dataset_fingerprint(expect_dataset) if expect_dataset is not None else None
    )
    artifact, dataset_blob = read_artifact(path, expect_digest=expect_digest)
    if expect_dataset is not None:
        dataset = expect_dataset
    elif dataset_blob is not None:
        dataset = unpack_dataset(dataset_blob)
    else:
        raise IndexFileError(
            f"{path}: artifact carries no dataset; pass expect_dataset "
            "(store-tier artifacts are dataset-free by design)"
        )
    return materialize_artifact(artifact, dataset)
