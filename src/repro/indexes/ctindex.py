"""CT-Index — fingerprints over tree and cycle features [13].

Klein, Kriege & Mutzel, *CT-index: Fingerprint-based graph indexing
combining cycles and trees*, ICDE 2011.  For every graph, CT-Index
exhaustively enumerates all subtrees and all simple cycles up to a size
limit, computes a canonical label per feature, and hashes each label
into a fixed-width bit array — the graph's *fingerprint*.  Filtering
reduces to a bitwise containment test between the query fingerprint and
every graph fingerprint; verification uses a VF2 variant with
fail-fast vertex ordering heuristics.

The benchmark configures 4096-bit fingerprints with trees and cycles of
up to 4 edges (§4.1; the original authors used 6/8, but [9] showed 4
trades a little filtering power for much faster indexing and querying
— our ``feature_edges`` knob reproduces exactly that ablation).

CT-Index occupies the "complex features, exhaustive enumeration,
fixed-size encoding" corner: smallest index by far, weakest filtering
(hash collisions), yet competitive query times thanks to the cheap
filter and tweaked matcher (§5.2.3's "paradox").

Reproduces: CT-Index (Klein, Kriege & Mutzel, ICDE 2011) — reference
[13] of the benchmarked paper.

Feature class: trees and cycles — all subtrees and simple cycles up to
``feature_edges`` edges, canonicalized and hashed into a fixed-width
fingerprint.

Known deviations: feature size defaults to 4 edges (the benchmarked
paper's §4.1 setting, after [9]'s ablation) instead of the original
authors' 6/8; the hash family is our ``hash_positions`` rather than
the original implementation's, so individual collision patterns — not
the collision *rate regime* — differ; the fail-fast matcher reproduces
the original's vertex-ordering heuristics on top of our VF2, not its
exact code.
"""

from __future__ import annotations

from repro.canonical.cycles import cycle_canonical
from repro.canonical.trees import tree_canonical
from repro.features.cycles import enumerate_simple_cycles
from repro.features.trees import enumerate_trees
from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.indexes.base import GraphIndex
from repro.isomorphism.heuristics import frequency_degree_order
from repro.isomorphism.vf2 import SubgraphMatcher
from repro.utils.bitset import Bitset
from repro.utils.budget import Budget
from repro.utils.hashing import hash_positions

__all__ = ["CTIndex"]


class CTIndex(GraphIndex):
    """CT-Index: tree+cycle canonical labels hashed into bit fingerprints.

    Parameters
    ----------
    fingerprint_bits:
        Fingerprint width (paper setting: 4096).
    feature_edges:
        Maximum feature size, in edges, for both trees and cycles
        (paper setting: 4; original CT-Index: trees 6, cycles 8).
    bits_per_feature:
        Bit positions set per feature (Bloom-style; 1 reproduces the
        original's single hash).
    """

    name = "ctindex"

    def __init__(
        self,
        fingerprint_bits: int = 4096,
        feature_edges: int = 4,
        bits_per_feature: int = 1,
    ) -> None:
        super().__init__()
        if fingerprint_bits < 8:
            raise ValueError(f"fingerprint_bits too small: {fingerprint_bits}")
        if feature_edges < 1:
            raise ValueError(f"feature_edges must be >= 1, got {feature_edges}")
        self.fingerprint_bits = fingerprint_bits
        self.feature_edges = feature_edges
        self.bits_per_feature = bits_per_feature
        self._fingerprints: list[Bitset] = []
        self._position_cache: dict[tuple, list[int]] = {}

    # ------------------------------------------------------------------

    def fingerprint(self, graph: Graph, budget: Budget | None = None) -> Bitset:
        """Compute the tree+cycle fingerprint of one graph."""
        bits = Bitset(self.fingerprint_bits)
        for edges in enumerate_trees(graph, self.feature_edges, budget=budget):
            self._set_bits(bits, ("T", tree_canonical(graph, edges)))
        for cycle in enumerate_simple_cycles(graph, self.feature_edges, budget=budget):
            labels = [graph.label(v) for v in cycle]
            self._set_bits(bits, ("C", cycle_canonical(labels)))
        return bits

    def _set_bits(self, bits: Bitset, canonical: tuple) -> None:
        positions = self._position_cache.get(canonical)
        if positions is None:
            positions = hash_positions(
                canonical, self.fingerprint_bits, self.bits_per_feature
            )
            self._position_cache[canonical] = positions
        for position in positions:
            bits.set(position)

    # ------------------------------------------------------------------

    def _build(self, dataset: GraphDataset, budget: Budget | None) -> dict:
        self._fingerprints = []
        per_graph_bytes = self.fingerprint_bits // 8 + 64
        saturation = 0.0
        for graph in dataset:
            if budget is not None:
                budget.check()
                budget.check_memory(len(self._fingerprints) * per_graph_bytes)
            fingerprint = self.fingerprint(graph, budget=budget)
            self._fingerprints.append(fingerprint)
            saturation += fingerprint.saturation()
        return {
            "avg_saturation": saturation / len(dataset) if len(dataset) else 0.0,
            "distinct_features": len(self._position_cache),
        }

    def _filter(self, query: Graph, budget: Budget | None) -> set[int]:
        query_fingerprint = self.fingerprint(query, budget=budget)
        return {
            graph_id
            for graph_id, fingerprint in enumerate(self._fingerprints)
            if fingerprint.contains(query_fingerprint)
        }

    def _verify_one(self, query: Graph, graph: Graph, budget: Budget | None) -> bool:
        """The 'modified VF2': rare-label, high-degree vertices first."""
        matcher = SubgraphMatcher(
            query, graph, ordering=frequency_degree_order, budget=budget
        )
        return matcher.exists()

    def _size_payload(self) -> object:
        # The index proper is the fingerprint array; the position cache
        # is a build-time memoization, not part of the stored index.
        return self._fingerprints

    # -- artifact contract ---------------------------------------------

    def _index_params(self) -> dict:
        return {
            "fingerprint_bits": self.fingerprint_bits,
            "feature_edges": self.feature_edges,
            "bits_per_feature": self.bits_per_feature,
        }

    def _export_payload(self) -> object:
        return self._fingerprints

    def _import_payload(self, payload: object) -> None:
        self._fingerprints = payload  # type: ignore[assignment]
        # The position cache repopulates lazily as queries hash their
        # own features; it is a memoization, not index content.
        self._position_cache = {}
