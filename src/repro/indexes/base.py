"""The filter-and-verify contract shared by all indexing methods.

Paper §2.2: every algorithm operates in three stages — (a) index
construction, (b) filtering into a candidate set, (c) verification of
containment by subgraph isomorphism.  :class:`GraphIndex` encodes this
pipeline and instruments it with the paper's four metrics:

* index construction **time** (Figures 1a, 2a, 3a, 5a, 6a),
* index **size** (Figures 1b, 2b, 3b, 5b, 6b),
* query processing **time**, filtering plus verification
  (Figures 1c, 2c, 3c, 4, 5c, 6c),
* **false positive ratio** per Eq. (3) (Figures 1d, 2d, 3d, 5d, 6d).

Subclasses implement ``_build`` and ``_filter`` and may override
``_verify_one`` (Grapes verifies per connected component, CT-Index uses
its tweaked matcher ordering).  The contract tests assert the defining
invariant: the candidate set always contains the true answer set.

Beyond the query pipeline, every index implements the **artifact
contract** consumed by :mod:`repro.indexes.store`: ``index_params()``
names the constructor parameters that shape the built structure, and
``_export_payload`` / ``_import_payload`` split the index *structure*
(trie, fingerprints, id lists, ...) from the instance, so a built index
can be serialized and content-addressed without pickling the whole
object — or the dataset it was built over.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.graphs.dataset import DatasetDelta, GraphDataset, apply_delta
from repro.graphs.graph import Graph
from repro.isomorphism.vf2 import SubgraphMatcher
from repro.utils.budget import Budget
from repro.utils.sizeof import deep_sizeof
from repro.utils.timing import Timer

__all__ = ["GraphIndex", "BuildReport", "QueryResult"]


@dataclass(frozen=True, slots=True)
class BuildReport:
    """Outcome of index construction."""

    #: Wall-clock construction time in seconds.
    seconds: float
    #: Estimated in-memory footprint of the index payload in bytes.
    size_bytes: int
    #: Method-specific counters (feature counts, trie nodes, ...).
    details: dict = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class QueryResult:
    """Outcome of one query through the filter-and-verify pipeline."""

    #: Graph ids surviving the filtering stage.
    candidates: frozenset[int]
    #: Graph ids actually containing the query (after verification).
    answers: frozenset[int]
    #: Wall-clock seconds spent filtering.
    filter_seconds: float
    #: Wall-clock seconds spent verifying candidates.
    verify_seconds: float

    @property
    def total_seconds(self) -> float:
        """Query processing time (filtering + verification)."""
        return self.filter_seconds + self.verify_seconds

    @property
    def false_positives(self) -> int:
        """Candidates that verification rejected."""
        return len(self.candidates) - len(self.answers)

    @property
    def false_positive_ratio(self) -> float:
        """Per-query term of Eq. (3): ``(|C| - |A|) / |C|``.

        An empty candidate set contributes 0 (perfect filtering).
        """
        if not self.candidates:
            return 0.0
        return self.false_positives / len(self.candidates)


class GraphIndex(ABC):
    """Base class for all filter-and-verify subgraph-query indexes."""

    #: Method name as used in the paper's figures.
    name: str = "abstract"

    def __init__(self) -> None:
        self._dataset: GraphDataset | None = None
        self._build_report: BuildReport | None = None

    # ------------------------------------------------------------------
    # stage (a): index construction
    # ------------------------------------------------------------------

    def build(self, dataset: GraphDataset, budget: Budget | None = None) -> BuildReport:
        """Construct the index over *dataset*, timing and sizing it.

        Raises
        ------
        repro.utils.budget.BudgetExceeded
            If *budget* runs out mid-build; the index is left unusable,
            matching the paper's "failed to index within the limit".
        """
        self._dataset = dataset
        with Timer() as timer:
            details = self._build(dataset, budget) or {}
        self._build_report = BuildReport(
            seconds=timer.elapsed,
            size_bytes=self.size_bytes(),
            details=details,
        )
        return self._build_report

    @abstractmethod
    def _build(self, dataset: GraphDataset, budget: Budget | None) -> dict | None:
        """Method-specific construction; returns optional detail counters."""

    # ------------------------------------------------------------------
    # stage (a'): incremental maintenance
    # ------------------------------------------------------------------

    def update(
        self,
        delta: DatasetDelta,
        budget: Budget | None = None,
        new_dataset: GraphDataset | None = None,
    ) -> BuildReport:
        """Bring the index up to date with *delta* applied to its dataset.

        The contract is an equivalence: after ``update(delta)`` the
        exported payload must be **byte-identical** to a cold
        :meth:`build` over ``apply_delta(dataset, delta)``.  Methods
        with genuinely incremental structures (Tree+Δ's mined table,
        GRAPES' per-graph postings) override :meth:`_update`; everyone
        else inherits the universal rebuild-from-scratch fallback, which
        satisfies the equivalence trivially.

        *new_dataset*, when given, must be the post-delta dataset
        (callers like the serve tier apply the delta once and share the
        result); otherwise it is computed here.  Returns the refreshed
        :class:`BuildReport` — ``details["maintenance"]`` records which
        path ran (``"incremental"`` or ``"rebuild"``).
        """
        self._require_built()
        assert self._dataset is not None
        if new_dataset is None:
            new_dataset = apply_delta(self._dataset, delta)
        else:
            expected = len(self._dataset) - len(delta.removed) + len(delta.added)
            if len(new_dataset) != expected:
                raise ValueError(
                    f"{self.name}: new_dataset has {len(new_dataset)} "
                    f"graphs, expected {expected} after delta"
                )
        with Timer() as timer:
            details = self._update(new_dataset, delta, budget)
            if details is None:
                self._dataset = new_dataset
                details = self._build(new_dataset, budget) or {}
                details["maintenance"] = "rebuild"
            else:
                self._dataset = new_dataset
                details.setdefault("maintenance", "incremental")
        self._build_report = BuildReport(
            seconds=timer.elapsed,
            size_bytes=self.size_bytes(),
            details=details,
        )
        return self._build_report

    def _update(
        self,
        new_dataset: GraphDataset,
        delta: DatasetDelta,
        budget: Budget | None,
    ) -> dict | None:
        """Method-specific incremental maintenance.

        Called with ``self._dataset`` still pointing at the *old*
        dataset (the swap happens after this returns).  Return detail
        counters on success, or ``None`` to decline — the caller then
        rebuilds from scratch.  Implementations must not mutate index
        state before deciding to decline.
        """
        return None

    @property
    def build_report(self) -> BuildReport:
        """The report of the last successful :meth:`build`."""
        if self._build_report is None:
            raise RuntimeError(f"{self.name}: build() has not completed")
        return self._build_report

    def size_bytes(self) -> int:
        """Deep size of the index payload (excludes the dataset itself)."""
        return deep_sizeof(self._size_payload())

    @abstractmethod
    def _size_payload(self) -> object:
        """The object graph that constitutes the index structure."""

    # ------------------------------------------------------------------
    # stage (b): filtering
    # ------------------------------------------------------------------

    def filter(self, query: Graph, budget: Budget | None = None) -> set[int]:
        """Candidate set for *query*: ids of graphs possibly containing it.

        Guaranteed to be a superset of the true answer set (no false
        negatives) — the defining property of filter-and-verify.
        """
        self._require_built()
        return self._filter(query, budget)

    @abstractmethod
    def _filter(self, query: Graph, budget: Budget | None) -> set[int]:
        """Method-specific filtering."""

    # ------------------------------------------------------------------
    # stage (c): verification
    # ------------------------------------------------------------------

    def verify(
        self, query: Graph, candidates: set[int], budget: Budget | None = None
    ) -> set[int]:
        """Ids of candidate graphs that actually contain *query*.

        Uses first-match semantics throughout: the paper patched Grapes
        so that every system stops at the first embedding (§4.1).
        """
        self._require_built()
        assert self._dataset is not None
        answers = set()
        for graph_id in candidates:
            if budget is not None:
                budget.check()
            if self._verify_one(query, self._dataset[graph_id], budget):
                answers.add(graph_id)
        return answers

    def _verify_one(self, query: Graph, graph: Graph, budget: Budget | None) -> bool:
        """Default verification: stock VF2, first match."""
        return SubgraphMatcher(query, graph, budget=budget).exists()

    # ------------------------------------------------------------------
    # the full pipeline
    # ------------------------------------------------------------------

    def query(self, query: Graph, budget: Budget | None = None) -> QueryResult:
        """Run filter + verify for *query* and report the paper metrics."""
        with Timer() as filter_timer:
            candidates = self.filter(query, budget)
        with Timer() as verify_timer:
            answers = self.verify(query, candidates, budget)
        return QueryResult(
            candidates=frozenset(candidates),
            answers=frozenset(answers),
            filter_seconds=filter_timer.elapsed,
            verify_seconds=verify_timer.elapsed,
        )

    # ------------------------------------------------------------------
    # artifact contract: parameters + payload split
    # ------------------------------------------------------------------

    def index_params(self) -> dict:
        """The constructor parameters that shape this index's structure.

        Together with the method name and a dataset content digest,
        these parameters form the content address of a built index in
        :class:`repro.indexes.store.IndexStore`: two instances with
        equal ``index_params()`` build byte-equivalent structures over
        equal datasets.  Keys are sorted so the mapping has one
        canonical form.
        """
        return dict(sorted(self._index_params().items()))

    def _index_params(self) -> dict:
        """Method-specific parameter mapping (plain JSON-able scalars).

        The default introspects ``__init__`` and echoes the same-named
        attributes — correct for any subclass that stores its knobs
        under their parameter names.  Every shipped method overrides
        this explicitly anyway, so the contract is visible per module.
        """
        import inspect

        params = {}
        for name in inspect.signature(type(self).__init__).parameters:
            if name != "self" and hasattr(self, name):
                params[name] = getattr(self, name)
        return params

    def export_payload(self) -> object:
        """The built index structure as a picklable object graph.

        This is what an :class:`~repro.indexes.store.IndexArtifact`
        serializes — the trie / fingerprints / id lists, **not** the
        index instance and **not** the dataset.  Requires a completed
        build.
        """
        if self._build_report is None:
            raise RuntimeError(f"{self.name}: no completed build to export")
        return self._export_payload()

    def _export_payload(self) -> object:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact "
            "contract (_export_payload)"
        )

    def _import_payload(self, payload: object) -> None:
        """Restore the structure produced by :meth:`_export_payload`.

        Implementations must defensively copy any state that queries
        mutate (Tree+Δ's adopted features), because one in-memory
        payload may be materialized into several index instances.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact "
            "contract (_import_payload)"
        )

    def adopt_payload(
        self, payload: object, dataset: GraphDataset, report: BuildReport
    ) -> None:
        """Attach an exported *payload* built over *dataset*.

        The inverse of :meth:`export_payload`: after this call the
        index answers queries exactly as the instance that built the
        payload did right after its build.  *report* carries the
        original build's provenance (its measured seconds and size).
        """
        self._import_payload(payload)
        self._dataset = dataset
        self._build_report = report

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @property
    def dataset(self) -> GraphDataset:
        """The dataset this index was built over."""
        self._require_built()
        assert self._dataset is not None
        return self._dataset

    def _require_built(self) -> None:
        if self._dataset is None:
            raise RuntimeError(f"{self.name}: index has not been built")

    def __repr__(self) -> str:
        # Build state comes from _build_report, not _dataset: a failed
        # budgeted build assigns _dataset before raising and leaves the
        # index unusable, which must not read as "built".
        state = "built" if self._build_report is not None else "empty"
        return f"{type(self).__name__}({state})"
