"""The filter-and-verify contract shared by all indexing methods.

Paper §2.2: every algorithm operates in three stages — (a) index
construction, (b) filtering into a candidate set, (c) verification of
containment by subgraph isomorphism.  :class:`GraphIndex` encodes this
pipeline and instruments it with the paper's four metrics:

* index construction **time** (Figures 1a, 2a, 3a, 5a, 6a),
* index **size** (Figures 1b, 2b, 3b, 5b, 6b),
* query processing **time**, filtering plus verification
  (Figures 1c, 2c, 3c, 4, 5c, 6c),
* **false positive ratio** per Eq. (3) (Figures 1d, 2d, 3d, 5d, 6d).

Subclasses implement ``_build`` and ``_filter`` and may override
``_verify_one`` (Grapes verifies per connected component, CT-Index uses
its tweaked matcher ordering).  The contract tests assert the defining
invariant: the candidate set always contains the true answer set.

Beyond the query pipeline, every index implements the **artifact
contract** consumed by :mod:`repro.indexes.store`: ``index_params()``
names the constructor parameters that shape the built structure, and
``_export_payload`` / ``_import_payload`` split the index *structure*
(trie, fingerprints, id lists, ...) from the instance, so a built index
can be serialized and content-addressed without pickling the whole
object — or the dataset it was built over.

**Regimes.**  The paper's experiments run the *transactional* regime:
a database of many small graphs, answers are the ids of graphs
containing the query.  The same contract generalizes to the
*single-graph* regime of the billion-node-graph literature (Sun et
al.'s STwig decomposition, Nabti & Seba's compact neighborhood
indexes): one massive graph, filtering produces per-query-vertex
candidate **domains**, verification enumerates **embedding roots** —
data vertices hosting the query's anchor vertex in at least one
embedding.  :meth:`GraphIndex.query` takes a ``regime`` argument and
:class:`QueryResult` carries the answer form; every index inherits a
working single-graph path (label/degree domains + STwig pruning +
domain-constrained Ullmann) and may override
:meth:`GraphIndex._filter_vertices` to narrow domains with its own
structure.  Transactional results — their pickled bytes included —
are unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.graphs.dataset import DatasetDelta, GraphDataset, apply_delta
from repro.graphs.graph import Graph
from repro.isomorphism.decompose import (
    embedding_root,
    initial_domains,
    prune_domains,
)
from repro.isomorphism.ullmann import ullmann_is_subgraph
from repro.isomorphism.vf2 import SubgraphMatcher
from repro.utils.budget import Budget
from repro.utils.sizeof import deep_sizeof
from repro.utils.timing import Timer

__all__ = [
    "GraphIndex",
    "BuildReport",
    "QueryResult",
    "TRANSACTIONAL",
    "SINGLE_GRAPH",
    "REGIMES",
]

#: The paper's regime: many small graphs, answers are graph ids
#: (mirrors :data:`repro.core.knobs.TRANSACTIONAL`, duplicated as a
#: literal to avoid a package import cycle).
TRANSACTIONAL = "transactional"
#: The massive regime: one huge graph, answers are embedding roots.
SINGLE_GRAPH = "single-graph"
#: Recognized regimes, default first.
REGIMES = (TRANSACTIONAL, SINGLE_GRAPH)


@dataclass(frozen=True, slots=True)
class BuildReport:
    """Outcome of index construction."""

    #: Wall-clock construction time in seconds.
    seconds: float
    #: Estimated in-memory footprint of the index payload in bytes.
    size_bytes: int
    #: Method-specific counters (feature counts, trie nodes, ...).
    details: dict = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class QueryResult:
    """Outcome of one query through the filter-and-verify pipeline.

    The answer form is regime-polymorphic.  In the transactional
    regime (the default), ``candidates`` and ``answers`` hold *graph
    ids* and ``domains`` is ``None``.  In the single-graph regime they
    hold *data-vertex ids* — candidates and verified embedding roots
    for the query's anchor vertex — and ``domains`` carries the full
    per-query-vertex candidate domains the filter produced.  The
    derived metrics (:attr:`false_positive_ratio` et al.) read the
    same either way.

    Serialization contract: results with default ``regime``/``domains``
    pickle to bytes identical to the four-field layout every prior
    release produced, and four-field pickles load with the new fields
    defaulted — sealed bench records stay valid both ways.
    """

    #: Filter survivors: graph ids, or anchor-vertex candidates.
    candidates: frozenset[int]
    #: Verified answers: graph ids, or embedding roots.
    answers: frozenset[int]
    #: Wall-clock seconds spent filtering.
    filter_seconds: float
    #: Wall-clock seconds spent verifying candidates.
    verify_seconds: float
    #: Which answer form this result carries.
    regime: str = TRANSACTIONAL
    #: Per-query-vertex candidate domains (single-graph regime only).
    domains: tuple[frozenset[int], ...] | None = None

    def __getstate__(self) -> list:
        # The dataclass-generated state for a frozen slots class is the
        # list of field values in declaration order.  Emit the legacy
        # four-item list whenever the new fields sit at their defaults,
        # keeping transactional pickles byte-identical across releases.
        state = [
            self.candidates,
            self.answers,
            self.filter_seconds,
            self.verify_seconds,
        ]
        if self.regime != TRANSACTIONAL or self.domains is not None:
            state += [self.regime, self.domains]
        return state

    def __setstate__(self, state: list) -> None:
        values = list(state)
        if len(values) == 4:
            values += [TRANSACTIONAL, None]
        for name, value in zip(
            ("candidates", "answers", "filter_seconds", "verify_seconds",
             "regime", "domains"),
            values,
        ):
            object.__setattr__(self, name, value)

    @property
    def embedding_roots(self) -> frozenset[int]:
        """The verified embedding roots (single-graph regime only)."""
        if self.regime != SINGLE_GRAPH:
            raise ValueError(
                "embedding_roots is defined only in the single-graph "
                f"regime, not {self.regime!r}"
            )
        return self.answers

    @property
    def total_seconds(self) -> float:
        """Query processing time (filtering + verification)."""
        return self.filter_seconds + self.verify_seconds

    @property
    def false_positives(self) -> int:
        """Candidates that verification rejected."""
        return len(self.candidates) - len(self.answers)

    @property
    def false_positive_ratio(self) -> float:
        """Per-query term of Eq. (3): ``(|C| - |A|) / |C|``.

        An empty candidate set contributes 0 (perfect filtering).
        """
        if not self.candidates:
            return 0.0
        return self.false_positives / len(self.candidates)


class GraphIndex(ABC):
    """Base class for all filter-and-verify subgraph-query indexes."""

    #: Method name as used in the paper's figures.
    name: str = "abstract"

    def __init__(self) -> None:
        self._dataset: GraphDataset | None = None
        self._build_report: BuildReport | None = None

    # ------------------------------------------------------------------
    # stage (a): index construction
    # ------------------------------------------------------------------

    def build(self, dataset: GraphDataset, budget: Budget | None = None) -> BuildReport:
        """Construct the index over *dataset*, timing and sizing it.

        Raises
        ------
        repro.utils.budget.BudgetExceeded
            If *budget* runs out mid-build; the index is left unusable,
            matching the paper's "failed to index within the limit".
        """
        self._dataset = dataset
        with Timer() as timer:
            details = self._build(dataset, budget) or {}
        self._build_report = BuildReport(
            seconds=timer.elapsed,
            size_bytes=self.size_bytes(),
            details=details,
        )
        return self._build_report

    @abstractmethod
    def _build(self, dataset: GraphDataset, budget: Budget | None) -> dict | None:
        """Method-specific construction; returns optional detail counters."""

    # ------------------------------------------------------------------
    # stage (a'): incremental maintenance
    # ------------------------------------------------------------------

    def update(
        self,
        delta: DatasetDelta,
        budget: Budget | None = None,
        new_dataset: GraphDataset | None = None,
    ) -> BuildReport:
        """Bring the index up to date with *delta* applied to its dataset.

        The contract is an equivalence: after ``update(delta)`` the
        exported payload must be **byte-identical** to a cold
        :meth:`build` over ``apply_delta(dataset, delta)``.  Methods
        with genuinely incremental structures (Tree+Δ's mined table,
        GRAPES' per-graph postings) override :meth:`_update`; everyone
        else inherits the universal rebuild-from-scratch fallback, which
        satisfies the equivalence trivially.

        *new_dataset*, when given, must be the post-delta dataset
        (callers like the serve tier apply the delta once and share the
        result); otherwise it is computed here.  Returns the refreshed
        :class:`BuildReport` — ``details["maintenance"]`` records which
        path ran (``"incremental"`` or ``"rebuild"``).
        """
        self._require_built()
        assert self._dataset is not None
        if new_dataset is None:
            new_dataset = apply_delta(self._dataset, delta)
        else:
            expected = len(self._dataset) - len(delta.removed) + len(delta.added)
            if len(new_dataset) != expected:
                raise ValueError(
                    f"{self.name}: new_dataset has {len(new_dataset)} "
                    f"graphs, expected {expected} after delta"
                )
        with Timer() as timer:
            details = self._update(new_dataset, delta, budget)
            if details is None:
                self._dataset = new_dataset
                details = self._build(new_dataset, budget) or {}
                details["maintenance"] = "rebuild"
            else:
                self._dataset = new_dataset
                details.setdefault("maintenance", "incremental")
        self._build_report = BuildReport(
            seconds=timer.elapsed,
            size_bytes=self.size_bytes(),
            details=details,
        )
        return self._build_report

    def _update(
        self,
        new_dataset: GraphDataset,
        delta: DatasetDelta,
        budget: Budget | None,
    ) -> dict | None:
        """Method-specific incremental maintenance.

        Called with ``self._dataset`` still pointing at the *old*
        dataset (the swap happens after this returns).  Return detail
        counters on success, or ``None`` to decline — the caller then
        rebuilds from scratch.  Implementations must not mutate index
        state before deciding to decline.
        """
        return None

    @property
    def build_report(self) -> BuildReport:
        """The report of the last successful :meth:`build`."""
        if self._build_report is None:
            raise RuntimeError(f"{self.name}: build() has not completed")
        return self._build_report

    def size_bytes(self) -> int:
        """Deep size of the index payload (excludes the dataset itself)."""
        return deep_sizeof(self._size_payload())

    @abstractmethod
    def _size_payload(self) -> object:
        """The object graph that constitutes the index structure."""

    # ------------------------------------------------------------------
    # stage (b): filtering
    # ------------------------------------------------------------------

    def filter(self, query: Graph, budget: Budget | None = None) -> set[int]:
        """Candidate set for *query*: ids of graphs possibly containing it.

        Guaranteed to be a superset of the true answer set (no false
        negatives) — the defining property of filter-and-verify.
        """
        self._require_built()
        return self._filter(query, budget)

    @abstractmethod
    def _filter(self, query: Graph, budget: Budget | None) -> set[int]:
        """Method-specific filtering."""

    # ------------------------------------------------------------------
    # stage (c): verification
    # ------------------------------------------------------------------

    def verify(
        self, query: Graph, candidates: set[int], budget: Budget | None = None
    ) -> set[int]:
        """Ids of candidate graphs that actually contain *query*.

        Uses first-match semantics throughout: the paper patched Grapes
        so that every system stops at the first embedding (§4.1).
        """
        self._require_built()
        assert self._dataset is not None
        answers = set()
        for graph_id in candidates:
            if budget is not None:
                budget.check()
            if self._verify_one(query, self._dataset[graph_id], budget):
                answers.add(graph_id)
        return answers

    def _verify_one(self, query: Graph, graph: Graph, budget: Budget | None) -> bool:
        """Default verification: stock VF2, first match."""
        return SubgraphMatcher(query, graph, budget=budget).exists()

    # ------------------------------------------------------------------
    # stage (b'): single-graph filtering — per-vertex candidate domains
    # ------------------------------------------------------------------

    def filter_vertices(
        self, query: Graph, budget: Budget | None = None
    ) -> list[set[int]]:
        """Candidate domains for *query* over the regime's one graph.

        ``domains[u]`` holds every data vertex that may host query
        vertex ``u`` in an embedding — guaranteed a superset of the
        vertices that actually do (the single-graph twin of the
        no-false-negatives invariant).  The method-specific narrowing
        (:meth:`_filter_vertices`) runs first, then the generic
        STwig-cover pruning tightens every method's domains the same
        way.
        """
        self._require_built()
        data = self._single_graph()
        domains = self._filter_vertices(query, data, budget)
        return prune_domains(query, data, domains)

    def _filter_vertices(
        self, query: Graph, data: Graph, budget: Budget | None
    ) -> list[set[int]]:
        """Method-specific domain filtering; default is label+degree.

        Override to narrow domains with the index structure (the CNI
        index intersects neighborhood signatures here).  Must preserve
        the superset invariant.
        """
        return initial_domains(query, data)

    # ------------------------------------------------------------------
    # stage (c'): single-graph verification — embedding roots
    # ------------------------------------------------------------------

    def verify_embeddings(
        self,
        query: Graph,
        domains: list[set[int]],
        budget: Budget | None = None,
    ) -> set[int]:
        """Data vertices hosting the query's anchor in some embedding.

        First-match semantics per root: each candidate of the anchor
        vertex (the STwig decomposition's first root) is pinned and the
        domain-constrained Ullmann search stops at its first embedding.
        """
        self._require_built()
        data = self._single_graph()
        if query.order == 0 or any(not domain for domain in domains):
            return set()
        root = embedding_root(query, data)
        answers = set()
        for vertex in sorted(domains[root]):
            if budget is not None:
                budget.check()
            if self._verify_root(query, data, root, vertex, domains, budget):
                answers.add(vertex)
        return answers

    def _verify_root(
        self,
        query: Graph,
        data: Graph,
        root: int,
        vertex: int,
        domains: list[set[int]],
        budget: Budget | None,
    ) -> bool:
        """Does some embedding map query vertex *root* onto *vertex*?"""
        pinned = [set(domain) for domain in domains]
        pinned[root] = {vertex}
        return ullmann_is_subgraph(query, data, budget=budget, domains=pinned)

    def _single_graph(self) -> Graph:
        """The regime's one data graph; rejects multi-graph datasets."""
        assert self._dataset is not None
        if len(self._dataset) != 1:
            raise ValueError(
                f"{self.name}: the single-graph regime requires a "
                f"one-graph dataset, got {len(self._dataset)} graphs"
            )
        return self._dataset[0]

    # ------------------------------------------------------------------
    # the full pipeline
    # ------------------------------------------------------------------

    def query(
        self,
        query: Graph,
        budget: Budget | None = None,
        regime: str | None = None,
    ) -> QueryResult:
        """Run filter + verify for *query* and report the paper metrics.

        *regime* selects the answer form: ``"transactional"`` (the
        default, also chosen by ``None``) filters and verifies graph
        ids; ``"single-graph"`` produces candidate domains and verified
        embedding roots over the dataset's one graph.
        """
        if regime is None:
            regime = TRANSACTIONAL
        if regime == SINGLE_GRAPH:
            return self._query_single_graph(query, budget)
        if regime != TRANSACTIONAL:
            raise ValueError(
                f"unknown regime {regime!r}; expected one of {REGIMES}"
            )
        with Timer() as filter_timer:
            candidates = self.filter(query, budget)
        with Timer() as verify_timer:
            answers = self.verify(query, candidates, budget)
        return QueryResult(
            candidates=frozenset(candidates),
            answers=frozenset(answers),
            filter_seconds=filter_timer.elapsed,
            verify_seconds=verify_timer.elapsed,
        )

    def _query_single_graph(
        self, query: Graph, budget: Budget | None
    ) -> QueryResult:
        """The single-graph pipeline: domains in, embedding roots out."""
        self._require_built()
        data = self._single_graph()
        with Timer() as filter_timer:
            domains = self.filter_vertices(query, budget)
        with Timer() as verify_timer:
            answers = self.verify_embeddings(query, domains, budget)
        if query.order:
            candidates = frozenset(domains[embedding_root(query, data)])
        else:
            candidates = frozenset()
        return QueryResult(
            candidates=candidates,
            answers=frozenset(answers),
            filter_seconds=filter_timer.elapsed,
            verify_seconds=verify_timer.elapsed,
            regime=SINGLE_GRAPH,
            domains=tuple(frozenset(domain) for domain in domains),
        )

    # ------------------------------------------------------------------
    # artifact contract: parameters + payload split
    # ------------------------------------------------------------------

    def index_params(self) -> dict:
        """The constructor parameters that shape this index's structure.

        Together with the method name and a dataset content digest,
        these parameters form the content address of a built index in
        :class:`repro.indexes.store.IndexStore`: two instances with
        equal ``index_params()`` build byte-equivalent structures over
        equal datasets.  Keys are sorted so the mapping has one
        canonical form.
        """
        return dict(sorted(self._index_params().items()))

    def _index_params(self) -> dict:
        """Method-specific parameter mapping (plain JSON-able scalars).

        The default introspects ``__init__`` and echoes the same-named
        attributes — correct for any subclass that stores its knobs
        under their parameter names.  Every shipped method overrides
        this explicitly anyway, so the contract is visible per module.
        """
        import inspect

        params = {}
        for name in inspect.signature(type(self).__init__).parameters:
            if name != "self" and hasattr(self, name):
                params[name] = getattr(self, name)
        return params

    def export_payload(self) -> object:
        """The built index structure as a picklable object graph.

        This is what an :class:`~repro.indexes.store.IndexArtifact`
        serializes — the trie / fingerprints / id lists, **not** the
        index instance and **not** the dataset.  Requires a completed
        build.
        """
        if self._build_report is None:
            raise RuntimeError(f"{self.name}: no completed build to export")
        return self._export_payload()

    def _export_payload(self) -> object:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact "
            "contract (_export_payload)"
        )

    def _import_payload(self, payload: object) -> None:
        """Restore the structure produced by :meth:`_export_payload`.

        Implementations must defensively copy any state that queries
        mutate (Tree+Δ's adopted features), because one in-memory
        payload may be materialized into several index instances.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the artifact "
            "contract (_import_payload)"
        )

    def adopt_payload(
        self, payload: object, dataset: GraphDataset, report: BuildReport
    ) -> None:
        """Attach an exported *payload* built over *dataset*.

        The inverse of :meth:`export_payload`: after this call the
        index answers queries exactly as the instance that built the
        payload did right after its build.  *report* carries the
        original build's provenance (its measured seconds and size).
        """
        self._import_payload(payload)
        self._dataset = dataset
        self._build_report = report

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @property
    def dataset(self) -> GraphDataset:
        """The dataset this index was built over."""
        self._require_built()
        assert self._dataset is not None
        return self._dataset

    def _require_built(self) -> None:
        if self._dataset is None:
            raise RuntimeError(f"{self.name}: index has not been built")

    def __repr__(self) -> str:
        # Build state comes from _build_report, not _dataset: a failed
        # budgeted build assigns _dataset before raising and leaves the
        # index unusable, which must not read as "built".
        if self._build_report is None:
            return f"{type(self).__name__}(empty)"
        # Render whatever detail counters the build actually recorded —
        # never index into ``details``: maintenance rebuilds and adopted
        # payloads carry different key sets than a cold build, and a
        # repr must not raise over a missing counter.
        details = self._build_report.details or {}
        rendered = ", ".join(
            f"{key}={details[key]!r}" for key in sorted(details, key=str)
        )
        if rendered:
            return f"{type(self).__name__}(built, {rendered})"
        return f"{type(self).__name__}(built)"
