"""repro — reproduction of Katsarou, Ntarmos & Triantafillou,
"Performance and Scalability of Indexed Subgraph Query Processing
Methods", PVLDB 8(12), 2015.

A pure-Python graph-database laboratory: six subgraph-query indexing
methods (Grapes, GraphGrepSX, CT-Index, gCode, gIndex, Tree+Δ) built
from scratch on shared substrates (VF2 subgraph isomorphism, canonical
labels, feature enumeration, frequent-pattern mining), plus the paper's
full evaluation framework (dataset/query generators, budgets, metric
collection, per-figure sweeps).

Quickstart
----------
>>> from repro import GraphGenConfig, generate_dataset, generate_queries
>>> from repro import GrapesIndex
>>> dataset = generate_dataset(GraphGenConfig(num_graphs=30, mean_nodes=16,
...                                           mean_density=0.15, num_labels=4))
>>> index = GrapesIndex(max_path_edges=3, workers=2)
>>> _ = index.build(dataset)
>>> query = generate_queries(dataset, 1, 4)[0]
>>> result = index.query(query)
>>> result.answers <= result.candidates
True
"""

from repro.core.metrics import false_positive_ratio, summarize_results
from repro.core.presets import CI_PROFILE, PAPER_PROFILE, ScaleProfile, active_profile
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.generators.realsets import REAL_DATASET_SPECS, make_real_dataset
from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph, GraphError
from repro.graphs.statistics import dataset_statistics, graph_statistics
from repro.indexes import (
    ALL_INDEX_CLASSES,
    CTIndex,
    GCodeIndex,
    GIndex,
    GraphGrepSXIndex,
    GrapesIndex,
    NaiveIndex,
    TreeDeltaIndex,
)
from repro.indexes.base import BuildReport, GraphIndex, QueryResult
from repro.isomorphism.vf2 import count_embeddings, find_embedding, is_subgraph
from repro.utils.budget import Budget, BudgetExceeded

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph model
    "Graph",
    "GraphError",
    "GraphDataset",
    "graph_statistics",
    "dataset_statistics",
    # isomorphism
    "is_subgraph",
    "find_embedding",
    "count_embeddings",
    # indexes
    "GraphIndex",
    "BuildReport",
    "QueryResult",
    "NaiveIndex",
    "GraphGrepSXIndex",
    "GrapesIndex",
    "CTIndex",
    "GCodeIndex",
    "GIndex",
    "TreeDeltaIndex",
    "ALL_INDEX_CLASSES",
    # generators
    "GraphGenConfig",
    "generate_dataset",
    "generate_queries",
    "make_real_dataset",
    "REAL_DATASET_SPECS",
    # evaluation core
    "Budget",
    "BudgetExceeded",
    "ScaleProfile",
    "PAPER_PROFILE",
    "CI_PROFILE",
    "active_profile",
    "false_positive_ratio",
    "summarize_results",
]
