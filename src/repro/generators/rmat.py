"""Graph500-style R-MAT generation for the massive single-graph regime.

The paper's experiments stop at transaction databases of small graphs;
the billion-node literature it motivates (STwig, CNI) runs on *one*
massive power-law graph.  The community-standard generator for that
shape is Graph500's Kronecker/R-MAT sampler: edges land in the
adjacency matrix by recursive quadrant descent with skewed
probabilities ``(a, b, c, d)``, giving ``2**scale`` vertices and
``edge_factor * 2**scale`` edge draws — the ``GRAPH500-SCALE_N-EF_16``
datasets of the benchmarking repos.

Reproduction choices, pinned for determinism:

* the Graph500 reference parameters ``a=0.57, b=0.19, c=0.19``
  (``d = 1 - a - b - c = 0.05``) are the defaults;
* duplicate draws and self-loops are *dropped, not redrawn* (the
  Graph500 kernel builds a multigraph; our :class:`Graph` is simple),
  so the realized edge count sits a little under the draw count —
  exactly as deduplicated Graph500 imports do;
* only :mod:`random` primitives drive sampling (via
  :func:`repro.utils.rng.make_rng`), so a fixed seed reproduces the
  same graph on every platform — the property sharded massive sweeps
  assert when they compare merged digests;
* vertex labels are drawn uniformly from ``L0 .. L<num_labels-1>``
  after the topology, from the same stream.

The output is a one-graph :class:`GraphDataset`, which is what the
single-graph regime requires; everything downstream (CSR conversion,
arena sharing, the artifact store) treats it like any other dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.utils.rng import make_rng

__all__ = ["RMATConfig", "generate_massive_dataset", "rmat_edges"]


@dataclass(frozen=True, slots=True)
class RMATConfig:
    """Parameters of one R-MAT graph (Graph500 reference defaults)."""

    #: ``2**scale`` vertices.
    scale: int = 14
    #: Edge draws per vertex (Graph500's default 16).
    edge_factor: int = 16
    #: Size of the uniform label vocabulary.
    num_labels: int = 32
    #: Quadrant probabilities; ``d`` is the remainder ``1 - a - b - c``.
    a: float = 0.57
    b: float = 0.19
    c: float = 0.19

    def __post_init__(self) -> None:
        if not 1 <= self.scale <= 30:
            raise ValueError(f"scale must be in [1, 30], got {self.scale}")
        if self.edge_factor < 1:
            raise ValueError(
                f"edge_factor must be >= 1, got {self.edge_factor}"
            )
        if self.num_labels < 1:
            raise ValueError(f"num_labels must be >= 1, got {self.num_labels}")
        if min(self.a, self.b, self.c) < 0.0 or self.a + self.b + self.c >= 1.0:
            raise ValueError(
                "quadrant probabilities must be non-negative with "
                f"a + b + c < 1, got ({self.a}, {self.b}, {self.c})"
            )

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def num_edge_draws(self) -> int:
        return self.edge_factor * self.num_vertices

    def labels(self) -> list[str]:
        """The label vocabulary: ``L0 .. L<num_labels-1>``."""
        return [f"L{i}" for i in range(self.num_labels)]


def rmat_edges(config: RMATConfig, rng: random.Random) -> set[frozenset[int]]:
    """Draw the R-MAT edge set: quadrant descent per draw, deduplicated.

    Each draw walks ``scale`` levels of the recursive adjacency-matrix
    partition, picking a quadrant per level with probabilities
    ``(a, b, c, d)``; the leaf is one ``(row, column)`` cell.
    Self-loops and repeat cells are dropped.
    """
    ab = config.a + config.b
    abc = ab + config.c
    edges: set[frozenset[int]] = set()
    for _ in range(config.num_edge_draws):
        row = column = 0
        for _level in range(config.scale):
            row <<= 1
            column <<= 1
            draw = rng.random()
            if draw < config.a:
                pass
            elif draw < ab:
                column |= 1
            elif draw < abc:
                row |= 1
            else:
                row |= 1
                column |= 1
        if row != column:
            edges.add(frozenset((row, column)))
    return edges


def generate_massive_dataset(
    config: RMATConfig,
    seed: int | random.Random | None = 0,
    name: str = "",
) -> GraphDataset:
    """Generate the one-graph dataset of the massive regime."""
    rng = make_rng(seed)
    edge_list = sorted(
        (min(edge), max(edge)) for edge in rmat_edges(config, rng)
    )
    labels = config.labels()
    vertex_labels = [
        rng.choice(labels) for _ in range(config.num_vertices)
    ]
    graph = Graph(vertex_labels, edge_list)
    dataset = GraphDataset(
        name=name
        or (
            f"rmat(scale={config.scale}, ef={config.edge_factor}, "
            f"L={config.num_labels})"
        )
    )
    dataset.add(graph)
    return dataset
