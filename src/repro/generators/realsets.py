"""Synthetic stand-ins for the four real datasets of Table 1.

The paper evaluates on AIDS (antiviral screen molecules), PDBS (protein
backbones), PCM (contact maps) and PPI (protein-interaction networks),
distributed with Grapes [9].  Those files are not redistributable here,
so — per the substitution policy in DESIGN.md — we synthesize datasets
matching every Table 1 statistic:

========= ======== ======== ======== ========
statistic     AIDS     PDBS      PCM      PPI
========= ======== ======== ======== ========
#graphs      40000      600      200       20
#disc.        3157      360      200       20
#labels         62       10       21       46
avg nodes       45     2939      377     4942
std nodes     21.7     3215    186.7     2648
avg edges    46.95     3064     4340    26667
avg degree    2.09     2.06    23.01    10.87
avg labels     4.4      6.4     18.9     28.5
========= ======== ======== ======== ========

Construction choices, and why they preserve the benchmark's behaviour:

* Node counts are drawn from a truncated normal with the published
  mean/stddev; edge counts follow the published average degree via
  Eq. (2) (``m = avgdeg · n / 2``), which automatically reproduces the
  published density profile across the node-count distribution.
* Labels follow a Zipf distribution whose exponent is calibrated (by
  bisection on the closed-form expectation) so the *expected number of
  distinct labels per graph* matches Table 1 — chemical and biological
  alphabets are exactly this kind of skewed, and label skew is what
  drives feature-frequency effects in the indexes.
* The published fraction of disconnected graphs is reproduced by
  splitting the node budget across several components.
* A ``scale`` knob shrinks graph count and node counts proportionally
  (degree and label structure preserved) so CI-scale runs finish in
  Python; EXPERIMENTS.md records the scale used for every reported
  number.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.utils.rng import make_rng

__all__ = ["RealDatasetSpec", "REAL_DATASET_SPECS", "make_real_dataset"]


@dataclass(frozen=True, slots=True)
class RealDatasetSpec:
    """Target statistics for one real-dataset stand-in (Table 1 row)."""

    name: str
    num_graphs: int
    num_labels: int
    avg_nodes: float
    std_nodes: float
    avg_degree: float
    avg_labels_per_graph: float
    disconnected_fraction: float

    def scaled(self, scale: float) -> "RealDatasetSpec":
        """Shrink graph count and node counts by *scale* (≤ 1).

        The label alphabet and the disconnected fraction are preserved.
        The average degree cannot be preserved verbatim: PCM's degree of
        23 is unrealizable on the tiny graphs a CI-scale run uses (an
        8-vertex graph caps at degree 7), and naively clamping it would
        *invert* Table 1's degree ordering.  Instead the degree's excess
        over the tree baseline (2.0, a spanning tree's asymptotic
        average) shrinks as sqrt(scale)::

            degree' = 2 + (degree - 2) · √scale

        which keeps the cross-dataset ordering (PCM > PPI > AIDS ≈
        PDBS) and stays realizable at every scale.
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        scaled_degree = 2.0 + (self.avg_degree - 2.0) * scale**0.5
        # Graphs must stay big enough to realize the degree target even
        # when split into components (disconnected datasets like PCM).
        node_floor = max(8.0, 6.0 * scaled_degree)
        return RealDatasetSpec(
            name=self.name,
            num_graphs=max(5, round(self.num_graphs * scale)),
            num_labels=self.num_labels,
            avg_nodes=max(node_floor, self.avg_nodes * scale),
            std_nodes=max(2.0, self.std_nodes * scale),
            avg_degree=scaled_degree,
            avg_labels_per_graph=min(
                self.avg_labels_per_graph, max(3.0, self.avg_labels_per_graph * scale)
            ),
            disconnected_fraction=self.disconnected_fraction,
        )


#: Table 1, transcribed.
REAL_DATASET_SPECS: dict[str, RealDatasetSpec] = {
    "AIDS": RealDatasetSpec(
        name="AIDS",
        num_graphs=40000,
        num_labels=62,
        avg_nodes=45.0,
        std_nodes=21.7,
        avg_degree=2.09,
        avg_labels_per_graph=4.4,
        disconnected_fraction=3157 / 40000,
    ),
    "PDBS": RealDatasetSpec(
        name="PDBS",
        num_graphs=600,
        num_labels=10,
        avg_nodes=2939.0,
        std_nodes=3215.0,
        avg_degree=2.06,
        avg_labels_per_graph=6.4,
        disconnected_fraction=360 / 600,
    ),
    "PCM": RealDatasetSpec(
        name="PCM",
        num_graphs=200,
        num_labels=21,
        avg_nodes=377.0,
        std_nodes=186.7,
        avg_degree=23.01,
        avg_labels_per_graph=18.9,
        disconnected_fraction=1.0,
    ),
    "PPI": RealDatasetSpec(
        name="PPI",
        num_graphs=20,
        num_labels=46,
        avg_nodes=4942.0,
        std_nodes=2648.0,
        avg_degree=10.87,
        avg_labels_per_graph=28.5,
        disconnected_fraction=1.0,
    ),
}


def make_real_dataset(
    name: str,
    scale: float = 1.0,
    seed: int | random.Random | None = 0,
    num_graphs: int | None = None,
) -> GraphDataset:
    """Synthesize the stand-in for one of AIDS / PDBS / PCM / PPI.

    Parameters
    ----------
    name:
        Dataset key (case-insensitive).
    scale:
        Proportional shrink factor for CI-speed runs; 1.0 reproduces
        the full Table 1 sizes.
    seed:
        Reproducibility seed.
    num_graphs:
        Optional override of the graph count alone, leaving per-graph
        statistics at the chosen scale.  Calibration tests use this to
        check full-scale per-graph statistics on an affordable sample
        (e.g. 200 AIDS-like molecules instead of 40,000).
    """
    try:
        spec = REAL_DATASET_SPECS[name.upper()]
    except KeyError:
        known = ", ".join(REAL_DATASET_SPECS)
        raise ValueError(f"unknown real dataset {name!r}; expected one of {known}")
    if scale != 1.0:
        spec = spec.scaled(scale)
    if num_graphs is not None:
        if num_graphs < 1:
            raise ValueError(f"num_graphs must be >= 1, got {num_graphs}")
        spec = RealDatasetSpec(
            name=spec.name,
            num_graphs=num_graphs,
            num_labels=spec.num_labels,
            avg_nodes=spec.avg_nodes,
            std_nodes=spec.std_nodes,
            avg_degree=spec.avg_degree,
            avg_labels_per_graph=spec.avg_labels_per_graph,
            disconnected_fraction=spec.disconnected_fraction,
        )
    rng = make_rng(seed)
    weights = _zipf_weights(spec)
    labels = [f"{spec.name}:{i}" for i in range(spec.num_labels)]
    dataset = GraphDataset(name=f"{spec.name}-like(scale={scale})")
    for _ in range(spec.num_graphs):
        dataset.add(_generate_member(spec, labels, weights, rng))
    return dataset


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------


def _generate_member(
    spec: RealDatasetSpec,
    labels: list[str],
    weights: list[float],
    rng: random.Random,
) -> Graph:
    num_vertices = max(4, round(rng.gauss(spec.avg_nodes, spec.std_nodes)))
    vertex_labels = rng.choices(labels, weights=weights, k=num_vertices)
    graph = Graph(vertex_labels)
    if rng.random() < spec.disconnected_fraction:
        component_count = rng.randint(2, min(4, num_vertices // 2))
    else:
        component_count = 1
    _wire_components(graph, spec, component_count, rng)
    return graph


def _wire_components(
    graph: Graph, spec: RealDatasetSpec, component_count: int, rng: random.Random
) -> None:
    """Partition vertices into components, wire each to the degree target."""
    vertices = list(graph.vertices())
    rng.shuffle(vertices)
    bounds = sorted(rng.sample(range(1, len(vertices)), component_count - 1))
    pieces = []
    start = 0
    for bound in bounds + [len(vertices)]:
        pieces.append(vertices[start:bound])
        start = bound
    for piece in pieces:
        if len(piece) < 2:
            continue
        # Spanning tree for connectivity within the component.
        for position in range(1, len(piece)):
            graph.add_edge(piece[position], piece[rng.randrange(position)])
        target_edges = round(spec.avg_degree * len(piece) / 2)
        max_edges = len(piece) * (len(piece) - 1) // 2
        target_edges = min(max(target_edges, len(piece) - 1), max_edges)
        attempts = 20 * max(1, target_edges)
        have = len(piece) - 1
        while have < target_edges and attempts > 0:
            attempts -= 1
            u, v = rng.sample(piece, 2)
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                have += 1


# ----------------------------------------------------------------------
# Zipf calibration
# ----------------------------------------------------------------------


def _zipf_weights(spec: RealDatasetSpec) -> list[float]:
    """Zipf weights matching the distinct-labels-per-graph target.

    With label probabilities ``p_i`` and ``n`` vertices, the expected
    number of distinct labels is ``Σ_i (1 − (1 − p_i)^n)`` — monotone
    decreasing in the Zipf exponent ``s`` — so a bisection on ``s``
    hits the Table 1 target directly.
    """
    n = max(4, round(spec.avg_nodes))
    target = min(spec.avg_labels_per_graph, float(spec.num_labels))

    def expected_distinct(s: float) -> float:
        raw = [1.0 / (rank**s) for rank in range(1, spec.num_labels + 1)]
        total = sum(raw)
        return sum(1.0 - (1.0 - w / total) ** n for w in raw)

    low, high = 0.0, 8.0
    if expected_distinct(low) <= target:
        return [1.0] * spec.num_labels  # uniform is already skew enough
    for _ in range(60):
        mid = (low + high) / 2.0
        if expected_distinct(mid) > target:
            low = mid
        else:
            high = mid
    s = (low + high) / 2.0
    return [1.0 / (rank**s) for rank in range(1, spec.num_labels + 1)]
