"""Random-walk query workloads (paper §4.3).

Queries are generated exactly as the paper prescribes:

1. select a graph uniformly at random from the dataset;
2. select a start vertex uniformly at random from that graph;
3. random-walk from it, keeping the union of visited vertices and
   traversed edges;
4. stop once the union holds the requested number of edges and return
   it as the query graph.

Because each query is an actual subgraph of some dataset graph, every
query has at least one answer, and query label/density statistics track
the dataset's (§4.3).  Walks trapped in a region with too few edges
(e.g. a component smaller than the target) are abandoned and retried
from a fresh graph/vertex; the paper's sizes are 4, 8, 16 and 32 edges.
"""

from __future__ import annotations

import random

from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.utils.rng import make_rng

__all__ = ["random_walk_query", "generate_queries"]

#: Walk steps allowed per attempt, as a multiple of the edge target.
_STEP_FACTOR = 50
#: Fresh (graph, vertex) attempts before giving up on a size.
_MAX_ATTEMPTS = 200


def generate_queries(
    dataset: GraphDataset,
    num_queries: int,
    num_edges: int,
    seed: int | random.Random | None = 0,
) -> list[Graph]:
    """Generate *num_queries* random-walk queries of *num_edges* edges.

    Raises
    ------
    ValueError
        If the dataset is empty or cannot yield queries of the
        requested size (every graph smaller than *num_edges* edges).
    """
    if len(dataset) == 0:
        raise ValueError("cannot draw queries from an empty dataset")
    if num_edges < 1:
        raise ValueError(f"num_edges must be >= 1, got {num_edges}")
    rng = make_rng(seed)
    return [random_walk_query(dataset, num_edges, rng) for _ in range(num_queries)]


def random_walk_query(
    dataset: GraphDataset, num_edges: int, rng: random.Random
) -> Graph:
    """One random-walk query of exactly *num_edges* edges."""
    for _ in range(_MAX_ATTEMPTS):
        source = dataset[rng.randrange(len(dataset))]
        if source.size < num_edges or source.order == 0:
            continue
        query = _walk(source, rng.randrange(source.order), num_edges, rng)
        if query is not None:
            return query
    raise ValueError(
        f"failed to extract a {num_edges}-edge query after "
        f"{_MAX_ATTEMPTS} attempts; graphs may be too small"
    )


def _walk(
    source: Graph, start: int, num_edges: int, rng: random.Random
) -> Graph | None:
    """Random-walk from *start*, returning the edge union as a graph."""
    visited_vertices = [start]
    vertex_set = {start}
    edges: set[frozenset] = set()
    current = start
    for _ in range(_STEP_FACTOR * num_edges):
        neighbors = source.neighbors(current)
        if not neighbors:
            return None  # isolated vertex; retry elsewhere
        nxt = rng.choice(sorted(neighbors))
        edge = frozenset((current, nxt))
        if edge not in edges:
            edges.add(edge)
            if nxt not in vertex_set:
                vertex_set.add(nxt)
                visited_vertices.append(nxt)
            if len(edges) == num_edges:
                return _project(source, visited_vertices, edges)
        current = nxt
    return None


def _project(
    source: Graph, vertices: list[int], edges: set[frozenset]
) -> Graph:
    """Materialize the walk union as a standalone graph."""
    index_of = {v: i for i, v in enumerate(vertices)}
    query = Graph([source.label(v) for v in vertices])
    for edge in edges:
        u, v = tuple(edge)
        query.add_edge(index_of[u], index_of[v])
    return query
