"""GraphGen-style synthetic graph generation (paper §4.2).

The paper generates all synthetic datasets with GraphGen [4],
parameterized by the number of distinct labels, number of graphs, mean
graph size and mean density.  Its §4.2 description, reproduced here:

1. an *edge alphabet* is formed of all pairs of distinct node labels;
2. each graph draws its size and density from normal distributions
   around the dataset means (σ = 5 for size, σ = 0.01 for density);
3. edges are drawn uniformly at random from the alphabet and added
   until the target size/density is met.

Our reimplementation pins down the parts the description leaves open:

* The paper's sweeps fix the *mean node count* ``n`` and *mean density*
  ``d``; per-graph targets are drawn as ``n_i ~ N(n, 5)`` and
  ``d_i ~ N(d, 0.01)`` (clamped), and the edge target follows Eq. (1):
  ``m_i = d_i · n_i (n_i − 1) / 2``.
* "Adding an edge from the alphabet" means: draw a label pair ``(a,
  b)`` uniformly from the alphabet, then connect a uniformly chosen
  ``a``-labeled vertex to a uniformly chosen ``b``-labeled vertex that
  are not yet adjacent.  Vertex labels themselves are assigned
  uniformly at random up front.
* All output graphs are connected (as the paper observes of GraphGen's
  output): a random spanning tree over the vertices is laid down first,
  also respecting alphabet-uniform label-pair choice where possible,
  and the remaining edges are then drawn as above.

Graphs produced this way reproduce the paper's structural observations:
with the "sane defaults" (200 nodes, density 0.025, 20 labels)
virtually every graph contains cycles, while 50-node graphs are
tree-shaped about half the time (§4.2) — the calibration tests assert
both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.utils.rng import make_rng

__all__ = ["GraphGenConfig", "generate_graph", "generate_dataset"]


@dataclass(frozen=True, slots=True)
class GraphGenConfig:
    """Parameters of one synthetic dataset (paper §4.2).

    The defaults are the paper's "sane defaults": 200 nodes per graph,
    density 0.025, 20 distinct labels, 1000 graphs.
    """

    num_graphs: int = 1000
    mean_nodes: int = 200
    mean_density: float = 0.025
    num_labels: int = 20
    nodes_stddev: float = 5.0
    density_stddev: float = 0.01

    def __post_init__(self) -> None:
        if self.num_graphs < 1:
            raise ValueError(f"num_graphs must be >= 1, got {self.num_graphs}")
        if self.mean_nodes < 2:
            raise ValueError(f"mean_nodes must be >= 2, got {self.mean_nodes}")
        if not 0.0 < self.mean_density <= 1.0:
            raise ValueError(f"mean_density must be in (0, 1], got {self.mean_density}")
        if self.num_labels < 1:
            raise ValueError(f"num_labels must be >= 1, got {self.num_labels}")

    def labels(self) -> list[str]:
        """The label vocabulary: ``L0 .. L<num_labels-1>``."""
        return [f"L{i}" for i in range(self.num_labels)]


def generate_dataset(
    config: GraphGenConfig, seed: int | random.Random | None = 0, name: str = ""
) -> GraphDataset:
    """Generate a full synthetic dataset per *config*.

    A fixed *seed* makes generation reproducible across runs and
    platforms (only :mod:`random` primitives are used).
    """
    rng = make_rng(seed)
    dataset = GraphDataset(
        name=name
        or (
            f"synthetic(n={config.mean_nodes}, d={config.mean_density}, "
            f"L={config.num_labels}, N={config.num_graphs})"
        )
    )
    labels = config.labels()
    for _ in range(config.num_graphs):
        dataset.add(generate_graph(config, labels, rng))
    return dataset


def generate_graph(
    config: GraphGenConfig, labels: list[str], rng: random.Random
) -> Graph:
    """Generate one connected graph with the configured statistics."""
    num_vertices = max(2, round(rng.gauss(config.mean_nodes, config.nodes_stddev)))
    density = min(1.0, max(0.0, rng.gauss(config.mean_density, config.density_stddev)))
    max_edges = num_vertices * (num_vertices - 1) // 2
    target_edges = round(density * max_edges)
    # Connectivity needs a spanning tree; completeness caps the target.
    target_edges = min(max(target_edges, num_vertices - 1), max_edges)

    vertex_labels = [rng.choice(labels) for _ in range(num_vertices)]
    graph = Graph(vertex_labels)
    by_label: dict[str, list[int]] = {}
    for vertex, label in enumerate(vertex_labels):
        by_label.setdefault(label, []).append(vertex)

    _add_spanning_tree(graph, rng)
    _add_alphabet_edges(graph, by_label, labels, target_edges, rng)
    return graph


def _add_spanning_tree(graph: Graph, rng: random.Random) -> None:
    """Connect all vertices with a uniformly shuffled random tree."""
    vertices = list(graph.vertices())
    rng.shuffle(vertices)
    for position in range(1, len(vertices)):
        anchor = vertices[rng.randrange(position)]
        graph.add_edge(vertices[position], anchor)


def _add_alphabet_edges(
    graph: Graph,
    by_label: dict[str, list[int]],
    labels: list[str],
    target_edges: int,
    rng: random.Random,
) -> None:
    """Draw label pairs uniformly from the alphabet and realize them.

    A drawn pair that cannot be realized (no such labels present, or
    all corresponding vertex pairs already adjacent) is redrawn; a
    global attempt cap prevents livelock when the graph saturates
    ("until ... the system runs out of edges to use", §4.2).
    """
    attempts_left = 50 * max(1, target_edges)
    present = [label for label in labels if label in by_label]
    while graph.size < target_edges and attempts_left > 0:
        attempts_left -= 1
        label_a = rng.choice(present)
        label_b = rng.choice(present)
        if label_a == label_b and len(by_label[label_a]) < 2:
            continue
        u = rng.choice(by_label[label_a])
        v = rng.choice(by_label[label_b])
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
