"""Dataset and workload generators (paper §4.2–§4.3).

* :mod:`~repro.generators.graphgen` — a reimplementation of the
  GraphGen [4] synthetic generator as the paper describes it: an edge
  alphabet over label pairs, per-graph size and density drawn from
  normal distributions, connected output graphs.
* :mod:`~repro.generators.realsets` — synthesizers reproducing the
  Table 1 statistics of the four real datasets (AIDS, PDBS, PCM, PPI),
  our stand-ins for the files we cannot download (see DESIGN.md,
  "Substitutions").
* :mod:`~repro.generators.queries` — the random-walk query workload
  generator of §4.3.
"""

from repro.generators.graphgen import GraphGenConfig, generate_dataset, generate_graph
from repro.generators.queries import generate_queries, random_walk_query
from repro.generators.realsets import (
    REAL_DATASET_SPECS,
    RealDatasetSpec,
    make_real_dataset,
)

__all__ = [
    "GraphGenConfig",
    "generate_graph",
    "generate_dataset",
    "generate_queries",
    "random_walk_query",
    "RealDatasetSpec",
    "REAL_DATASET_SPECS",
    "make_real_dataset",
]
