"""Line-oriented text serialization for graph datasets.

The format follows the spirit of the ``.gfd`` files consumed by the
original Grapes/GraphGrepSX implementations: each graph is a header line,
a vertex count, one label per vertex line, an edge count, and one edge
per line.  Example::

    #molecule_0
    3
    C
    C
    O
    2
    0 1
    1 2

Labels are stored as strings; reading therefore yields string labels.
The format round-trips any dataset whose labels have unambiguous string
forms (our generators always use strings).
"""

from __future__ import annotations

import io
from collections.abc import Iterator
from pathlib import Path

from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph, GraphError

__all__ = ["write_dataset", "read_dataset", "dumps_dataset", "loads_dataset"]


def write_dataset(dataset: GraphDataset, path: str | Path) -> None:
    """Serialize *dataset* to the text format at *path*."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_dataset(dataset))


def read_dataset(path: str | Path, name: str = "") -> GraphDataset:
    """Parse a dataset previously written by :func:`write_dataset`."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_dataset(handle.read(), name=name or Path(path).stem)


def dumps_dataset(dataset: GraphDataset) -> str:
    """Serialize *dataset* to an in-memory string."""
    out = io.StringIO()
    for graph in dataset:
        out.write(f"#{graph.graph_id}\n")
        out.write(f"{graph.order}\n")
        for v in graph.vertices():
            out.write(f"{graph.label(v)}\n")
        edges = list(graph.edges())
        out.write(f"{len(edges)}\n")
        for u, v in edges:
            out.write(f"{u} {v}\n")
    return out.getvalue()


def loads_dataset(text: str, name: str = "") -> GraphDataset:
    """Parse the text format from a string.

    Raises
    ------
    GraphError
        On malformed input (wrong counts, non-integer edge endpoints,
        missing header).
    """
    dataset = GraphDataset(name=name)
    lines = _significant_lines(text)
    while True:
        header = next(lines, None)
        if header is None:
            return dataset
        if not header.startswith("#"):
            raise GraphError(f"expected '#<id>' header line, got {header!r}")
        num_vertices = _read_int(lines, "vertex count")
        labels = [_read_line(lines, "vertex label") for _ in range(num_vertices)]
        num_edges = _read_int(lines, "edge count")
        graph = Graph(labels)
        for _ in range(num_edges):
            edge_line = _read_line(lines, "edge")
            parts = edge_line.split()
            if len(parts) != 2:
                raise GraphError(f"malformed edge line {edge_line!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(f"non-integer edge endpoints in {edge_line!r}") from exc
            graph.add_edge(u, v)
        dataset.add(graph)


def _significant_lines(text: str) -> Iterator[str]:
    for raw in text.splitlines():
        line = raw.strip()
        if line:
            yield line


def _read_line(lines: Iterator[str], what: str) -> str:
    line = next(lines, None)
    if line is None:
        raise GraphError(f"unexpected end of input while reading {what}")
    return line


def _read_int(lines: Iterator[str], what: str) -> int:
    line = _read_line(lines, what)
    try:
        return int(line)
    except ValueError as exc:
        raise GraphError(f"expected integer for {what}, got {line!r}") from exc
