"""Immutable CSR graph core — the hot-path representation.

PR 2 introduced the flat-array packing (labels plus int64 adjacency
with prefix offsets) as the shared-memory *wire format*; this module
promotes it to the primary in-memory structure.  A :class:`CSRGraph`
stores vertices as contiguous numpy int64 arrays:

* ``indptr`` — per-vertex prefix offsets into ``indices`` (``n+1``
  entries);
* ``indices`` — concatenated neighbor runs, each run **sorted
  ascending** so adjacency tests binary-search a contiguous slice;
* ``label_ids`` — per-vertex indices into a deduplicated label table
  (shared across a whole :class:`CSRDataset`).

The dict-of-sets :class:`~repro.graphs.graph.Graph` remains the
*builder*: mutation (``add_edge``), validation, generators, and query
graphs all stay on it.  Data graphs flowing into the matcher and the
index builders are converted once per dataset — or attached directly
from a packed shared-memory segment via :meth:`CSRDataset.from_packed`,
skipping the per-vertex ``from_adjacency`` rebuild entirely.

Determinism: every generic accessor returns plain Python ints (numpy
scalars ``repr`` differently and would corrupt content fingerprints and
canonical structures), and neighbor order is *sorted* rather than
set-iteration order.  All canonicalized sweep quantities are
order-independent functions of graph content, which is what makes the
CSR and dict cores byte-identical under the canonical digest — pinned
by the cross-core equivalence tests.

The active core is selected by the ``REPRO_GRAPH_CORE`` environment
variable (``csr`` by default, ``dict`` for the legacy representation),
surfaced on the CLI as ``--graph-core``.
"""

from __future__ import annotations

import pickle
import struct
from collections.abc import Hashable, Iterable, Iterator

import numpy as np

from repro.graphs.dataset import (
    _HEADER_BYTES,
    _PACK_HEADER,
    _PACK_MAGIC,
    GraphDataset,
)
from repro.graphs.graph import Graph

__all__ = [
    "CSRGraph",
    "CSRDataset",
    "GRAPH_CORE_ENV",
    "GRAPH_CORES",
    "active_graph_core",
    "as_core_dataset",
    "as_core_query",
]

Label = Hashable

#: Environment variable selecting the in-memory graph representation
#: (mirrors :data:`repro.core.knobs.GRAPH_CORE`, the declaration of
#: record; duplicated as a literal to avoid a package import cycle).
GRAPH_CORE_ENV = "REPRO_GRAPH_CORE"
#: Recognized core names, default first.
GRAPH_CORES = ("csr", "dict")


def active_graph_core() -> str:
    """The selected graph core: ``csr`` (default) or ``dict``.

    Delegates to :data:`repro.core.knobs.GRAPH_CORE` — read from the
    environment on every call, so tests and the CLI can flip cores
    without touching module state; unrecognized values fall back to the
    default.  Imported lazily: ``repro.core`` imports this module at
    package init.
    """
    from repro.core.knobs import GRAPH_CORE

    return GRAPH_CORE.active()


def as_core_dataset(dataset, core: str | None = None):
    """*dataset* in the active core's representation (idempotent).

    Under the ``csr`` core a :class:`~repro.graphs.dataset.GraphDataset`
    is converted to a :class:`CSRDataset`; anything already converted —
    or any dataset under the ``dict`` core — passes through unchanged.
    """
    if core is None:
        core = active_graph_core()
    if core != "csr" or isinstance(dataset, CSRDataset):
        return dataset
    return CSRDataset.from_dataset(dataset)


def as_core_query(query, core: str | None = None):
    """*query* in the active core's representation (idempotent).

    Query admission for the verify path: under the ``csr`` core a
    builder :class:`~repro.graphs.graph.Graph` is converted once —
    at the runner / batch-dispatch / daemon boundary — so the matchers
    and the feature kernels see CSR on *both* sides of every
    (query, data) pair.  The query gets a private label table; every
    canonicalized quantity is a function of label objects, not ids, so
    sharing the dataset's table is unnecessary.  Anything already
    converted, or any query under the ``dict`` core, passes through.
    """
    if core is None:
        core = active_graph_core()
    if core != "csr" or isinstance(query, CSRGraph):
        return query
    return CSRGraph.from_graph(query)


class CSRGraph:
    """One immutable vertex-labeled graph in CSR form.

    Read-API compatible with :class:`~repro.graphs.graph.Graph` for
    every accessor the matcher and the index builders use; there is no
    ``add_edge``.  Neighbor runs are sorted, so :meth:`neighbors`
    returns ascending tuples and :meth:`has_edge` binary-searches a
    contiguous slice.

    Per-graph caches (neighbor tuples and frozensets, label groups,
    neighbor-label counts) are filled lazily and amortize across every
    query verified against the graph — the dict core recomputes the
    same structures per (query, graph) pair.
    """

    __slots__ = (
        "graph_id",
        "_label_table",
        "_label_ids",
        "_indptr",
        "_indices",
        "_order",
        "_size",
        "_degrees",
        "_neighbor_tuples",
        "_neighbor_sets",
        "_by_label",
        "_histogram",
        "_neighbor_label_counts",
        "_label_id_of",
        "_adjacency_bits",
    )

    def __init__(
        self,
        label_table: tuple[Label, ...],
        label_ids: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        graph_id: int | None = None,
    ) -> None:
        self._label_table = label_table
        self._label_ids = label_ids
        self._indptr = indptr
        self._indices = indices
        self._order = int(label_ids.shape[0])
        self._size = int(indices.shape[0]) // 2
        self.graph_id = graph_id
        self._degrees: np.ndarray | None = None
        self._neighbor_tuples: list[tuple[int, ...] | None] | None = None
        self._neighbor_sets: list[frozenset[int] | None] | None = None
        self._by_label: dict[Label, list[int]] | None = None
        self._histogram: dict[Label, int] | None = None
        self._neighbor_label_counts: list[dict[Label, int]] | None = None
        self._label_id_of: dict[Label, int] | None = None
        self._adjacency_bits: np.ndarray | None = None

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        label_index: dict[Label, int] | None = None,
    ) -> "CSRGraph":
        """Convert a builder :class:`Graph`; neighbor runs are sorted.

        *label_index* lets a dataset share one label table across all
        its graphs (entries are appended for unseen labels); without it
        the graph gets a private table.
        """
        if label_index is None:
            label_index = {}
        order = graph.order
        label_ids = np.empty(order, dtype=np.int64)
        indptr = np.zeros(order + 1, dtype=np.int64)
        flat: list[int] = []
        for v in range(order):
            label_ids[v] = label_index.setdefault(
                graph.label(v), len(label_index)
            )
            row = sorted(graph.neighbors(v))
            indptr[v + 1] = indptr[v] + len(row)
            flat.extend(row)
        indices = np.asarray(flat, dtype=np.int64)
        table = tuple(label_index)
        return cls(table, label_ids, indptr, indices, graph_id=graph.graph_id)

    # ------------------------------------------------------------------
    # basic accessors (Graph read-API parity)
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of vertices, ``|V|``."""
        return self._order

    @property
    def size(self) -> int:
        """Number of edges, ``|E|``."""
        return self._size

    def label(self, v: int) -> Label:
        """The label of vertex *v*."""
        return self._label_table[self._label_ids[v]]

    @property
    def labels(self) -> tuple[Label, ...]:
        """Tuple of labels indexed by vertex."""
        table = self._label_table
        return tuple(table[i] for i in self._label_ids.tolist())

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Ascending tuple of vertices adjacent to *v* (cached)."""
        cache = self._neighbor_tuples
        if cache is None:
            cache = self._neighbor_tuples = [None] * self._order
        row = cache[v]
        if row is None:
            row = cache[v] = tuple(
                self._indices[self._indptr[v] : self._indptr[v + 1]].tolist()
            )
        return row

    def neighbor_set(self, v: int) -> frozenset[int]:
        """Frozenset of vertices adjacent to *v* (cached); for set
        algebra in the matchers."""
        cache = self._neighbor_sets
        if cache is None:
            cache = self._neighbor_sets = [None] * self._order
        row = cache[v]
        if row is None:
            row = cache[v] = frozenset(self.neighbors(v))
        return row

    def neighbors_slice(self, v: int) -> np.ndarray:
        """Raw sorted int64 slice of *v*'s neighbor run (do not write)."""
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def adjacency_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The raw ``(indptr, indices)`` pair (int64; do not write).

        The handle the feature kernels
        (:mod:`repro.features.kernels`) dispatch on and iterate over.
        """
        return self._indptr, self._indices

    def label_ids_array(self) -> np.ndarray:
        """Per-vertex label-table indices (int64; do not write)."""
        return self._label_ids

    @property
    def label_table(self) -> tuple[Label, ...]:
        """The deduplicated label table ``label_ids_array`` indexes."""
        return self._label_table

    def degree(self, v: int) -> int:
        """Number of edges incident to *v*."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees_array(self) -> np.ndarray:
        """All vertex degrees as one int64 array (cached; do not write)."""
        if self._degrees is None:
            self._degrees = np.diff(self._indptr)
        return self._degrees

    def has_edge(self, u: int, v: int) -> bool:
        """True iff ``{u, v}`` exists; binary search in the sorted run."""
        i0 = self._indptr[u]
        i1 = self._indptr[u + 1]
        run = self._indices[i0:i1]
        k = int(np.searchsorted(run, v))
        return k < run.shape[0] and int(run[k]) == v

    def vertices(self) -> range:
        """Iterable over all vertex ids."""
        return range(self._order)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield each edge exactly once as ``(u, v)`` with ``u < v``."""
        for u in range(self._order):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------

    def density(self) -> float:
        """Graph density per Eq. (1): ``2|E| / (|V| (|V|-1))``."""
        n = self._order
        if n < 2:
            return 0.0
        return 2.0 * self._size / (n * (n - 1))

    def average_degree(self) -> float:
        """Average vertex degree per Eq. (2): ``2|E| / |V|``."""
        if self._order == 0:
            return 0.0
        return 2.0 * self._size / self._order

    def distinct_labels(self) -> set[Label]:
        """The set of labels appearing on at least one vertex."""
        table = self._label_table
        return {table[i] for i in set(self._label_ids.tolist())}

    def vertices_by_label(self) -> dict[Label, list[int]]:
        """Map each label to the list of vertices carrying it.

        Cached and shared across callers — treat it as read-only (the
        dict core returns a fresh dict; every caller only reads).
        """
        if self._by_label is None:
            groups: dict[Label, list[int]] = {}
            table = self._label_table
            for v, lid in enumerate(self._label_ids.tolist()):
                groups.setdefault(table[lid], []).append(v)
            self._by_label = groups
        return self._by_label

    def label_histogram(self) -> dict[Label, int]:
        """Map each label to the number of vertices carrying it
        (cached; treat as read-only)."""
        if self._histogram is None:
            table = self._label_table
            counts = np.bincount(self._label_ids, minlength=len(table))
            self._histogram = {
                table[i]: int(c)
                for i, c in enumerate(counts.tolist())
                if c
            }
        return self._histogram

    # ------------------------------------------------------------------
    # vectorized candidate filtering (matcher hot path)
    # ------------------------------------------------------------------

    def candidate_vertices(self, label: Label, min_degree: int = 0) -> tuple[int, ...]:
        """Vertices with *label* and degree ≥ *min_degree*, ascending.

        One vectorized mask over the label-id and degree arrays — the
        root-candidate filter of VF2 and Ullmann's initial domains.
        Vertices this drops would fail the matchers' per-vertex label
        and degree feasibility checks anyway, so filtering here never
        changes an answer, only skips doomed branches earlier.
        """
        if self._label_id_of is None:
            self._label_id_of = {
                lbl: i for i, lbl in enumerate(self._label_table)
            }
        lid = self._label_id_of.get(label)
        if lid is None:
            return ()
        mask = self._label_ids == lid
        if min_degree > 0:
            mask &= self.degrees_array() >= min_degree
        return tuple(np.nonzero(mask)[0].tolist())

    def adjacency_bitmatrix(self) -> np.ndarray:
        """The packed adjacency bit matrix (cached; do not write).

        Row ``v`` is ``ceil(order / 64)`` little-endian uint64 words
        with bit ``w`` set iff ``{v, w}`` is an edge — the structure
        Ullmann's bitset engine refines domains against, built in one
        vectorized scatter and amortized across every query verified
        on this graph.
        """
        cached = getattr(self, "_adjacency_bits", None)
        if cached is None:
            words = (self._order + 63) // 64 if self._order else 0
            matrix = np.zeros((self._order, max(words, 1)), dtype=np.uint64)
            if self._indices.shape[0]:
                rows = np.repeat(
                    np.arange(self._order, dtype=np.int64),
                    np.diff(self._indptr),
                )
                cols = self._indices
                np.bitwise_or.at(
                    matrix,
                    (rows, cols >> 6),
                    np.uint64(1) << (cols & 63).astype(np.uint64),
                )
            cached = self._adjacency_bits = matrix
        return cached

    def neighbor_label_counts(self) -> list[dict[Label, int]]:
        """Per-vertex neighbor-label histograms, computed once.

        ``result[v][label]`` counts *v*'s neighbors carrying *label* —
        the dominance structure :class:`SubgraphMatcher` needs for its
        lookahead, built per (query, graph) pair under the dict core
        but amortized across the whole workload here.
        """
        if self._neighbor_label_counts is None:
            table = self._label_table
            indptr = self._indptr
            gathered = (
                self._label_ids[self._indices]
                if self._indices.shape[0]
                else self._indices
            )
            out: list[dict[Label, int]] = []
            for v in range(self._order):
                counts: dict[Label, int] = {}
                for lid in gathered[indptr[v] : indptr[v + 1]].tolist():
                    lbl = table[lid]
                    counts[lbl] = counts.get(lbl, 0) + 1
                out.append(counts)
            self._neighbor_label_counts = out
        return self._neighbor_label_counts

    # ------------------------------------------------------------------
    # connectivity and subgraphs
    # ------------------------------------------------------------------

    def connected_components(self) -> list[list[int]]:
        """Vertex lists of the connected components, each sorted."""
        seen = [False] * self._order
        components: list[list[int]] = []
        for start in range(self._order):
            if seen[start]:
                continue
            component = []
            stack = [start]
            seen[start] = True
            while stack:
                v = stack.pop()
                component.append(v)
                for w in self.neighbors(v):
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
            component.sort()
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """True iff exactly one connected component (empty graph: False)."""
        if self._order == 0:
            return False
        return len(self.connected_components()) == 1

    def induced_subgraph(self, vertices: Iterable[int]) -> tuple[Graph, list[int]]:
        """The subgraph induced by *vertices* plus the vertex map.

        Returns a builder :class:`Graph` — projections are small,
        short-lived, and immediately handed to the matcher, which
        accepts either core.
        """
        mapping = sorted(set(vertices))
        index_of = {v: i for i, v in enumerate(mapping)}
        labels = [self.label(v) for v in mapping]
        sub = Graph(labels)
        for v in mapping:
            for w in self.neighbors(v):
                if v < w and w in index_of:
                    sub.add_edge(index_of[v], index_of[w])
        return sub, mapping

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Structural equality, across cores: same per-vertex labels and
        same edge set.  Matches :class:`Graph` semantics, so a CSR view
        of a graph compares equal to the dict graph it was packed from.
        """
        if isinstance(other, CSRGraph):
            return (
                self.labels == other.labels
                and np.array_equal(self._indptr, other._indptr)
                and np.array_equal(self._indices, other._indices)
            )
        if isinstance(other, Graph):
            if self.labels != other.labels or self._size != other.size:
                return False
            return all(
                list(self.neighbors(v)) == sorted(other.neighbor_set(v))
                for v in self.vertices()
            )
        return NotImplemented

    def __hash__(self) -> int:  # structural, matches Graph.__hash__
        return hash(
            (self.labels, frozenset(frozenset(e) for e in self.edges()))
        )

    def __repr__(self) -> str:
        gid = f", id={self.graph_id}" if self.graph_id is not None else ""
        return f"CSRGraph(|V|={self.order}, |E|={self.size}{gid})"


class CSRDataset:
    """An ordered, id-stable collection of :class:`CSRGraph` views.

    Read-API compatible with :class:`~repro.graphs.dataset.GraphDataset`
    (``len``, indexing, iteration, id and aggregate accessors) but
    immutable: graphs are materialized once at construction so their
    lazy caches persist across every query of a workload.
    """

    __slots__ = ("_graphs", "name")

    def __init__(self, graphs: Iterable[CSRGraph], name: str = "") -> None:
        self._graphs: list[CSRGraph] = list(graphs)
        self.name = name
        for graph_id, graph in enumerate(self._graphs):
            graph.graph_id = graph_id

    @classmethod
    def from_dataset(cls, dataset: GraphDataset) -> "CSRDataset":
        """Convert a builder dataset; one shared label table."""
        label_index: dict[Label, int] = {}
        graphs = [
            CSRGraph.from_graph(graph, label_index) for graph in dataset
        ]
        table = tuple(label_index)
        for graph in graphs:
            graph._label_table = table
        return cls(graphs, name=getattr(dataset, "name", ""))

    @classmethod
    def from_packed(cls, buffer) -> "CSRDataset":
        """Attach to a buffer written by
        :func:`repro.graphs.dataset.pack_dataset`.

        The int64 region is bulk-copied into one numpy array (a view
        would pin shared memory and raise ``BufferError`` on unmap) and
        sliced per graph; adjacency runs are sorted with one vectorized
        ``lexsort`` per graph.  No per-vertex ``from_adjacency``
        rebuild, no per-edge Python loop — this is the arena's CSR
        attach path.
        """
        base = memoryview(buffer)
        try:
            magic = bytes(base[: len(_PACK_MAGIC)])
            if magic != _PACK_MAGIC:
                raise ValueError(f"not a packed dataset (magic {magic!r})")
            g, v, a, label_len, name_len = struct.unpack_from(
                _PACK_HEADER, base, len(_PACK_MAGIC)
            )
            ints_count = (g + 1) + (v + 1) + v + a
            ints_end = _HEADER_BYTES + 8 * ints_count
            if len(base) < ints_end + label_len + name_len:
                raise ValueError("packed dataset buffer is truncated")
            ints = np.frombuffer(
                base, dtype=np.dtype("<i8"), count=ints_count,
                offset=_HEADER_BYTES,
            ).astype(np.int64, copy=True)
            label_table: tuple[Label, ...] = (
                pickle.loads(bytes(base[ints_end : ints_end + label_len]))
                if label_len
                else ()
            )
            name = bytes(
                base[ints_end + label_len : ints_end + label_len + name_len]
            ).decode("utf-8")
        finally:
            base.release()
        vstarts = ints[: g + 1]
        astarts = ints[g + 1 : g + v + 2]
        label_ids = ints[g + v + 2 : g + v + 2 + v]
        adj = ints[g + v + 2 + v :]
        graphs: list[CSRGraph] = []
        for i in range(g):
            v0 = int(vstarts[i])
            v1 = int(vstarts[i + 1])
            a0 = int(astarts[v0])
            indptr = astarts[v0 : v1 + 1] - a0
            indices = adj[a0 : int(astarts[v1])]
            if indices.shape[0]:
                # Packed runs preserve set-iteration order; sort each
                # vertex's run in one shot (primary key: owning row).
                rows = np.repeat(
                    np.arange(v1 - v0, dtype=np.int64), np.diff(indptr)
                )
                indices = indices[np.lexsort((indices, rows))]
            graphs.append(
                CSRGraph(label_table, label_ids[v0:v1].copy(), indptr, indices)
            )
        return cls(graphs, name=name)

    # ------------------------------------------------------------------
    # GraphDataset read-API parity
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._graphs)

    def __getitem__(self, graph_id: int) -> CSRGraph:
        return self._graphs[graph_id]

    def __iter__(self) -> Iterator[CSRGraph]:
        return iter(self._graphs)

    def ids(self) -> range:
        """All graph ids (dense)."""
        return range(len(self._graphs))

    def all_ids(self) -> set[int]:
        """All graph ids as a fresh mutable set (naive candidate set)."""
        return set(range(len(self._graphs)))

    def distinct_labels(self) -> set[Label]:
        """Union of vertex labels across all graphs."""
        labels: set[Label] = set()
        for graph in self._graphs:
            labels.update(graph.distinct_labels())
        return labels

    def total_vertices(self) -> int:
        """Sum of ``|V|`` over all graphs."""
        return sum(graph.order for graph in self._graphs)

    def total_edges(self) -> int:
        """Sum of ``|E|`` over all graphs."""
        return sum(graph.size for graph in self._graphs)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return f"CSRDataset({len(self._graphs)} graphs{name})"
