"""Labeled-graph data model.

Implements the paper's Definition 1: undirected graphs with a label on
every vertex (edge labels are not supported, matching the implementations
the paper benchmarked).  The package provides:

* :class:`~repro.graphs.graph.Graph` — a single graph with dense integer
  vertices and per-vertex labels;
* :class:`~repro.graphs.dataset.GraphDataset` — an ordered collection of
  graphs with stable integer ids (the "transactional" graph database the
  six indexes are built over);
* :mod:`~repro.graphs.statistics` — the dataset characteristics of
  Table 1 (density Eq. 1, average degree Eq. 2, label statistics);
* :mod:`~repro.graphs.io` — a line-oriented text format compatible in
  spirit with the ``.gfd`` files used by Grapes/GGSX;
* :mod:`~repro.graphs.csr` — the immutable flat-array (CSR) graph core
  the hot paths run on by default, with :class:`Graph` kept as the
  mutable builder.
"""

from repro.graphs.csr import CSRDataset, CSRGraph, active_graph_core, as_core_dataset
from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph, GraphError
from repro.graphs.statistics import DatasetStatistics, GraphStatistics, dataset_statistics, graph_statistics

__all__ = [
    "Graph",
    "GraphError",
    "GraphDataset",
    "CSRGraph",
    "CSRDataset",
    "GraphStatistics",
    "DatasetStatistics",
    "active_graph_core",
    "as_core_dataset",
    "graph_statistics",
    "dataset_statistics",
]
