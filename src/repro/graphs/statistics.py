"""Dataset characteristics — the quantities of the paper's Table 1.

For each dataset the paper reports: number of graphs, number of
disconnected graphs, number of distinct labels, and per-graph averages
(node count with standard deviation, edge count, density per Eq. (1),
degree per Eq. (2), distinct labels per graph).  These functions compute
exactly those rows, and are reused by the generator calibration tests to
verify that the real-dataset stand-ins match the published statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph

__all__ = [
    "GraphStatistics",
    "DatasetStatistics",
    "graph_statistics",
    "dataset_statistics",
]


@dataclass(frozen=True, slots=True)
class GraphStatistics:
    """Structural statistics of a single graph."""

    num_vertices: int
    num_edges: int
    density: float
    average_degree: float
    num_distinct_labels: int
    is_connected: bool


@dataclass(frozen=True, slots=True)
class DatasetStatistics:
    """The Table 1 row for a dataset."""

    name: str
    num_graphs: int
    num_disconnected: int
    num_labels: int
    avg_vertices: float
    std_vertices: float
    avg_edges: float
    avg_density: float
    avg_degree: float
    avg_labels_per_graph: float

    def as_row(self) -> dict[str, float | int | str]:
        """Flat dict suitable for table rendering (Table 1 layout)."""
        return {
            "dataset": self.name,
            "#graphs": self.num_graphs,
            "#disconnected": self.num_disconnected,
            "#labels": self.num_labels,
            "avg #nodes": round(self.avg_vertices, 2),
            "stddev #nodes": round(self.std_vertices, 2),
            "avg #edges": round(self.avg_edges, 2),
            "avg density": round(self.avg_density, 4),
            "avg degree": round(self.avg_degree, 2),
            "avg #labels": round(self.avg_labels_per_graph, 2),
        }


def graph_statistics(graph: Graph) -> GraphStatistics:
    """Compute the per-graph statistics bundle."""
    return GraphStatistics(
        num_vertices=graph.order,
        num_edges=graph.size,
        density=graph.density(),
        average_degree=graph.average_degree(),
        num_distinct_labels=len(graph.distinct_labels()),
        is_connected=graph.is_connected(),
    )


def dataset_statistics(dataset: GraphDataset, name: str | None = None) -> DatasetStatistics:
    """Compute the Table 1 row for *dataset*.

    Averages over an empty dataset are reported as zero rather than
    raising, so reports degrade gracefully.
    """
    count = len(dataset)
    if count == 0:
        return DatasetStatistics(
            name=name if name is not None else dataset.name,
            num_graphs=0,
            num_disconnected=0,
            num_labels=0,
            avg_vertices=0.0,
            std_vertices=0.0,
            avg_edges=0.0,
            avg_density=0.0,
            avg_degree=0.0,
            avg_labels_per_graph=0.0,
        )

    vertex_counts = []
    edge_counts = []
    densities = []
    degrees = []
    labels_per_graph = []
    disconnected = 0
    for graph in dataset:
        vertex_counts.append(graph.order)
        edge_counts.append(graph.size)
        densities.append(graph.density())
        degrees.append(graph.average_degree())
        labels_per_graph.append(len(graph.distinct_labels()))
        if not graph.is_connected():
            disconnected += 1

    mean_vertices = sum(vertex_counts) / count
    variance = sum((x - mean_vertices) ** 2 for x in vertex_counts) / count
    return DatasetStatistics(
        name=name if name is not None else dataset.name,
        num_graphs=count,
        num_disconnected=disconnected,
        num_labels=len(dataset.distinct_labels()),
        avg_vertices=mean_vertices,
        std_vertices=math.sqrt(variance),
        avg_edges=sum(edge_counts) / count,
        avg_density=sum(densities) / count,
        avg_degree=sum(degrees) / count,
        avg_labels_per_graph=sum(labels_per_graph) / count,
    )
