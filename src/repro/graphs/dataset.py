"""Transactional graph dataset: the collection the indexes are built over.

The benchmarked systems all operate on a *graph-transaction database* — a
set of many (small to medium) graphs, each with a stable id.  Queries ask
for the ids of all graphs containing the query graph (paper §1).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.graphs.graph import Graph

__all__ = ["GraphDataset"]


class GraphDataset:
    """An ordered, id-stable collection of :class:`Graph` objects.

    Graph ids are dense integers ``0 .. len-1`` assigned at insertion;
    ``dataset[i]`` is the graph with id ``i``.  Every index in
    :mod:`repro.indexes` reports matches as sets of these ids.

    Parameters
    ----------
    graphs:
        Optional initial graphs (ids assigned in iteration order; any
        pre-existing ``graph_id`` is overwritten to keep ids dense).
    name:
        Optional human-readable name (e.g. ``"AIDS-like"``), used by
        reports.
    """

    __slots__ = ("_graphs", "name")

    def __init__(self, graphs: Iterable[Graph] = (), name: str = "") -> None:
        self._graphs: list[Graph] = []
        self.name = name
        for graph in graphs:
            self.add(graph)

    def add(self, graph: Graph) -> int:
        """Append *graph*, assign it the next id, and return that id."""
        graph.graph_id = len(self._graphs)
        self._graphs.append(graph)
        return graph.graph_id

    def __len__(self) -> int:
        return len(self._graphs)

    def __getitem__(self, graph_id: int) -> Graph:
        return self._graphs[graph_id]

    def __iter__(self) -> Iterator[Graph]:
        return iter(self._graphs)

    def ids(self) -> range:
        """All graph ids (dense)."""
        return range(len(self._graphs))

    def all_ids(self) -> set[int]:
        """All graph ids as a fresh mutable set (naive candidate set)."""
        return set(range(len(self._graphs)))

    # ------------------------------------------------------------------
    # aggregate views used by generators / statistics
    # ------------------------------------------------------------------

    def distinct_labels(self) -> set[Hashable]:
        """Union of vertex labels across all graphs."""
        labels: set[Hashable] = set()
        for graph in self._graphs:
            labels.update(graph.distinct_labels())
        return labels

    def total_vertices(self) -> int:
        """Sum of ``|V|`` over all graphs."""
        return sum(graph.order for graph in self._graphs)

    def total_edges(self) -> int:
        """Sum of ``|E|`` over all graphs."""
        return sum(graph.size for graph in self._graphs)

    def subset(self, graph_ids: Iterable[int], name: str = "") -> "GraphDataset":
        """A new dataset containing copies of the given graphs.

        Ids are re-densified in the order given; useful for building
        scaled-down datasets from a larger generated one.
        """
        subset = GraphDataset(name=name or self.name)
        for graph_id in graph_ids:
            subset.add(self._graphs[graph_id].copy())
        return subset

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return f"GraphDataset({len(self._graphs)} graphs{name})"
