"""Transactional graph dataset: the collection the indexes are built over.

The benchmarked systems all operate on a *graph-transaction database* — a
set of many (small to medium) graphs, each with a stable id.  Queries ask
for the ids of all graphs containing the query graph (paper §1).

Besides the in-memory :class:`GraphDataset`, this module defines the
**flat-array packing** the shared-memory arena (:mod:`repro.core.arena`)
ships across process boundaries: every graph's labels and adjacency
lists are concatenated into int64 arrays with prefix-offset tables, so a
whole dataset serializes once into one contiguous buffer and workers
read it back through :class:`PackedDatasetReader` without unpickling
per task.
"""

from __future__ import annotations

import pickle
import struct
from array import array
from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass

from repro.graphs.graph import Graph

__all__ = [
    "DatasetDelta",
    "GraphDataset",
    "PackedDatasetReader",
    "apply_delta",
    "dataset_fingerprint",
    "delta_fingerprint",
    "pack_dataset",
    "removal_remap",
    "unpack_dataset",
]


class GraphDataset:
    """An ordered, id-stable collection of :class:`Graph` objects.

    Graph ids are dense integers ``0 .. len-1`` assigned at insertion;
    ``dataset[i]`` is the graph with id ``i``.  Every index in
    :mod:`repro.indexes` reports matches as sets of these ids.

    Parameters
    ----------
    graphs:
        Optional initial graphs (ids assigned in iteration order; any
        pre-existing ``graph_id`` is overwritten to keep ids dense).
    name:
        Optional human-readable name (e.g. ``"AIDS-like"``), used by
        reports.
    """

    __slots__ = ("_graphs", "name")

    def __init__(self, graphs: Iterable[Graph] = (), name: str = "") -> None:
        self._graphs: list[Graph] = []
        self.name = name
        for graph in graphs:
            self.add(graph)

    def add(self, graph: Graph) -> int:
        """Append *graph*, assign it the next id, and return that id."""
        graph.graph_id = len(self._graphs)
        self._graphs.append(graph)
        return graph.graph_id

    def __len__(self) -> int:
        return len(self._graphs)

    def __getitem__(self, graph_id: int) -> Graph:
        return self._graphs[graph_id]

    def __iter__(self) -> Iterator[Graph]:
        return iter(self._graphs)

    def ids(self) -> range:
        """All graph ids (dense)."""
        return range(len(self._graphs))

    def all_ids(self) -> set[int]:
        """All graph ids as a fresh mutable set (naive candidate set)."""
        return set(range(len(self._graphs)))

    # ------------------------------------------------------------------
    # aggregate views used by generators / statistics
    # ------------------------------------------------------------------

    def distinct_labels(self) -> set[Hashable]:
        """Union of vertex labels across all graphs."""
        labels: set[Hashable] = set()
        for graph in self._graphs:
            labels.update(graph.distinct_labels())
        return labels

    def total_vertices(self) -> int:
        """Sum of ``|V|`` over all graphs."""
        return sum(graph.order for graph in self._graphs)

    def total_edges(self) -> int:
        """Sum of ``|E|`` over all graphs."""
        return sum(graph.size for graph in self._graphs)

    def subset(self, graph_ids: Iterable[int], name: str = "") -> "GraphDataset":
        """A new dataset containing copies of the given graphs.

        Ids are re-densified in the order given; useful for building
        scaled-down datasets from a larger generated one.
        """
        subset = GraphDataset(name=name or self.name)
        for graph_id in graph_ids:
            subset.add(self._graphs[graph_id].copy())
        return subset

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return f"GraphDataset({len(self._graphs)} graphs{name})"


# ----------------------------------------------------------------------
# dynamic datasets: deltas, application, and delta identity
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DatasetDelta:
    """A canonical batch of graph insertions and deletions.

    ``removed`` holds ids *in the pre-delta dataset*; ``added`` holds
    new graphs appended after the survivors.  The form is canonical:
    removed ids are normalized to a sorted, duplicate-free tuple and
    added graphs to a tuple, so two logically equal deltas compare and
    digest (:func:`delta_fingerprint`) identically regardless of how
    they were assembled.
    """

    #: Graphs to append (ids assigned after the surviving graphs).
    added: tuple[Graph, ...] = ()
    #: Pre-delta ids of graphs to remove (normalized sorted unique).
    removed: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        added = tuple(self.added)
        removed = tuple(self.removed)
        for graph_id in removed:
            if not isinstance(graph_id, int) or isinstance(graph_id, bool):
                raise TypeError(f"removed id {graph_id!r} is not an int")
            if graph_id < 0:
                raise ValueError(f"removed id {graph_id} is negative")
        if len(set(removed)) != len(removed):
            raise ValueError("removed ids contain duplicates")
        object.__setattr__(self, "added", added)
        object.__setattr__(self, "removed", tuple(sorted(removed)))

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)

    def __repr__(self) -> str:
        return (
            f"DatasetDelta(+{len(self.added)} graph(s), "
            f"-{len(self.removed)} id(s))"
        )


def _copied_graph(graph) -> Graph:
    """A fresh dict-core copy of *graph* (handles CSR hosts too).

    :func:`apply_delta` never aliases its inputs: ``GraphDataset.add``
    overwrites ``graph_id`` in place, so sharing Graph objects between
    the old and new datasets would corrupt the old one's ids.
    """
    copy = getattr(graph, "copy", None)
    if copy is not None:
        return copy()
    return Graph.from_adjacency(
        graph.labels,
        [list(graph.neighbors(v)) for v in graph.vertices()],
    )


def apply_delta(
    dataset: GraphDataset, delta: DatasetDelta, name: str = ""
) -> GraphDataset:
    """The post-delta dataset: survivors (re-densified, in id order)
    followed by the added graphs.

    Pure: returns a new dataset of graph *copies* and never mutates
    *dataset* or the graphs inside *delta*.  The survivor copies
    preserve adjacency iteration order (see ``Graph.from_adjacency``),
    so a cold build over the result is byte-identical to one over any
    equally-derived dataset — the property the incremental-maintenance
    harness (``tests/test_incremental.py``) pins.
    """
    for graph_id in delta.removed:
        if graph_id >= len(dataset):
            raise ValueError(
                f"removed id {graph_id} out of range for "
                f"{len(dataset)}-graph dataset"
            )
    removed = set(delta.removed)
    result = GraphDataset(name=name or dataset.name)
    for graph_id in range(len(dataset)):
        if graph_id not in removed:
            result.add(_copied_graph(dataset[graph_id]))
    for graph in delta.added:
        result.add(_copied_graph(graph))
    return result


def delta_fingerprint(delta: DatasetDelta) -> int:
    """A representation-independent 64-bit digest of a delta.

    Mirrors :func:`dataset_fingerprint`'s canonical form (labels plus
    sorted edge lists) for the added graphs, so equal deltas digest
    alike across pickle and ``.gfd`` round trips.  Combined with a
    parent artifact address, this keys updated-index lineage in
    :mod:`repro.indexes.store`.
    """
    import hashlib

    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(repr(delta.removed).encode("utf-8"))
    hasher.update(repr(len(delta.added)).encode("utf-8"))
    for graph in delta.added:
        labels = tuple(graph.label(v) for v in graph.vertices())
        edges: list[tuple[int, int]] = []
        for v in graph.vertices():
            edges.extend((v, w) for w in graph.neighbors(v) if w >= v)
        edges.sort()
        hasher.update(repr((graph.order, labels, edges)).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "little")


def removal_remap(num_graphs: int, removed: Iterable[int]) -> dict[int, int]:
    """Old-id → new-id mapping for the survivors of a removal.

    Removed ids are absent from the mapping; surviving ids map to their
    re-densified position in the post-delta dataset.  The incremental
    index implementations use this to rewrite their per-graph postings.
    """
    dropped = set(removed)
    remap: dict[int, int] = {}
    next_id = 0
    for graph_id in range(num_graphs):
        if graph_id not in dropped:
            remap[graph_id] = next_id
            next_id += 1
    return remap


# ----------------------------------------------------------------------
# flat-array packing (the shared-memory arena's wire format)
# ----------------------------------------------------------------------

#: Format tag; bump when the layout below changes.
_PACK_MAGIC = b"RPRODS01"
#: G, V, A (= 2|E| adjacency entries), label-table blob length, name length.
_PACK_HEADER = "<5q"
_HEADER_BYTES = len(_PACK_MAGIC) + struct.calcsize(_PACK_HEADER)

# Layout after the header (everything int64, little-endian):
#   vstarts : G+1   prefix offsets of each graph's vertices
#   astarts : V+1   prefix offsets of each vertex's adjacency run
#   labels  : V     per-vertex indices into the pickled label table
#   adj     : A     graph-local neighbor ids, per vertex, in the order
#                   the source set iterates (so reconstruction matches a
#                   pickle round-trip exactly — see Graph.from_adjacency)
# then the pickled label table and the UTF-8 dataset name.


def pack_dataset(dataset: GraphDataset) -> bytes:
    """Serialize *dataset* into one flat, shareable byte buffer.

    Labels may be any picklable hashable: they are deduplicated into a
    table (pickled once) and vertices store table indices.  The packing
    is deterministic for a given dataset *object*; content identity
    across representations is :func:`dataset_fingerprint`'s job.
    """
    vstarts = array("q", [0])
    astarts = array("q", [0])
    labels = array("q")
    adjacency = array("q")
    label_index: dict[Hashable, int] = {}
    for graph in dataset:
        for v in graph.vertices():
            label = graph.label(v)
            index = label_index.setdefault(label, len(label_index))
            labels.append(index)
            for w in graph.neighbors(v):
                adjacency.append(w)
            astarts.append(len(adjacency))
        vstarts.append(len(labels))
    label_blob = pickle.dumps(tuple(label_index), protocol=pickle.HIGHEST_PROTOCOL)
    name_blob = dataset.name.encode("utf-8")

    ints = vstarts.tobytes() + astarts.tobytes() + labels.tobytes() + adjacency.tobytes()
    header = _PACK_MAGIC + struct.pack(
        _PACK_HEADER,
        len(dataset),
        len(labels),
        len(adjacency),
        len(label_blob),
        len(name_blob),
    )
    return b"".join((header, ints, label_blob, name_blob))


def unpack_dataset(buffer) -> GraphDataset:
    """Rebuild a :class:`GraphDataset` from a packed buffer.

    The inverse of :func:`pack_dataset`; graph ids are re-assigned
    densely in packed order (which is the original id order).
    """
    with PackedDatasetReader(buffer) as reader:
        return GraphDataset(reader.graphs(), name=reader.dataset_name)


def dataset_fingerprint(dataset: GraphDataset) -> int:
    """A representation-independent 64-bit content digest.

    The one notion of dataset identity the whole system shares: it keys
    shared-memory arena segments and worker caches
    (:mod:`repro.core.arena`), addresses index artifacts
    (:mod:`repro.indexes.store`), and is recorded in persisted index
    files and shard manifests.

    **Canonical on purpose**: the hash covers labels and *sorted* edge
    lists, so two datasets with equal graphs digest alike even when
    their adjacency sets iterate in different orders — as happens
    across pickle round trips, ``.gfd`` file round trips, and
    shared-memory reconstruction.  (The packed byte form preserves
    iteration order for reconstruction fidelity and is therefore *not*
    a usable content identity; hashing it would give one dataset a
    different address in every process that re-serialized it.)
    """
    import hashlib

    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(repr(len(dataset)).encode("utf-8"))
    for graph in dataset:
        labels = tuple(graph.label(v) for v in graph.vertices())
        edges: list[tuple[int, int]] = []
        for v in graph.vertices():
            edges.extend((v, w) for w in graph.neighbors(v) if w >= v)
        edges.sort()
        hasher.update(repr((graph.order, labels, edges)).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "little")


class PackedDatasetReader:
    """Zero-copy view over a buffer written by :func:`pack_dataset`.

    Casts the buffer's int64 sections into a :class:`memoryview` and
    materializes :class:`Graph` objects straight out of it — no
    intermediate bytes objects, no unpickling beyond the (small) label
    table.  This is how arena workers read a shared-memory segment.

    Use as a context manager (or call :meth:`close`) so the underlying
    buffer can be released — shared memory cannot unmap while views are
    alive.  Trailing bytes beyond the packed payload are ignored, which
    tolerates page-rounded shared-memory segments.
    """

    def __init__(self, buffer) -> None:
        base = memoryview(buffer)
        self._views: list[memoryview] = [base]
        magic = bytes(base[: len(_PACK_MAGIC)])
        if magic != _PACK_MAGIC:
            self.close()
            raise ValueError(f"not a packed dataset (magic {magic!r})")
        g, v, a, label_len, name_len = struct.unpack_from(
            _PACK_HEADER, base, len(_PACK_MAGIC)
        )
        ints_count = (g + 1) + (v + 1) + v + a
        ints_end = _HEADER_BYTES + 8 * ints_count
        if len(base) < ints_end + label_len + name_len:
            self.close()
            raise ValueError("packed dataset buffer is truncated")
        ints = base[_HEADER_BYTES:ints_end].cast("q")
        self._views.append(ints)
        self._ints = ints
        # Section offsets inside the one int64 view.
        self._vstarts = 0
        self._astarts = g + 1
        self._labels = self._astarts + v + 1
        self._adj = self._labels + v
        self.num_graphs = g
        self.total_vertices = v
        self.total_edges = a // 2
        self._label_table: tuple[Hashable, ...] = (
            pickle.loads(bytes(base[ints_end : ints_end + label_len]))
            if label_len
            else ()
        )
        self.dataset_name = bytes(
            base[ints_end + label_len : ints_end + label_len + name_len]
        ).decode("utf-8")

    def graph(self, index: int) -> Graph:
        """Materialize graph *index* (packed order) from the buffer."""
        if not (0 <= index < self.num_graphs):
            raise IndexError(f"graph index {index} out of range")
        ints = self._ints
        v0 = ints[self._vstarts + index]
        v1 = ints[self._vstarts + index + 1]
        labels = tuple(
            self._label_table[ints[self._labels + v]] for v in range(v0, v1)
        )
        neighbors = []
        for v in range(v0, v1):
            a0 = ints[self._astarts + v]
            a1 = ints[self._astarts + v + 1]
            neighbors.append([ints[self._adj + k] for k in range(a0, a1)])
        return Graph.from_adjacency(labels, neighbors)

    def graphs(self) -> Iterator[Graph]:
        """Yield every graph in packed (= original id) order."""
        return (self.graph(i) for i in range(self.num_graphs))

    def close(self) -> None:
        """Release every memoryview so the buffer can be unmapped."""
        while self._views:
            self._views.pop().release()

    def __enter__(self) -> "PackedDatasetReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
