"""The vertex-labeled undirected graph (paper Definition 1).

Vertices are dense integers ``0 .. n-1``; every vertex carries exactly
one hashable label; edges are unordered pairs without duplicates or
self-loops.  This mirrors the graph model shared by all six benchmarked
systems (§2.1: "undirected graphs with labels on vertices").

The class is optimized for the access patterns of the indexing
algorithms: label lookup, neighbor iteration, adjacency tests, and
grouping vertices by label — all O(1)/O(degree).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence

__all__ = ["Graph", "GraphError"]

Label = Hashable
Edge = tuple[int, int]


class GraphError(ValueError):
    """Raised on structurally invalid graph operations."""


class Graph:
    """An undirected graph with one label per vertex.

    Parameters
    ----------
    labels:
        Sequence assigning ``labels[v]`` to vertex ``v``; its length
        fixes the vertex count.
    edges:
        Iterable of ``(u, v)`` pairs.  Order within a pair is
        irrelevant; duplicates and self-loops raise :class:`GraphError`.
    graph_id:
        Optional stable identifier (assigned by
        :class:`~repro.graphs.dataset.GraphDataset` on insertion).

    Examples
    --------
    >>> g = Graph(["C", "C", "O"], [(0, 1), (1, 2)])
    >>> g.order, g.size
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    >>> g.label(2)
    'O'
    """

    __slots__ = (
        "_labels",
        "_adj",
        "_size",
        "graph_id",
        "_neighbor_cache",
        "_label_groups",
    )

    def __init__(
        self,
        labels: Sequence[Label],
        edges: Iterable[Edge] = (),
        graph_id: int | None = None,
    ) -> None:
        self._labels: tuple[Label, ...] = tuple(labels)
        self._adj: list[set[int]] = [set() for _ in self._labels]
        self._size = 0
        self.graph_id = graph_id
        self._neighbor_cache: list[tuple[int, ...] | None] | None = None
        self._label_groups: dict[Label, tuple[int, ...]] | None = None
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge ``{u, v}``.

        Raises
        ------
        GraphError
            If either endpoint is out of range, ``u == v`` (self-loop),
            or the edge already exists (multi-edge).
        """
        n = len(self._labels)
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) out of range for {n} vertices")
        if u == v:
            raise GraphError(f"self-loop on vertex {u} is not allowed")
        if v in self._adj[u]:
            raise GraphError(f"duplicate edge ({u}, {v})")
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._size += 1
        cache = self._neighbor_cache
        if cache is not None:
            cache[u] = None
            cache[v] = None

    @classmethod
    def from_edge_list(
        cls,
        num_vertices: int,
        label_of: Sequence[Label] | Label,
        edges: Iterable[Edge],
        graph_id: int | None = None,
    ) -> "Graph":
        """Build a graph from a vertex count and edge list.

        *label_of* may be a sequence (one label per vertex) or a single
        label applied uniformly — convenient in tests.
        """
        if isinstance(label_of, (str, bytes)) or not isinstance(label_of, Sequence):
            labels: Sequence[Label] = [label_of] * num_vertices
        else:
            labels = label_of
            if len(labels) != num_vertices:
                raise GraphError(
                    f"expected {num_vertices} labels, got {len(labels)}"
                )
        return cls(labels, edges, graph_id=graph_id)

    @classmethod
    def from_adjacency(
        cls,
        labels: Sequence[Label],
        neighbors: Sequence[Sequence[int]],
        graph_id: int | None = None,
    ) -> "Graph":
        """Build a graph directly from per-vertex neighbor lists.

        ``neighbors[v]`` lists the vertices adjacent to ``v``; the lists
        must be symmetric (``u in neighbors[v]`` iff ``v in
        neighbors[u]``), duplicate- and self-loop-free.  Unlike feeding
        an edge list to the constructor, this rebuilds each adjacency
        set by inserting members in the order given — the same way
        unpickling restores a set — so a graph round-tripped through the
        flat-array packing (:func:`repro.graphs.dataset.pack_dataset`)
        behaves exactly like one round-tripped through pickle, down to
        set iteration order.
        """
        graph = cls(labels, graph_id=graph_id)
        n = len(graph._labels)
        if len(neighbors) != n:
            raise GraphError(
                f"expected {n} neighbor lists, got {len(neighbors)}"
            )
        adjacency: list[set[int]] = []
        total = 0
        for v, row in enumerate(neighbors):
            members = set(row)
            if len(members) != len(row):
                raise GraphError(f"duplicate neighbor in row of vertex {v}")
            if v in members:
                raise GraphError(f"self-loop on vertex {v} is not allowed")
            for w in row:
                if not (0 <= w < n):
                    raise GraphError(
                        f"neighbor {w} of vertex {v} out of range for {n} vertices"
                    )
            adjacency.append(members)
            total += len(members)
        if total % 2:
            raise GraphError("neighbor lists are not symmetric")
        for v, members in enumerate(adjacency):
            for w in members:
                if v not in adjacency[w]:
                    raise GraphError(f"asymmetric edge ({v}, {w})")
        graph._adj = adjacency
        graph._size = total // 2
        return graph

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of vertices, ``|V|``."""
        return len(self._labels)

    @property
    def size(self) -> int:
        """Number of edges, ``|E|``."""
        return self._size

    def label(self, v: int) -> Label:
        """The label of vertex *v*."""
        return self._labels[v]

    @property
    def labels(self) -> tuple[Label, ...]:
        """Tuple of labels indexed by vertex."""
        return self._labels

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Tuple of vertices adjacent to *v*, in adjacency-set
        iteration order (cached; invalidated by :meth:`add_edge`).

        Returning an immutable snapshot — instead of the live internal
        set — means no caller can corrupt shared adjacency by mutating
        what it was handed; the iteration order still matches the
        internal set exactly, which the flat-array packing relies on.
        """
        cache = self._neighbor_cache
        if cache is None:
            cache = self._neighbor_cache = [None] * len(self._labels)
        row = cache[v]
        if row is None:
            row = cache[v] = tuple(self._adj[v])
        return row

    def neighbor_set(self, v: int) -> set[int]:
        """The internal adjacency set of *v* for read-only set algebra
        (the matchers intersect candidate sets against it).  Callers
        must not mutate it; everyone else should use :meth:`neighbors`.
        """
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Number of edges incident to *v*."""
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the undirected edge ``{u, v}`` exists."""
        return v in self._adj[u]

    def vertices(self) -> range:
        """Iterable over all vertex ids."""
        return range(len(self._labels))

    def edges(self) -> Iterator[Edge]:
        """Yield each edge exactly once as ``(u, v)`` with ``u < v``."""
        for u, neighbors in enumerate(self._adj):
            for v in neighbors:
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # derived metrics (paper Definitions 4 and 5)
    # ------------------------------------------------------------------

    def density(self) -> float:
        """Graph density per Eq. (1): ``2|E| / (|V| (|V|-1))``."""
        n = self.order
        if n < 2:
            return 0.0
        return 2.0 * self._size / (n * (n - 1))

    def average_degree(self) -> float:
        """Average vertex degree per Eq. (2): ``2|E| / |V|``."""
        n = self.order
        if n == 0:
            return 0.0
        return 2.0 * self._size / n

    def distinct_labels(self) -> set[Label]:
        """The set of labels appearing on at least one vertex."""
        return set(self._labels)

    def vertices_by_label(self) -> dict[Label, list[int]]:
        """Map each label to the (sorted) list of vertices carrying it."""
        groups: dict[Label, list[int]] = {}
        for v, label in enumerate(self._labels):
            groups.setdefault(label, []).append(v)
        return groups

    def candidate_vertices(self, label: Label, min_degree: int = 0) -> tuple[int, ...]:
        """Vertices with *label* and degree ≥ *min_degree*, ascending.

        The dict-core twin of
        :meth:`repro.graphs.csr.CSRGraph.candidate_vertices`, so the
        matchers' ``getattr`` probe finds the same initial-domain API
        on both cores.  The by-label grouping is computed once per
        graph and cached — labels are fixed at construction, so the
        cache never invalidates — which hoists the per-(query, data)
        ``vertices_by_label()`` rebuild the matchers' fallback paths
        used to pay.  Degrees grow under :meth:`add_edge`, so the
        degree filter runs per call; vertices it drops would fail the
        matchers' per-vertex degree feasibility checks anyway, making
        the filter answer-preserving.
        """
        groups = self._label_groups
        if groups is None:
            fresh: dict[Label, list[int]] = {}
            for v, lbl in enumerate(self._labels):
                fresh.setdefault(lbl, []).append(v)
            groups = self._label_groups = {
                lbl: tuple(members) for lbl, members in fresh.items()
            }
        members = groups.get(label)
        if members is None:
            return ()
        if min_degree <= 0:
            return members
        return tuple(v for v in members if len(self._adj[v]) >= min_degree)

    def label_histogram(self) -> dict[Label, int]:
        """Map each label to the number of vertices carrying it."""
        histogram: dict[Label, int] = {}
        for label in self._labels:
            histogram[label] = histogram.get(label, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # connectivity and subgraphs
    # ------------------------------------------------------------------

    def connected_components(self) -> list[list[int]]:
        """Vertex lists of the connected components, each sorted."""
        seen = [False] * self.order
        components: list[list[int]] = []
        for start in self.vertices():
            if seen[start]:
                continue
            component = []
            stack = [start]
            seen[start] = True
            while stack:
                v = stack.pop()
                component.append(v)
                for w in self._adj[v]:
                    if not seen[w]:
                        seen[w] = True
                        stack.append(w)
            component.sort()
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """True iff the graph has exactly one connected component.

        The empty graph is considered disconnected, matching the
        convention used when counting "disconnected graphs" in Table 1.
        """
        if self.order == 0:
            return False
        return len(self.connected_components()) == 1

    def induced_subgraph(self, vertices: Iterable[int]) -> tuple["Graph", list[int]]:
        """Return the subgraph induced by *vertices* plus the vertex map.

        The result's vertex ``i`` corresponds to ``mapping[i]`` in this
        graph.  Edges are those of this graph with both endpoints in
        *vertices*.
        """
        mapping = sorted(set(vertices))
        index_of = {v: i for i, v in enumerate(mapping)}
        labels = [self._labels[v] for v in mapping]
        sub = Graph(labels)
        for v in mapping:
            for w in self._adj[v]:
                if v < w and w in index_of:
                    sub.add_edge(index_of[v], index_of[w])
        return sub, mapping

    def relabeled(self, permutation: Sequence[int]) -> "Graph":
        """Return an isomorphic copy with vertices renumbered.

        ``permutation[v]`` gives the new id of old vertex ``v``; it must
        be a permutation of ``0..n-1``.  Used heavily by property tests
        to assert canonical-form invariance.
        """
        n = self.order
        if sorted(permutation) != list(range(n)):
            raise GraphError("relabeled() requires a permutation of 0..n-1")
        labels: list[Label] = [None] * n  # type: ignore[list-item]
        for old, new in enumerate(permutation):
            labels[new] = self._labels[old]
        edges = [(permutation[u], permutation[v]) for u, v in self.edges()]
        return Graph(labels, edges, graph_id=self.graph_id)

    def copy(self) -> "Graph":
        """An independent deep copy (labels are shared, structure is not).

        Routed through :meth:`from_adjacency` so each adjacency set is
        rebuilt by inserting members in the original's iteration order
        — the parity contract that makes a copy behave exactly like a
        pickle round trip.  (Rebuilding from ``edges()``, as this
        method once did, yields equal sets with *different* iteration
        orders, which breaks byte-identity of anything serialized from
        the copy.)
        """
        return Graph.from_adjacency(
            self._labels,
            [tuple(row) for row in self._adj],
            graph_id=self.graph_id,
        )

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------

    def __getstate__(self):
        """Pickle labels/adjacency/size/id — never the neighbor cache.

        Unpickling rebuilds each adjacency set by re-inserting members,
        which generally lands them in a *different* iteration order than
        the original (fresh table vs. incrementally grown one).  A
        cached tuple snapshotted from the original would therefore be
        stale on the round-tripped graph; the cache is process-local by
        construction.
        """
        return (self._labels, self._adj, self._size, self.graph_id)

    def __setstate__(self, state) -> None:
        self._labels, self._adj, self._size, self.graph_id = state
        self._neighbor_cache = None
        self._label_groups = None

    # ------------------------------------------------------------------
    # comparisons / hashing-friendly forms
    # ------------------------------------------------------------------

    def signature(self) -> tuple:
        """A cheap equality signature: (sorted labels, sorted label edges).

        Two graphs with different signatures are certainly not
        isomorphic; equal signatures do NOT imply isomorphism.
        """
        label_edges = sorted(
            tuple(sorted((self._labels[u], self._labels[v]), key=repr))
            for u, v in self.edges()
        )
        return (tuple(sorted(self._labels, key=repr)), tuple(label_edges))

    def __eq__(self, other: object) -> bool:
        """Structural equality: same labels and same edge set (same ids)."""
        if not isinstance(other, Graph):
            return NotImplemented
        return self._labels == other._labels and self._adj == other._adj

    def __hash__(self) -> int:  # structural, order-sensitive
        return hash((self._labels, frozenset(frozenset(e) for e in self.edges())))

    def __repr__(self) -> str:
        gid = f", id={self.graph_id}" if self.graph_id is not None else ""
        return f"Graph(|V|={self.order}, |E|={self.size}{gid})"
