"""Workload characterization and selectivity analysis.

The paper observes that query behaviour depends on selectivity (how
many graphs contain the query) and on the interaction between query
size and dataset structure (§5.2.2, Fig. 4).  This module quantifies a
workload before and after running it:

* :func:`characterize_queries` — structural statistics of the query
  graphs themselves (sizes, densities, label usage);
* :func:`selectivity_profile` — exact per-query selectivity via the
  naive oracle, with distribution summary;
* :func:`filtering_profile` — how an index's candidate sets relate to
  the true answers across a workload (per-query precision, the paper's
  FP ratio, and the candidate-size distribution).

These are the tools a user needs to understand *why* one method wins
on their data, rather than just which.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.indexes.base import GraphIndex
from repro.indexes.naive import NaiveIndex
from repro.utils.budget import Budget

__all__ = [
    "QuerySetStats",
    "SelectivityProfile",
    "FilteringProfile",
    "characterize_queries",
    "selectivity_profile",
    "filtering_profile",
]


@dataclass(frozen=True, slots=True)
class QuerySetStats:
    """Structural statistics of a query workload."""

    num_queries: int
    avg_vertices: float
    avg_edges: float
    avg_density: float
    num_distinct_labels: int
    num_connected: int

    @property
    def all_connected(self) -> bool:
        return self.num_connected == self.num_queries


@dataclass(frozen=True, slots=True)
class SelectivityProfile:
    """Distribution of true answer-set sizes across a workload."""

    num_queries: int
    num_graphs: int
    #: Per-query answer counts, in workload order.
    answer_counts: tuple[int, ...]

    @property
    def avg_selectivity(self) -> float:
        """Mean fraction of the dataset matching a query."""
        if not self.answer_counts or self.num_graphs == 0:
            return 0.0
        return sum(self.answer_counts) / (len(self.answer_counts) * self.num_graphs)

    @property
    def num_empty(self) -> int:
        """Queries with no answers at all."""
        return sum(1 for count in self.answer_counts if count == 0)

    def percentile(self, fraction: float) -> int:
        """Answer count at the given percentile (nearest-rank)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        ordered = sorted(self.answer_counts)
        if not ordered:
            return 0
        rank = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[rank]


@dataclass(frozen=True, slots=True)
class FilteringProfile:
    """How an index's filtering behaves across a workload."""

    method: str
    num_queries: int
    #: (candidates, answers) per query, in workload order.
    pairs: tuple[tuple[int, int], ...]

    @property
    def avg_candidates(self) -> float:
        if not self.pairs:
            return 0.0
        return sum(c for c, _ in self.pairs) / len(self.pairs)

    @property
    def false_positive_ratio(self) -> float:
        """Eq. (3) over the workload (empty candidate sets contribute 0)."""
        if not self.pairs:
            return 0.0
        total = sum(
            (candidates - answers) / candidates if candidates else 0.0
            for candidates, answers in self.pairs
        )
        return total / len(self.pairs)

    @property
    def perfect_queries(self) -> int:
        """Queries where filtering produced zero false positives."""
        return sum(1 for candidates, answers in self.pairs if candidates == answers)


def characterize_queries(queries: Sequence[Graph]) -> QuerySetStats:
    """Structural statistics of the workload's query graphs."""
    if not queries:
        return QuerySetStats(0, 0.0, 0.0, 0.0, 0, 0)
    labels: set = set()
    for query in queries:
        labels.update(query.distinct_labels())
    count = len(queries)
    return QuerySetStats(
        num_queries=count,
        avg_vertices=sum(q.order for q in queries) / count,
        avg_edges=sum(q.size for q in queries) / count,
        avg_density=sum(q.density() for q in queries) / count,
        num_distinct_labels=len(labels),
        num_connected=sum(1 for q in queries if q.is_connected()),
    )


def selectivity_profile(
    dataset: GraphDataset,
    queries: Sequence[Graph],
    budget: Budget | None = None,
) -> SelectivityProfile:
    """Exact selectivity of every query, via the naive oracle."""
    oracle = NaiveIndex()
    oracle.build(dataset)
    counts = []
    for query in queries:
        if budget is not None:
            budget.check()
        counts.append(len(oracle.verify(query, dataset.all_ids(), budget=budget)))
    return SelectivityProfile(
        num_queries=len(queries),
        num_graphs=len(dataset),
        answer_counts=tuple(counts),
    )


def filtering_profile(
    index: GraphIndex,
    queries: Sequence[Graph],
    budget: Budget | None = None,
) -> FilteringProfile:
    """Candidate-vs-answer behaviour of a built index over a workload."""
    pairs = []
    for query in queries:
        result = index.query(query, budget=budget)
        pairs.append((len(result.candidates), len(result.answers)))
    return FilteringProfile(
        method=index.name,
        num_queries=len(queries),
        pairs=tuple(pairs),
    )
