"""Validation and sealing of ``BENCH_*.json`` trajectory records.

The repo's performance trajectory is a series of benchmark records
checked in at the repo root — one per PR that moved a number
(``BENCH_pr6.json`` for the graph-core matcher, ``BENCH_pr7/pr8.json``
for the serve daemon, ``BENCH_pr9.json`` for the CSR query hot path).
CI re-derives fresh records every run; the checked-in ones are the
claims.  A claim nobody can verify invites drift: a hand-edited
speedup, a truncated file, a record whose KPI verdicts no longer match
its own metrics.  This module is the gate:

* :func:`bench_validate` checks one parsed record against the schema
  family it claims (required keys, types, internal consistency —
  derived speedups must match their operand timings, KPI verdicts must
  match their own actuals) and raises :class:`BenchValidationError`
  with a pointed message otherwise.
* :func:`bench_seal` stamps a record with a ``record_digest`` — a
  BLAKE2b hash over the canonical JSON of everything *except* the
  digest itself.  Validation recomputes it whenever present, so any
  post-hoc edit to a sealed record is detected even when it keeps the
  numbers self-consistent.  Legacy records (pr6–pr8) predate sealing
  and pass without a digest; new record kinds require one.

``repro report`` recognizes bench records and validates before
rendering, and the CI workflow validates every ``BENCH_*.json`` at the
repo root on every run.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path

__all__ = [
    "BenchValidationError",
    "bench_seal",
    "bench_validate",
    "is_bench_record",
    "record_digest",
    "render_bench_summary",
    "validate_bench_file",
]

#: Relative slack when re-deriving a speedup from its operand timings:
#: records round speedups for display, so exact equality is too strict,
#: but a hand-edited "2x faster" over timings that say 1.1x must fail.
_SPEEDUP_RTOL = 0.02

#: Serve-bench schema tags this validator understands.
_SERVE_SCHEMAS = ("repro-serve-bench-v1", "repro-serve-bench-v2")

#: ``"bench"``-tagged micro-benchmark kinds and whether a seal
#: (``record_digest``) is mandatory.  pr6 predates sealing.
_MICRO_KINDS = {
    "graph-core-matcher": {"sealed": False},
    "csr-query-hot-path": {"sealed": True},
}


class BenchValidationError(ValueError):
    """A ``BENCH_*.json`` record is malformed, inconsistent, or tampered."""


def is_bench_record(document) -> bool:
    """True when *document* claims to be a benchmark record this module
    validates (as opposed to a sweep, manifest, or anything else)."""
    if not isinstance(document, dict):
        return False
    if document.get("bench") in _MICRO_KINDS:
        return True
    return document.get("schema") in _SERVE_SCHEMAS


def record_digest(record: dict) -> str:
    """BLAKE2b digest over the canonical JSON of *record* minus any
    ``record_digest`` field — the quantity :func:`bench_seal` stamps
    and :func:`bench_validate` recomputes."""
    body = {key: value for key, value in record.items() if key != "record_digest"}
    canonical = json.dumps(
        body, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def bench_seal(record: dict) -> dict:
    """Return *record* with a fresh ``record_digest`` stamped in."""
    sealed = dict(record)
    sealed.pop("record_digest", None)
    sealed["record_digest"] = record_digest(sealed)
    return sealed


def _fail(source: str, message: str) -> BenchValidationError:
    prefix = f"{source}: " if source else ""
    return BenchValidationError(f"{prefix}{message}")


def _require(record: dict, keys: tuple[str, ...], source: str, kind: str) -> None:
    missing = [key for key in keys if key not in record]
    if missing:
        raise _fail(
            source,
            f"{kind} record is missing required field(s): {', '.join(missing)}",
        )


def _number(record: dict, key: str, source: str, minimum: float = 0.0) -> float:
    value = record[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(source, f"field {key!r} must be a number, got {value!r}")
    if not math.isfinite(value):
        raise _fail(source, f"field {key!r} must be finite, got {value!r}")
    if value < minimum:
        raise _fail(source, f"field {key!r} must be >= {minimum:g}, got {value!r}")
    return float(value)


def _count(record: dict, key: str, source: str, minimum: int = 0) -> int:
    value = record[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(source, f"field {key!r} must be an integer, got {value!r}")
    if value < minimum:
        raise _fail(source, f"field {key!r} must be >= {minimum}, got {value!r}")
    return value


def _check_speedup(
    record: dict, speedup_key: str, slow_key: str, fast_key: str, source: str
) -> None:
    """A recorded speedup must be the ratio of its own operand timings."""
    slow = _number(record, slow_key, source)
    fast = _number(record, fast_key, source)
    claimed = _number(record, speedup_key, source)
    if fast <= 0.0:
        raise _fail(source, f"field {fast_key!r} must be positive, got {fast!r}")
    derived = slow / fast
    if abs(claimed - derived) > _SPEEDUP_RTOL * max(derived, 1.0):
        raise _fail(
            source,
            f"field {speedup_key!r} is {claimed:g} but "
            f"{slow_key}/{fast_key} derives {derived:.3f} — record was "
            "edited or mis-assembled",
        )


def _check_digest(record: dict, source: str, required: bool) -> None:
    stamped = record.get("record_digest")
    if stamped is None:
        if required:
            raise _fail(
                source,
                "record kind requires a record_digest seal and has none",
            )
        return
    if not isinstance(stamped, str):
        raise _fail(source, f"record_digest must be a string, got {stamped!r}")
    expected = record_digest(record)
    if stamped != expected:
        raise _fail(
            source,
            f"record_digest mismatch: stamped {stamped} but content "
            f"hashes to {expected} — record was edited after sealing",
        )


def _validate_kpis(record: dict, source: str) -> None:
    kpis = record.get("kpis")
    if not isinstance(kpis, list):
        raise _fail(source, f"field 'kpis' must be a list, got {type(kpis).__name__}")
    verdicts = []
    for slot, entry in enumerate(kpis):
        if not isinstance(entry, dict):
            raise _fail(source, f"kpis[{slot}] must be an object, got {entry!r}")
        for key in ("kpi", "actual", "passed"):
            if key not in entry:
                raise _fail(source, f"kpis[{slot}] is missing field {key!r}")
        spec = entry["kpi"]
        if not isinstance(spec, str):
            raise _fail(source, f"kpis[{slot}].kpi must be a string, got {spec!r}")
        actual = entry["actual"]
        if isinstance(actual, bool) or not isinstance(actual, (int, float)):
            raise _fail(
                source, f"kpis[{slot}].actual must be a number, got {actual!r}"
            )
        passed = entry["passed"]
        if not isinstance(passed, bool):
            raise _fail(
                source, f"kpis[{slot}].passed must be a boolean, got {passed!r}"
            )
        verdicts.append(passed)
        # The KPI string carries its own contract ("q50_ms <= 2000");
        # replay it against the recorded actual and the recorded metric.
        parts = spec.split()
        if len(parts) == 3 and parts[1] in ("<=", ">="):
            metric, op, raw_limit = parts
            try:
                limit = float(raw_limit)
            except ValueError:
                raise _fail(source, f"kpis[{slot}].kpi has bad limit {raw_limit!r}")
            holds = actual <= limit if op == "<=" else actual >= limit
            if holds != passed:
                raise _fail(
                    source,
                    f"kpis[{slot}] claims passed={passed} but "
                    f"'{spec}' with actual {actual:g} evaluates to "
                    f"{holds} — verdict was edited",
                )
            recorded = record.get(metric)
            if isinstance(recorded, (int, float)) and not isinstance(
                recorded, bool
            ):
                if not math.isclose(
                    float(recorded), float(actual), rel_tol=1e-9, abs_tol=1e-9
                ):
                    raise _fail(
                        source,
                        f"kpis[{slot}] actual {actual!r} disagrees with "
                        f"recorded metric {metric}={recorded!r} — record "
                        "was edited",
                    )
    if "passed" in record:
        if not isinstance(record["passed"], bool):
            raise _fail(
                source, f"field 'passed' must be a boolean, got {record['passed']!r}"
            )
        if record["passed"] != all(verdicts):
            raise _fail(
                source,
                f"field 'passed' is {record['passed']} but the KPI "
                f"verdicts conjoin to {all(verdicts)} — record was edited",
            )


def _validate_serve(record: dict, source: str) -> None:
    schema = record["schema"]
    required = (
        "scenario",
        "method",
        "clients",
        "requests",
        "q50_ms",
        "q90_ms",
        "q99_ms",
        "mean_ms",
        "max_ms",
        "qps",
        "errors",
        "seconds",
        "kpis",
    )
    if schema == "repro-serve-bench-v2":
        required = required + ("update_every", "updates", "update_errors")
    _require(record, required, source, schema)
    for key in ("scenario", "method"):
        if not isinstance(record[key], str) or not record[key]:
            raise _fail(
                source, f"field {key!r} must be a non-empty string, got {record[key]!r}"
            )
    _count(record, "clients", source, minimum=1)
    _count(record, "requests", source, minimum=1)
    _count(record, "errors", source)
    for key in ("q50_ms", "q90_ms", "q99_ms", "mean_ms", "max_ms", "qps", "seconds"):
        _number(record, key, source)
    if record["q50_ms"] > record["max_ms"] or record["q99_ms"] > record["max_ms"]:
        raise _fail(
            source,
            "latency quantiles exceed the recorded maximum — record was "
            "edited or mis-assembled",
        )
    if schema == "repro-serve-bench-v2":
        _count(record, "updates", source)
        _count(record, "update_errors", source)
    _validate_kpis(record, source)
    _check_digest(record, source, required=False)


def _validate_graph_core(record: dict, source: str) -> None:
    _require(
        record,
        (
            "pr",
            "graphs",
            "queries",
            "hits",
            "dict_seconds",
            "csr_seconds",
            "speedup",
        ),
        source,
        "graph-core-matcher",
    )
    _count(record, "pr", source, minimum=1)
    _count(record, "graphs", source, minimum=1)
    _count(record, "queries", source, minimum=1)
    _count(record, "hits", source)
    _check_speedup(record, "speedup", "dict_seconds", "csr_seconds", source)
    _check_digest(record, source, required=False)


def _validate_hot_path(record: dict, source: str) -> None:
    _require(
        record,
        (
            "pr",
            "enum_graphs",
            "features",
            "verify_graphs",
            "verify_queries",
            "hits",
            "enumeration_dict_seconds",
            "enumeration_csr_seconds",
            "enumeration_speedup",
            "verify_set_seconds",
            "verify_bitset_seconds",
            "verify_speedup",
        ),
        source,
        "csr-query-hot-path",
    )
    _count(record, "pr", source, minimum=1)
    _count(record, "enum_graphs", source, minimum=1)
    _count(record, "features", source, minimum=1)
    _count(record, "verify_graphs", source, minimum=1)
    _count(record, "verify_queries", source, minimum=1)
    _count(record, "hits", source)
    _check_speedup(
        record,
        "enumeration_speedup",
        "enumeration_dict_seconds",
        "enumeration_csr_seconds",
        source,
    )
    _check_speedup(
        record, "verify_speedup", "verify_set_seconds", "verify_bitset_seconds", source
    )
    _check_digest(record, source, required=True)


def bench_validate(record, source: str = "") -> str:
    """Validate one parsed benchmark record; return its kind tag.

    Raises :class:`BenchValidationError` naming *source* (typically the
    file path) on any structural, consistency, or seal failure.
    """
    if not isinstance(record, dict):
        raise _fail(source, f"bench record must be a JSON object, got {record!r}")
    kind = record.get("bench")
    if kind in _MICRO_KINDS:
        if kind == "graph-core-matcher":
            _validate_graph_core(record, source)
        else:
            _validate_hot_path(record, source)
        return str(kind)
    schema = record.get("schema")
    if schema in _SERVE_SCHEMAS:
        _validate_serve(record, source)
        return str(schema)
    raise _fail(
        source,
        "unrecognized bench record: expected 'bench' in "
        f"{sorted(_MICRO_KINDS)} or 'schema' in {sorted(_SERVE_SCHEMAS)}",
    )


def validate_bench_file(path: str | Path) -> str:
    """Load, parse, and validate one ``BENCH_*.json`` file."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise BenchValidationError(f"{path}: bench record file not found")
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BenchValidationError(f"{path}: not valid JSON: {exc}")
    return bench_validate(document, source=str(path))


def render_bench_summary(record: dict, kind: str) -> str:
    """One-paragraph human rendering of a validated bench record, for
    ``repro report`` pointed at a ``BENCH_*.json``."""
    lines = [f"benchmark record: {kind}"]
    if kind == "graph-core-matcher":
        lines.append(
            f"  matcher over {record['graphs']} graph(s), "
            f"{record['queries']} quer(y/ies), {record['hits']} hit(s)"
        )
        lines.append(
            f"  dict {record['dict_seconds']:.6f}s -> "
            f"csr {record['csr_seconds']:.6f}s "
            f"({record['speedup']:.3f}x)"
        )
    elif kind == "csr-query-hot-path":
        lines.append(
            f"  enumeration workload: {record['enum_graphs']} graph(s), "
            f"{record['features']} feature(s); verification workload: "
            f"{record['verify_graphs']} graph(s) x "
            f"{record['verify_queries']} quer(y/ies), {record['hits']} hit(s)"
        )
        lines.append(
            f"  enumeration: dict {record['enumeration_dict_seconds']:.6f}s -> "
            f"csr {record['enumeration_csr_seconds']:.6f}s "
            f"({record['enumeration_speedup']:.3f}x)"
        )
        lines.append(
            f"  verification: set {record['verify_set_seconds']:.6f}s -> "
            f"bitset {record['verify_bitset_seconds']:.6f}s "
            f"({record['verify_speedup']:.3f}x)"
        )
    else:
        kpis = record.get("kpis", [])
        passed = sum(1 for entry in kpis if entry.get("passed"))
        lines.append(
            f"  scenario {record['scenario']!r} method {record['method']!r}: "
            f"{record['requests']} request(s) x {record['clients']} client(s), "
            f"{record['errors']} error(s)"
        )
        lines.append(
            f"  q50 {record['q50_ms']:.3f} ms, q99 {record['q99_ms']:.3f} ms, "
            f"{record['qps']:.1f} q/s; KPIs {passed}/{len(kpis)} passed"
        )
    if record.get("record_digest"):
        lines.append(f"  sealed: {record['record_digest']}")
    return "\n".join(lines)
