"""Rendering of figures/tables and the §6 qualitative shape checks.

The paper presents results as log-scale line plots; a terminal harness
is better served by tables with one row per x value and one column per
method — the exact series a plot would draw.  Missing data points
(budget overruns, crashes) render as ``—``, mirroring the truncated
curves in the paper's figures.

A sharded run adds a second kind of absence: a cell a crashed or still
in-flight shard simply *has not produced yet*.  Conflating the two
would misread "not run" as "failed to index", so manifest-aware
callers (``repro report``) pass the set of unfinished grid keys as
``pending`` and those cells render as ``pending`` instead of ``—``.

The *shape checks* express §6's qualitative conclusions as predicates
over series — e.g. "(Grapes, GGSX) < CT-Index < (Tree+Δ, gIndex) <
gCode for query time" — returning the fraction of sweep points where
the claim holds, so benches can assert the reproduced shape without
chasing absolute Python-vs-C++ constants.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.core.experiments import SweepResult
from repro.graphs.statistics import DatasetStatistics

__all__ = [
    "render_series_table",
    "render_sweep",
    "render_table1",
    "ordering_fraction",
    "breaking_point",
    "series_values",
]

_MISSING = "—"
_PENDING = "pending"


def render_series_table(
    title: str,
    series: Mapping[str, list],
    x_name: str,
    value_format: str = "{:.4g}",
    pending: "set | None" = None,
) -> str:
    """One sub-figure as an ASCII table: rows = x values, cols = methods.

    *pending* names ``(x, method)`` grid keys no shard has produced yet
    (from an incomplete shard manifest); those cells render as
    ``pending``, distinct from ``—`` (ran, but no data point).
    """
    methods = list(series)
    if not methods:
        return f"{title}\n(no data)\n"
    x_values = [x for x, _ in series[methods[0]]]
    header = [x_name] + methods
    rows = [header]
    for i, x in enumerate(x_values):
        row = [_format_x(x)]
        for method in methods:
            value = series[method][i][1]
            if value is not None:
                row.append(value_format.format(value))
            elif pending and (x, method) in pending:
                row.append(_PENDING)
            else:
                row.append(_MISSING)
        rows.append(row)
    return f"{title}\n" + _render_rows(rows) + "\n"


def render_sweep(
    sweep: SweepResult, figure: str, pending: "set | None" = None
) -> str:
    """All four sub-figures of one sweep (a=index time, b=index size,
    c=query time, d=false positive ratio).  *pending* marks cells an
    incomplete sharded run has not produced (see
    :func:`render_series_table`)."""
    parts = [
        render_series_table(
            f"Figure {figure}(a): indexing time (s) vs {sweep.x_name}",
            sweep.indexing_time(),
            sweep.x_name,
            pending=pending,
        ),
        render_series_table(
            f"Figure {figure}(b): index size (MB) vs {sweep.x_name}",
            sweep.index_size_mb(),
            sweep.x_name,
            pending=pending,
        ),
        render_series_table(
            f"Figure {figure}(c): query processing time (s) vs {sweep.x_name}",
            sweep.query_time(),
            sweep.x_name,
            pending=pending,
        ),
        render_series_table(
            f"Figure {figure}(d): avg false positive ratio vs {sweep.x_name}",
            sweep.fp_ratio(),
            sweep.x_name,
            value_format="{:.3f}",
            pending=pending,
        ),
    ]
    return "\n".join(parts)


def render_table1(stats: Mapping[object, DatasetStatistics]) -> str:
    """Table 1: characteristics of the (stand-in) real datasets."""
    rows_data = [stat.as_row() for stat in stats.values()]
    if not rows_data:
        return "Table 1\n(no data)\n"
    columns = list(rows_data[0])
    rows = [columns]
    for data in rows_data:
        rows.append([str(data[column]) for column in columns])
    return "Table 1: dataset characteristics\n" + _render_rows(rows) + "\n"


# ----------------------------------------------------------------------
# shape checks (§6)
# ----------------------------------------------------------------------


def ordering_fraction(
    series: Mapping[str, list],
    faster: Sequence[str],
    slower: Sequence[str],
) -> float:
    """Fraction of x points where every *faster* ≤ every *slower*.

    Only points where at least one method of each group has data count;
    returns 1.0 vacuously if no point is comparable (callers should
    check data presence separately when that matters).
    """
    comparable = 0
    holds = 0
    length = _series_length(series)
    for i in range(length):
        fast_values = [
            series[m][i][1] for m in faster if m in series and series[m][i][1] is not None
        ]
        slow_values = [
            series[m][i][1] for m in slower if m in series and series[m][i][1] is not None
        ]
        if not fast_values or not slow_values:
            continue
        comparable += 1
        if max(fast_values) <= min(slow_values):
            holds += 1
    return holds / comparable if comparable else 1.0


def breaking_point(series: Mapping[str, list], method: str):
    """First x value at which *method* stops producing data, or None.

    This is the paper's "breaking point": the sweep value beyond which
    a method exceeded its budget or crashed.
    """
    points = series.get(method, [])
    seen_data = False
    for x, value in points:
        if value is None and seen_data:
            return x
        if value is not None:
            seen_data = True
    return None


def series_values(series: Mapping[str, list], method: str) -> list[float]:
    """The non-missing y values of one method, in sweep order."""
    return [value for _, value in series.get(method, []) if value is not None]


# ----------------------------------------------------------------------
# table layout
# ----------------------------------------------------------------------


def _render_rows(rows: list[list[str]]) -> str:
    widths = [
        max(len(str(row[column])) for row in rows)
        for column in range(len(rows[0]))
    ]
    lines = []
    for index, row in enumerate(rows):
        cells = [str(cell).rjust(width) for cell, width in zip(row, widths)]
        lines.append("  ".join(cells))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _format_x(x: object) -> str:
    if isinstance(x, float):
        return f"{x:g}"
    return str(x)


def _series_length(series: Mapping[str, list]) -> int:
    for points in series.values():
        return len(points)
    return 0
