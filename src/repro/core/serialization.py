"""JSON persistence of sweep results.

Sweeps are expensive (hours at paper scale); their results should
out-live the process.  :func:`sweep_to_json` / :func:`sweep_from_json`
round-trip a :class:`~repro.core.experiments.SweepResult` — including
per-method build statuses, per-size workload statistics and dataset
statistics — through a stable, human-readable JSON schema, so rendered
tables and plots (``repro report``) can be regenerated or diffed later
without re-running anything.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.experiments import SweepResult
from repro.core.metrics import WorkloadStats
from repro.core.runner import MethodCell, SizeStats
from repro.graphs.statistics import DatasetStatistics

__all__ = [
    "sweep_to_json",
    "sweep_from_json",
    "save_sweep",
    "load_sweep",
    "canonical_cell",
    "canonical_sweep",
    "canonical_json",
    "cell_to_dict",
    "cell_from_dict",
    "stats_to_dict",
    "stats_from_dict",
    "sweep_digest",
    "x_key",
]

_SCHEMA = "repro-sweep-v1"


def save_sweep(sweep: SweepResult, path: str | Path) -> None:
    """Write *sweep* to *path* as JSON."""
    Path(path).write_text(sweep_to_json(sweep), encoding="utf-8")


def load_sweep(path: str | Path) -> SweepResult:
    """Read a sweep previously written by :func:`save_sweep`."""
    return sweep_from_json(Path(path).read_text(encoding="utf-8"))


def sweep_to_json(sweep: SweepResult) -> str:
    document = {
        "schema": _SCHEMA,
        "x_name": sweep.x_name,
        "x_values": sweep.x_values,
        "methods": sweep.methods,
        "query_sizes": list(sweep.query_sizes),
        "dataset_stats": {
            x_key(x): stats_to_dict(stats) for x, stats in sweep.dataset_stats.items()
        },
        "cells": [
            {
                "x": x,
                "method": method,
                "cell": cell_to_dict(cell),
            }
            for (x, method), cell in sweep.cells.items()
        ],
    }
    return json.dumps(document, indent=2, sort_keys=False)


def sweep_from_json(text: str) -> SweepResult:
    document = json.loads(text)
    if document.get("schema") != _SCHEMA:
        raise ValueError(f"not a {_SCHEMA} document")
    sweep = SweepResult(
        x_name=document["x_name"],
        x_values=document["x_values"],
        methods=document["methods"],
        query_sizes=tuple(document["query_sizes"]),
    )
    x_by_key = {x_key(x): x for x in sweep.x_values}
    for key, stats in document["dataset_stats"].items():
        sweep.dataset_stats[x_by_key.get(key, key)] = stats_from_dict(stats)
    for entry in document["cells"]:
        x = entry["x"]
        # JSON round-trips ints/floats/strings faithfully; tuples of
        # x_values were already plain scalars.
        sweep.cells[(x, entry["method"])] = cell_from_dict(entry["cell"])
    return sweep


# ----------------------------------------------------------------------
# canonicalization: the timing-free projection of a result
# ----------------------------------------------------------------------


def canonical_cell(cell: MethodCell) -> MethodCell:
    """*cell* with every wall-clock field zeroed.

    What remains — statuses, candidate/answer counts, FP ratios, index
    sizes, build details — is a deterministic function of (method,
    dataset, workloads).  Two runs of the same experiment agree on
    their canonical cells whether they executed sequentially or through
    :class:`repro.core.parallel.ParallelRunner`; only timings vary, as
    they do between any two runs.  The equivalence suite serializes
    canonical sweeps and compares the JSON byte-for-byte.
    """
    out = MethodCell(
        method=cell.method,
        build_status=cell.build_status,
        build_seconds=None if cell.build_seconds is None else 0.0,
        index_bytes=cell.index_bytes,
        build_details=dict(cell.build_details),
        build_error=cell.build_error,
    )
    for size, stats in cell.per_size.items():
        workload = stats.stats
        if workload is not None:
            workload = WorkloadStats(
                num_queries=workload.num_queries,
                avg_query_seconds=0.0,
                avg_filter_seconds=0.0,
                avg_verify_seconds=0.0,
                avg_candidates=workload.avg_candidates,
                avg_answers=workload.avg_answers,
                false_positive_ratio=workload.false_positive_ratio,
            )
        out.per_size[size] = SizeStats(
            status=stats.status, stats=workload, error=stats.error
        )
    return out


def canonical_sweep(sweep: SweepResult) -> SweepResult:
    """*sweep* with every cell canonicalized (dataset stats are already
    deterministic); safe to diff or hash across runs and worker counts."""
    out = SweepResult(
        x_name=sweep.x_name,
        x_values=list(sweep.x_values),
        methods=list(sweep.methods),
        dataset_stats=dict(sweep.dataset_stats),
        query_sizes=tuple(sweep.query_sizes),
    )
    for key, cell in sweep.cells.items():
        out.cells[key] = canonical_cell(cell)
    return out


def canonical_json(sweep: SweepResult) -> str:
    """The canonical (timing-free) JSON serialization of *sweep*.

    The equivalence currency of the engine: two runs of one experiment
    must produce byte-identical canonical JSON whether they executed
    sequentially, fanned out per cell, attached datasets from a
    shared-memory arena, or split cells into query batches.
    """
    return sweep_to_json(canonical_sweep(sweep))


def sweep_digest(sweep: SweepResult) -> str:
    """A short stable hex digest of the canonical JSON.

    Handy for CI smoke checks and logs: equal digests mean equal
    measured content across execution modes.
    """
    from repro.utils.hashing import stable_digest

    return f"{stable_digest(canonical_json(sweep).encode('utf-8')):016x}"


# ----------------------------------------------------------------------
# piecewise converters
# ----------------------------------------------------------------------


def x_key(x: object) -> str:
    """The JSON-object key used for an x value (``repr``; stable across
    int/float/str x axes).  Shard manifests use the same keying."""
    return repr(x)


def stats_to_dict(stats: DatasetStatistics) -> dict:
    return {
        "name": stats.name,
        "num_graphs": stats.num_graphs,
        "num_disconnected": stats.num_disconnected,
        "num_labels": stats.num_labels,
        "avg_vertices": stats.avg_vertices,
        "std_vertices": stats.std_vertices,
        "avg_edges": stats.avg_edges,
        "avg_density": stats.avg_density,
        "avg_degree": stats.avg_degree,
        "avg_labels_per_graph": stats.avg_labels_per_graph,
    }


def stats_from_dict(data: dict) -> DatasetStatistics:
    return DatasetStatistics(**data)


def _workload_to_dict(stats: WorkloadStats) -> dict:
    return {
        "num_queries": stats.num_queries,
        "avg_query_seconds": stats.avg_query_seconds,
        "avg_filter_seconds": stats.avg_filter_seconds,
        "avg_verify_seconds": stats.avg_verify_seconds,
        "avg_candidates": stats.avg_candidates,
        "avg_answers": stats.avg_answers,
        "false_positive_ratio": stats.false_positive_ratio,
    }


def cell_to_dict(cell: MethodCell) -> dict:
    return {
        "method": cell.method,
        "build_status": cell.build_status,
        "build_seconds": cell.build_seconds,
        "index_bytes": cell.index_bytes,
        "build_details": _jsonable_details(cell.build_details),
        "build_error": cell.build_error,
        "per_size": {
            str(size): {
                "status": stats.status,
                "error": stats.error,
                "stats": None if stats.stats is None else _workload_to_dict(stats.stats),
            }
            for size, stats in cell.per_size.items()
        },
    }


def cell_from_dict(data: dict) -> MethodCell:
    cell = MethodCell(
        method=data["method"],
        build_status=data["build_status"],
        build_seconds=data["build_seconds"],
        index_bytes=data["index_bytes"],
        build_details=dict(data.get("build_details", {})),
        build_error=data.get("build_error", ""),
    )
    for size, entry in data.get("per_size", {}).items():
        stats = entry.get("stats")
        cell.per_size[int(size)] = SizeStats(
            status=entry["status"],
            stats=None if stats is None else WorkloadStats(**stats),
            error=entry.get("error", ""),
        )
    return cell


def _jsonable_details(details: dict) -> dict:
    """Keep only JSON-representable detail values."""
    out = {}
    for key, value in details.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out
