"""The paper's experiments as parameter sweeps (Figures 1–6, Table 1).

Each sweep varies exactly one of the five key parameters — number of
nodes (Fig. 2), density (Figs. 3–4), distinct labels (Fig. 5), number
of graphs (Fig. 6) — holding the others at the profile's "sane
defaults", mirroring §4.2's methodology.  The real-dataset experiment
(Fig. 1, Table 1) evaluates all methods over the four Table 1
stand-ins.

A sweep returns a :class:`SweepResult` holding one
:class:`~repro.core.runner.MethodCell` per (x value, method); accessor
methods project it onto each sub-figure's series, with ``None`` marking
the missing data points the paper draws as truncated curves.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.arena import ArenaHandle, DatasetArena, SharedCellTask, share_task
from repro.core.parallel import ParallelRunner
from repro.core.presets import ScaleProfile, active_profile
from repro.core.runner import CellTask, MethodCell, run_cell
from repro.core.scheduling import (
    QueryBatch,
    estimate_batch_cost,
    estimate_cost,
    longest_first,
    merge_batches,
    run_batch,
    split_cell,
)
from repro.graphs.dataset import dataset_fingerprint
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.generators.realsets import make_real_dataset
from repro.generators.rmat import RMATConfig, generate_massive_dataset
from repro.graphs.dataset import GraphDataset
from repro.graphs.statistics import DatasetStatistics, dataset_statistics
from repro.indexes.base import SINGLE_GRAPH, TRANSACTIONAL

__all__ = [
    "SweepResult",
    "nodes_sweep",
    "density_sweep",
    "labels_sweep",
    "graph_count_sweep",
    "massive_sweep",
    "real_dataset_experiment",
]

ProgressHook = Callable[[str], None]


@dataclass(slots=True)
class SweepResult:
    """All measurements of one sweep."""

    #: Human name of the varied parameter (figure x-axis label).
    x_name: str
    #: The x values actually swept (ints, floats, or dataset names).
    x_values: list
    #: Methods evaluated, in presentation order.
    methods: list[str]
    #: (x value, method) -> measurement cell.
    cells: dict[tuple, MethodCell] = field(default_factory=dict)
    #: Per-x-value dataset statistics (Table 1 for the real experiment).
    dataset_stats: dict = field(default_factory=dict)
    #: Query sizes used in the workloads.
    query_sizes: tuple[int, ...] = ()
    #: (x value, method) -> static :func:`~repro.core.scheduling
    #: .estimate_cost` units assigned when the cell ran.  Execution
    #: metadata for shard manifests and the cost-model feedback loop —
    #: never serialized into the sweep JSON, so it cannot perturb
    #: canonical byte-identity.
    cost_units: dict[tuple, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # index-store provenance (execution metadata, like cost_units)
    # ------------------------------------------------------------------

    def reused_builds(self) -> int:
        """Cells whose index build was served by the artifact store."""
        return sum(
            1 for cell in self.cells.values() if cell.provenance.get("reused")
        )

    def resumed_cells(self) -> int:
        """Cells restored whole from a ``--resume`` manifest — they ran
        nothing this invocation, so they are neither fresh nor reused."""
        return sum(
            1 for cell in self.cells.values() if cell.provenance.get("resumed")
        )

    def fresh_builds(self) -> int:
        """Cells that built (or failed to build) an index themselves."""
        return len(self.cells) - self.reused_builds() - self.resumed_cells()

    # ------------------------------------------------------------------
    # figure projections: method -> [(x, value-or-None)]
    # ------------------------------------------------------------------

    def series(self, extract: Callable[[MethodCell], float | None]) -> dict[str, list]:
        out: dict[str, list] = {}
        for method in self.methods:
            points = []
            for x in self.x_values:
                cell = self.cells.get((x, method))
                points.append((x, None if cell is None else extract(cell)))
            out[method] = points
        return out

    def indexing_time(self) -> dict[str, list]:
        """Sub-figure (a): index construction seconds."""
        return self.series(lambda cell: cell.build_seconds)

    def index_size_mb(self) -> dict[str, list]:
        """Sub-figure (b): index size in MB."""
        return self.series(
            lambda cell: None
            if cell.index_bytes is None
            else cell.index_bytes / (1024.0 * 1024.0)
        )

    def query_time(self) -> dict[str, list]:
        """Sub-figure (c): average query seconds over all sizes."""
        return self.series(MethodCell.query_seconds)

    def fp_ratio(self) -> dict[str, list]:
        """Sub-figure (d): average false positive ratio (Eq. 3)."""
        return self.series(MethodCell.fp_ratio)

    def query_time_for_size(self, size: int) -> dict[str, list]:
        """Figure 4 panels: query seconds for one query size."""
        return self.series(lambda cell: cell.query_seconds_for(size))


# ----------------------------------------------------------------------
# synthetic sweeps (Figures 2, 3+4, 5, 6)
# ----------------------------------------------------------------------


def nodes_sweep(
    profile: ScaleProfile | None = None,
    methods: Sequence[str] | None = None,
    values: Sequence[int] | None = None,
    seed: int = 0,
    progress: ProgressHook | None = None,
    jobs: int | None = 1,
    shared_mem: bool = False,
    batch_queries: bool = False,
    runner: ParallelRunner | None = None,
    plan=None,
    index_store_dir: str | None = None,
    reuse_indexes: bool = True,
) -> SweepResult:
    """Figure 2: vary the number of nodes per graph."""
    profile = profile or active_profile()
    return _synthetic_sweep(
        profile,
        x_name="number of nodes",
        values=list(values if values is not None else profile.nodes_values),
        config_for=lambda x: GraphGenConfig(
            num_graphs=profile.default_num_graphs,
            mean_nodes=x,
            mean_density=profile.default_density,
            num_labels=profile.default_labels,
        ),
        methods=methods,
        seed=seed,
        progress=progress,
        jobs=jobs,
        shared_mem=shared_mem,
        batch_queries=batch_queries,
        runner=runner,
        plan=plan,
        index_store_dir=index_store_dir,
        reuse_indexes=reuse_indexes,
    )


def density_sweep(
    profile: ScaleProfile | None = None,
    methods: Sequence[str] | None = None,
    values: Sequence[float] | None = None,
    seed: int = 0,
    progress: ProgressHook | None = None,
    jobs: int | None = 1,
    shared_mem: bool = False,
    batch_queries: bool = False,
    runner: ParallelRunner | None = None,
    plan=None,
    index_store_dir: str | None = None,
    reuse_indexes: bool = True,
) -> SweepResult:
    """Figures 3 and 4: vary the mean graph density."""
    profile = profile or active_profile()
    return _synthetic_sweep(
        profile,
        x_name="density",
        values=list(values if values is not None else profile.density_values),
        config_for=lambda x: GraphGenConfig(
            num_graphs=profile.default_num_graphs,
            mean_nodes=profile.default_nodes,
            mean_density=x,
            num_labels=profile.default_labels,
        ),
        methods=methods,
        seed=seed,
        progress=progress,
        jobs=jobs,
        shared_mem=shared_mem,
        batch_queries=batch_queries,
        runner=runner,
        plan=plan,
        index_store_dir=index_store_dir,
        reuse_indexes=reuse_indexes,
    )


def labels_sweep(
    profile: ScaleProfile | None = None,
    methods: Sequence[str] | None = None,
    values: Sequence[int] | None = None,
    seed: int = 0,
    progress: ProgressHook | None = None,
    jobs: int | None = 1,
    shared_mem: bool = False,
    batch_queries: bool = False,
    runner: ParallelRunner | None = None,
    plan=None,
    index_store_dir: str | None = None,
    reuse_indexes: bool = True,
) -> SweepResult:
    """Figure 5: vary the number of distinct labels."""
    profile = profile or active_profile()
    return _synthetic_sweep(
        profile,
        x_name="labels",
        values=list(values if values is not None else profile.label_values),
        config_for=lambda x: GraphGenConfig(
            num_graphs=profile.default_num_graphs,
            mean_nodes=profile.default_nodes,
            mean_density=profile.default_density,
            num_labels=x,
        ),
        methods=methods,
        seed=seed,
        progress=progress,
        jobs=jobs,
        shared_mem=shared_mem,
        batch_queries=batch_queries,
        runner=runner,
        plan=plan,
        index_store_dir=index_store_dir,
        reuse_indexes=reuse_indexes,
    )


def graph_count_sweep(
    profile: ScaleProfile | None = None,
    methods: Sequence[str] | None = None,
    values: Sequence[int] | None = None,
    seed: int = 0,
    progress: ProgressHook | None = None,
    jobs: int | None = 1,
    shared_mem: bool = False,
    batch_queries: bool = False,
    runner: ParallelRunner | None = None,
    plan=None,
    index_store_dir: str | None = None,
    reuse_indexes: bool = True,
) -> SweepResult:
    """Figure 6: vary the number of graphs in the dataset."""
    profile = profile or active_profile()
    return _synthetic_sweep(
        profile,
        x_name="number of graphs",
        values=list(values if values is not None else profile.graph_count_values),
        config_for=lambda x: GraphGenConfig(
            num_graphs=x,
            mean_nodes=profile.default_nodes,
            mean_density=profile.default_density,
            num_labels=profile.default_labels,
        ),
        methods=methods,
        seed=seed,
        progress=progress,
        jobs=jobs,
        shared_mem=shared_mem,
        batch_queries=batch_queries,
        runner=runner,
        plan=plan,
        index_store_dir=index_store_dir,
        reuse_indexes=reuse_indexes,
    )


def massive_sweep(
    profile: ScaleProfile | None = None,
    methods: Sequence[str] | None = None,
    values: Sequence[int] | None = None,
    seed: int = 0,
    progress: ProgressHook | None = None,
    jobs: int | None = 1,
    shared_mem: bool = False,
    batch_queries: bool = False,
    runner: ParallelRunner | None = None,
    plan=None,
    index_store_dir: str | None = None,
    reuse_indexes: bool = True,
) -> SweepResult:
    """Massive single-graph regime: vary the R-MAT scale.

    Each x value is one graph500-style graph of ``2**scale`` vertices;
    queries answer with embedding roots instead of graph ids.  The
    whole engine surface — sharded plans, arenas, query batching, the
    artifact store — behaves exactly as in the transactional sweeps.
    """
    profile = profile or active_profile()
    return _synthetic_sweep(
        profile,
        x_name="scale",
        values=list(
            values if values is not None else profile.massive_scale_values
        ),
        config_for=lambda x: RMATConfig(
            scale=x,
            edge_factor=profile.massive_edge_factor,
            num_labels=profile.massive_labels,
        ),
        methods=list(
            methods if methods is not None else profile.massive_methods
        ),
        seed=seed,
        progress=progress,
        jobs=jobs,
        shared_mem=shared_mem,
        batch_queries=batch_queries,
        runner=runner,
        plan=plan,
        index_store_dir=index_store_dir,
        reuse_indexes=reuse_indexes,
        generate=generate_massive_dataset,
        query_sizes=profile.massive_query_sizes,
        queries_per_size=profile.massive_queries_per_size,
        regime=SINGLE_GRAPH,
    )


def _synthetic_sweep(
    profile: ScaleProfile,
    x_name: str,
    values: list,
    config_for: Callable[[object], object],
    methods: Sequence[str] | None,
    seed: int,
    progress: ProgressHook | None,
    jobs: int | None = 1,
    shared_mem: bool = False,
    batch_queries: bool = False,
    runner: ParallelRunner | None = None,
    plan=None,
    index_store_dir: str | None = None,
    reuse_indexes: bool = True,
    generate: Callable = generate_dataset,
    query_sizes: tuple[int, ...] | None = None,
    queries_per_size: int | None = None,
    regime: str = TRANSACTIONAL,
) -> SweepResult:
    method_names = list(methods if methods is not None else profile.method_names())
    xs = list(values)
    run_keys: set | None = None
    if plan is not None:
        xs, method_names = plan.subgrid(xs, method_names, x_name)
        run_keys = set(plan.cells_to_run(xs, method_names))
    sizes = profile.query_sizes if query_sizes is None else tuple(query_sizes)
    result = SweepResult(
        x_name=x_name,
        x_values=xs,
        methods=method_names,
        query_sizes=sizes,
    )
    def tasks():
        for x in xs:
            wanted = [
                m
                for m in method_names
                if run_keys is None or (x, m) in run_keys
            ]
            if not wanted:
                # Every cell of this x is outside the shard or already
                # completed — skip the dataset generation entirely.
                continue
            dataset = generate(config_for(x), seed=seed)
            workloads = _make_workloads(
                dataset, profile, seed,
                query_sizes=sizes, queries_per_size=queries_per_size,
            )
            result.dataset_stats[x] = dataset_statistics(dataset)
            digest = (
                dataset_fingerprint(dataset)
                if index_store_dir is not None
                else None
            )
            for method in wanted:
                yield _cell_task(
                    (x, method), method, dataset, workloads, profile,
                    index_store_dir, reuse_indexes, digest, regime,
                )

    total = (
        len(xs) * len(method_names) if run_keys is None else len(run_keys)
    )
    _dispatch(
        result,
        tasks(),
        total,
        x_name,
        jobs,
        progress,
        shared_mem=shared_mem,
        batch_queries=batch_queries,
        runner=runner,
        history=None if plan is None else plan.history,
    )
    if plan is not None:
        plan.finalize(result)
    return result


# ----------------------------------------------------------------------
# real datasets (Figure 1, Table 1)
# ----------------------------------------------------------------------


def real_dataset_experiment(
    profile: ScaleProfile | None = None,
    methods: Sequence[str] | None = None,
    names: Sequence[str] | None = None,
    seed: int = 0,
    progress: ProgressHook | None = None,
    jobs: int | None = 1,
    shared_mem: bool = False,
    batch_queries: bool = False,
    runner: ParallelRunner | None = None,
    plan=None,
    index_store_dir: str | None = None,
    reuse_indexes: bool = True,
) -> SweepResult:
    """Figure 1 and Table 1: all methods over the real-dataset stand-ins."""
    profile = profile or active_profile()
    method_names = list(methods if methods is not None else profile.method_names())
    dataset_names = list(names if names is not None else profile.real_dataset_names)
    run_keys: set | None = None
    if plan is not None:
        dataset_names, method_names = plan.subgrid(
            dataset_names, method_names, "dataset"
        )
        run_keys = set(plan.cells_to_run(dataset_names, method_names))
    result = SweepResult(
        x_name="dataset",
        x_values=dataset_names,
        methods=method_names,
        query_sizes=profile.query_sizes,
    )
    def tasks():
        for name in dataset_names:
            wanted = [
                m
                for m in method_names
                if run_keys is None or (name, m) in run_keys
            ]
            if not wanted:
                continue
            dataset = make_real_dataset(
                name, scale=profile.real_dataset_scale, seed=seed
            )
            workloads = _make_workloads(dataset, profile, seed)
            result.dataset_stats[name] = dataset_statistics(dataset, name=name)
            digest = (
                dataset_fingerprint(dataset)
                if index_store_dir is not None
                else None
            )
            for method in wanted:
                yield _cell_task(
                    (name, method), method, dataset, workloads, profile,
                    index_store_dir, reuse_indexes, digest,
                )

    total = (
        len(dataset_names) * len(method_names)
        if run_keys is None
        else len(run_keys)
    )
    _dispatch(
        result,
        tasks(),
        total,
        "dataset",
        jobs,
        progress,
        shared_mem=shared_mem,
        batch_queries=batch_queries,
        runner=runner,
        history=None if plan is None else plan.history,
    )
    if plan is not None:
        plan.finalize(result)
    return result


def _cell_task(
    key,
    method,
    dataset,
    workloads,
    profile: ScaleProfile,
    index_store_dir: str | None = None,
    reuse_indexes: bool = True,
    dataset_digest: int | None = None,
    regime: str = TRANSACTIONAL,
) -> CellTask:
    return CellTask(
        key=key,
        method=method,
        dataset=dataset,
        workloads=workloads,
        method_config=profile.method_configs.get(method),
        build_budget_seconds=profile.build_budget_seconds,
        query_budget_seconds=profile.query_budget_seconds,
        index_store_dir=index_store_dir,
        reuse_indexes=reuse_indexes,
        dataset_digest=dataset_digest,
        regime=regime,
    )


def _dispatch(
    result: SweepResult,
    tasks: "Iterable[CellTask]",
    total: int,
    x_name: str,
    jobs: int | None,
    progress: ProgressHook | None,
    shared_mem: bool = False,
    batch_queries: bool = False,
    runner: ParallelRunner | None = None,
    history=None,
) -> None:
    """Execute *tasks* and merge deterministically.

    Sequential runs (no engine features requested) stream the lazy
    *tasks* iterable — only one x value's dataset is alive at a time,
    as before the engine existed — and report each cell *before* it
    runs, so an hours-long cell is visible in flight.  Engine runs must
    materialize every task to submit it, and can only report
    completions; results still merge in task order regardless of worker
    completion order, so ``result.cells`` has the exact insertion order
    — x outer, method inner — the sequential loop produces.

    Engine features (each independently optional):

    * ``shared_mem`` — each x value's dataset is packed once into a
      :class:`~repro.core.arena.DatasetArena`; tasks ship arena handles
      instead of pickled datasets.  Each segment is **evicted as soon
      as every task referencing it has completed** (per-arena
      refcounts decremented from the completion hook), so a multi-GB
      sweep holds at most the segments of in-flight x values; the
      ``finally`` below still unlinks whatever remains, even when a
      worker crashes mid-sweep.
    * ``batch_queries`` — cells split into per-query batches
      (:func:`~repro.core.scheduling.split_cell`) so one slow cell's
      workload spreads across workers; merged cells are byte-identical
      (canonicalized) to unbatched ones.
    * parallel submissions are always longest-first
      (:func:`~repro.core.scheduling.longest_first`) to shrink the tail.
      ``history`` (a :class:`~repro.core.scheduling.CostHistory`, e.g.
      from a shard manifest) calibrates the static estimates with
      measured cell seconds when available.
    * ``runner`` — an externally owned (persistent) runner to reuse;
      its pool is left alive for the caller's next sweep.

    Every dispatched task's **static** cost units are recorded in
    ``result.cost_units`` so shard manifests can persist them next to
    the measured seconds — the data the next run's ``history`` is
    built from.
    """

    def label(done: int, task) -> str:
        return f"[{done}/{total}] {x_name}={task.key[0]} method={task.method}"

    def priced(task) -> float:
        units = estimate_cost(task)
        result.cost_units[task.key] = units
        return units if history is None else history.calibrate(
            task.key, task.method, units
        )

    runner = runner if runner is not None else ParallelRunner(jobs=jobs)
    if runner.jobs <= 1 and not shared_mem and not batch_queries:
        for done, task in enumerate(tasks, start=1):
            if progress is not None:
                progress(label(done, task))
            result.cost_units[task.key] = estimate_cost(task)
            result.cells[task.key] = run_cell(task)
        return

    task_list: list = list(tasks)
    arenas: list[DatasetArena] = []
    try:
        if shared_mem:
            task_list = _share_tasks(task_list, arenas)
        if batch_queries:
            _run_batched(
                result, task_list, runner, x_name, progress, history, arenas
            )
        else:
            evict = _arena_evictor(task_list, arenas)
            costs = [priced(task) for task in task_list]
            order = longest_first(costs) if runner.jobs > 1 else None

            def hook(done, _total, task):
                evict(task)
                if progress is not None:
                    progress(label(done, task))

            for outcome in runner.run(task_list, progress=hook, order=order):
                result.cells[outcome.key] = outcome.cell
    finally:
        for arena in arenas:
            arena.close()


def _arena_evictor(tasks: list, arenas: list[DatasetArena]):
    """A completion hook releasing each shared-memory segment once the
    last task referencing it has finished (ROADMAP: arena eviction for
    multi-GB invocations).

    Safe because workers materialize a segment's dataset when a task
    *starts* and cache it process-locally — by the time the final
    referencing task has completed, no future task attaches the
    segment.  Closing is idempotent, so the dispatch-end ``finally``
    remains the crash backstop.
    """
    arena_by_name = {arena.handle.shm_name: arena for arena in arenas}
    refs: dict[str, int] = {}
    for task in tasks:
        name = _task_arena_name(task)
        if name is not None:
            refs[name] = refs.get(name, 0) + 1

    def evict(task) -> None:
        name = _task_arena_name(task)
        if name is None:
            return
        refs[name] -= 1
        if refs[name] == 0:
            arena = arena_by_name.get(name)
            if arena is not None:
                arena.close()

    return evict


def _task_arena_name(task) -> str | None:
    handle = getattr(task, "handle", None)  # SharedCellTask
    if handle is None:
        dataset = getattr(task, "dataset", None)  # QueryBatch over an arena
        if isinstance(dataset, ArenaHandle):
            handle = dataset
    return None if handle is None else handle.shm_name


def _share_tasks(
    tasks: list[CellTask], arenas: list[DatasetArena]
) -> list[SharedCellTask]:
    """Move every task's dataset into a shared-memory arena (one per
    distinct dataset object; all methods of an x value share it)."""
    handle_of: dict[int, object] = {}
    shared: list[SharedCellTask] = []
    for task in tasks:
        handle = handle_of.get(id(task.dataset))
        if handle is None:
            arena = DatasetArena.create(task.dataset)
            arenas.append(arena)
            handle = arena.handle
            handle_of[id(task.dataset)] = handle
        shared.append(share_task(task, handle))
    return shared


def _run_batched(
    result: SweepResult,
    tasks: "list[CellTask | SharedCellTask]",
    runner: ParallelRunner,
    x_name: str,
    progress: ProgressHook | None,
    history=None,
    arenas: "list[DatasetArena] | None" = None,
) -> None:
    """Split cells into query batches, run longest-first, merge in order.

    *arenas* enables per-batch arena eviction: a dataset's segment is
    released once the last batch referencing it completes."""
    fingerprint_of: dict[int, int] = {}
    batches: list[QueryBatch] = []
    groups: list[tuple] = []  # (task, range of batch indices)
    for task in tasks:
        if isinstance(task, SharedCellTask):
            key = task.handle.fingerprint
        else:
            key = fingerprint_of.get(id(task.dataset))
            if key is None:
                key = getattr(task, "dataset_digest", None)
                if key is None:
                    key = dataset_fingerprint(task.dataset)
                fingerprint_of[id(task.dataset)] = key
        result.cost_units[task.key] = estimate_cost(task)
        cell_batches = split_cell(task, runner.jobs, dataset_key=key)
        start = len(batches)
        batches.extend(cell_batches)
        groups.append((task, range(start, start + len(cell_batches))))

    total = len(batches)
    evict = _arena_evictor(batches, arenas if arenas is not None else [])

    def hook(done, _total, batch):
        evict(batch)
        if progress is not None:
            progress(
                f"[{done}/{total}] {x_name}={batch.key[0]} method={batch.method} "
                f"batch {batch.batch_index + 1}/{batch.num_batches}"
            )

    costs = [estimate_batch_cost(batch, history) for batch in batches]
    order = longest_first(costs) if runner.jobs > 1 else None
    outcomes = runner.map(run_batch, batches, progress=hook, order=order)
    for task, indices in groups:
        result.cells[task.key] = merge_batches(
            [batches[i] for i in indices], [outcomes[i] for i in indices]
        )


def _make_workloads(
    dataset: GraphDataset,
    profile: ScaleProfile,
    seed: int,
    query_sizes: tuple[int, ...] | None = None,
    queries_per_size: int | None = None,
) -> dict[int, list]:
    """Per-size random-walk workloads; sizes the dataset cannot yield
    (all graphs too small) are skipped, as with 32-edge queries on tiny
    CI-scale stand-ins.  The massive sweep passes its own sizes/count;
    everything else inherits the profile's."""
    sizes = profile.query_sizes if query_sizes is None else query_sizes
    count = (
        profile.queries_per_size if queries_per_size is None else queries_per_size
    )
    workloads: dict[int, list] = {}
    for size in sizes:
        try:
            workloads[size] = generate_queries(
                dataset, count, size, seed=seed + size
            )
        except ValueError:
            continue
    return workloads
