"""Scale profiles: the paper's configuration and a CI-sized twin.

The paper's experiments (§4) run 1000-graph datasets of 200-node graphs
under an 8-hour limit on a 32-thread Xeon.  A pure-Python reproduction
cannot run that in CI, so every experiment is defined against a
:class:`ScaleProfile` and shipped with two instances:

* :data:`PAPER_PROFILE` — the exact §4.1/§4.2 parameter values
  (algorithm settings, sweep grids, 8-hour budgets).  Selectable via
  ``REPRO_SCALE=paper``; expect day-scale runtimes in Python.
* :data:`CI_PROFILE` — the same *structure* at roughly 1/8 linear
  scale with seconds-scale budgets.  Sweep grids preserve the paper's
  geometry (default point in the middle, one parameter varied at a
  time) so the qualitative shapes — method ordering, FP-ratio knees,
  breaking points — remain visible.  EXPERIMENTS.md records the CI
  numbers next to the paper's.

Every knob that §4.1 fixes for the six methods is recorded in
``method_configs`` so benches and examples never hard-code them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["ScaleProfile", "PAPER_PROFILE", "CI_PROFILE", "active_profile"]


@dataclass(frozen=True, slots=True)
class ScaleProfile:
    """All parameters of one reproduction scale."""

    name: str

    # --- sweep grids (x axes of the figures) -------------------------
    #: Figure 2: mean nodes per graph.
    nodes_values: tuple[int, ...]
    #: Figures 3 and 4: mean graph density.
    density_values: tuple[float, ...]
    #: Figure 5: number of distinct labels.
    label_values: tuple[int, ...]
    #: Figure 6: number of graphs in the dataset.
    graph_count_values: tuple[int, ...]

    # --- the "sane defaults" (§4.2) ----------------------------------
    default_num_graphs: int
    default_nodes: int
    default_density: float
    default_labels: int

    # --- query workloads (§4.3) --------------------------------------
    query_sizes: tuple[int, ...]
    queries_per_size: int

    # --- experiment limits (§4.1) ------------------------------------
    build_budget_seconds: float
    query_budget_seconds: float

    # --- real datasets (Table 1 / Figure 1) --------------------------
    real_dataset_scale: float
    real_dataset_names: tuple[str, ...] = ("AIDS", "PDBS", "PCM", "PPI")

    # --- per-method constructor settings (§4.1) ----------------------
    method_configs: dict[str, dict] = field(default_factory=dict)

    # --- massive single-graph regime (R-MAT, graph500-style) ---------
    #: ``repro sweep massive`` x axis: R-MAT scales (2**scale nodes).
    massive_scale_values: tuple[int, ...] = (8, 9)
    #: Edge draws per vertex (Graph500's EF).
    massive_edge_factor: int = 8
    #: Label vocabulary size of the massive graph.
    massive_labels: int = 8
    #: Query sizes (edges) of the single-graph workloads.
    massive_query_sizes: tuple[int, ...] = (4, 6)
    #: Queries per size.
    massive_queries_per_size: int = 2
    #: Methods run in the massive regime (every method works; these
    #: are the ones with single-graph filtering worth measuring).
    massive_methods: tuple[str, ...] = ("cni", "naive")

    def method_names(self) -> tuple[str, ...]:
        """The benchmarked methods, in the paper's presentation order."""
        return tuple(self.method_configs)


#: The paper's exact configuration (§4.1, §4.2).
PAPER_PROFILE = ScaleProfile(
    name="paper",
    nodes_values=(
        50, 75, 100, 125, 150, 175, 200, 250, 300, 400, 500,
        600, 800, 1000, 1200, 1400, 1600, 1800, 2000,
    ),
    density_values=(
        0.005, 0.006, 0.007, 0.008, 0.009, 0.01, 0.015, 0.02, 0.025,
        0.03, 0.035, 0.04, 0.045, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1,
        0.2, 0.3,
    ),
    label_values=(10, 20, 30, 40, 50, 60, 70, 80),
    graph_count_values=(1000, 2500, 5000, 7500, 10000, 25000, 50000, 100000),
    default_num_graphs=1000,
    default_nodes=200,
    default_density=0.025,
    default_labels=20,
    query_sizes=(4, 8, 16, 32),
    queries_per_size=100,
    build_budget_seconds=8 * 3600.0,
    query_budget_seconds=8 * 3600.0,
    real_dataset_scale=1.0,
    method_configs={
        "grapes": {"max_path_edges": 4, "workers": 6},
        "ggsx": {"max_path_edges": 4},
        "ctindex": {"fingerprint_bits": 4096, "feature_edges": 4},
        "gindex": {
            "max_fragment_edges": 10,
            "support_ratio": 0.1,
            "discriminative_ratio": 2.0,
        },
        "tree+delta": {
            "max_feature_edges": 10,
            "support_ratio": 0.1,
            "delta_min_discriminative": 0.1,
            "delta_add_threshold": 0.8,
        },
        "gcode": {"path_depth": 2, "top_eigenvalues": 2, "counter_buckets": 32},
    },
    massive_scale_values=(14, 16, 18),
    massive_edge_factor=16,
    massive_labels=32,
    massive_query_sizes=(4, 8, 12),
    massive_queries_per_size=10,
    massive_methods=("cni", "naive"),
)

#: CI-sized twin: same shape, ~1/8 linear scale, seconds-scale budgets.
CI_PROFILE = ScaleProfile(
    name="ci",
    nodes_values=(10, 14, 18, 24, 30, 40, 52),
    density_values=(0.05, 0.07, 0.09, 0.12, 0.16, 0.22, 0.30),
    label_values=(2, 3, 4, 6, 8, 12, 16),
    graph_count_values=(40, 80, 160, 320),
    default_num_graphs=60,
    default_nodes=24,
    default_density=0.12,
    default_labels=6,
    query_sizes=(4, 8, 16),
    queries_per_size=8,
    build_budget_seconds=20.0,
    query_budget_seconds=20.0,
    real_dataset_scale=0.02,
    method_configs={
        "grapes": {"max_path_edges": 4, "workers": 2},
        "ggsx": {"max_path_edges": 4},
        "ctindex": {"fingerprint_bits": 1024, "feature_edges": 3},
        "gindex": {
            "max_fragment_edges": 5,
            "support_ratio": 0.1,
            "discriminative_ratio": 2.0,
        },
        "tree+delta": {
            "max_feature_edges": 5,
            "support_ratio": 0.1,
            "delta_min_discriminative": 0.1,
            "delta_add_threshold": 0.8,
        },
        "gcode": {"path_depth": 2, "top_eigenvalues": 2, "counter_buckets": 32},
    },
    massive_scale_values=(8, 9),
    massive_edge_factor=8,
    massive_labels=8,
    massive_query_sizes=(4, 6),
    massive_queries_per_size=2,
    massive_methods=("cni", "naive"),
)


def active_profile() -> ScaleProfile:
    """The profile selected by ``REPRO_SCALE`` (default: CI).

    ``REPRO_SCALE=paper`` selects the full paper configuration;
    anything else (or unset) selects :data:`CI_PROFILE`.
    """
    if os.environ.get("REPRO_SCALE", "").lower() == "paper":
        return PAPER_PROFILE
    return CI_PROFILE
