"""Process-wide run knobs: one declaration per ``REPRO_*`` selector.

Every CLI toggle that travels as an environment variable — so worker
processes inherit it at spawn and sharded child invocations can be
handed it verbatim — follows the same contract:

* the value is **read from the environment on every call** (tests and
  the CLI flip knobs without touching module state),
* unrecognized values fall back to the default (first choice),
* an explicit CLI flag exports to the environment; no flag leaves the
  environment (and thus the default) alone,
* ``repro launch`` replicates the caller's explicit flags onto each
  shard's command line, so children agree with the parent.

This module is the one place that contract lives.  The historical
accessors (:func:`repro.graphs.csr.active_graph_core`,
:func:`repro.features.kernels.active_feature_core`) remain as thin
delegates so existing imports keep working.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass

__all__ = [
    "Knob",
    "GRAPH_CORE",
    "FEATURE_CORE",
    "REGIME",
    "ALL_KNOBS",
    "TRANSACTIONAL",
    "SINGLE_GRAPH",
    "apply_cli_args",
    "passthrough_cli",
]

#: The paper's regime: many small graphs, answers are graph ids.
TRANSACTIONAL = "transactional"
#: The massive regime: one huge graph, answers are embedding roots.
SINGLE_GRAPH = "single-graph"


@dataclass(frozen=True, slots=True)
class Knob:
    """One environment-travelling run selector.

    ``choices`` lists the recognized values, default first.  ``flag``
    is the CLI spelling (``--graph-core``); the matching argparse
    attribute name is derived from it.
    """

    #: CLI flag spelling, e.g. ``--graph-core``.
    flag: str
    #: Environment variable the value travels in.
    env: str
    #: Recognized values, default first.
    choices: tuple[str, ...]
    #: One-line help used by the CLI declaration.
    help: str = ""

    @property
    def default(self) -> str:
        return self.choices[0]

    @property
    def attr(self) -> str:
        """The argparse ``Namespace`` attribute for :attr:`flag`."""
        return self.flag.lstrip("-").replace("-", "_")

    def active(self) -> str:
        """The knob's current value, read from the environment now.

        Unrecognized values fall back to the default, so a stale or
        mistyped variable can never select an unknown mode.
        """
        value = os.environ.get(self.env, self.default).strip().lower()
        return value if value in self.choices else self.default


#: In-memory graph representation (``repro.graphs.csr``).
GRAPH_CORE = Knob(
    flag="--graph-core",
    env="REPRO_GRAPH_CORE",
    choices=("csr", "dict"),
    help="in-memory graph representation for this invocation",
)

#: Feature-enumeration kernels (``repro.features.kernels``).
FEATURE_CORE = Knob(
    flag="--feature-core",
    env="REPRO_FEATURE_CORE",
    choices=("csr", "dict"),
    help="feature-enumeration kernels for this invocation",
)

#: Query answer regime (``repro.indexes.base``): graph ids over a
#: transaction database, or embedding roots over one massive graph.
REGIME = Knob(
    flag="--regime",
    env="REPRO_REGIME",
    choices=(TRANSACTIONAL, SINGLE_GRAPH),
    help="query answer form: transactional graph ids or "
    "single-graph embedding roots",
)

#: Every registered knob, in CLI declaration order.
ALL_KNOBS = (GRAPH_CORE, FEATURE_CORE, REGIME)


def apply_cli_args(args: argparse.Namespace) -> None:
    """Export every knob flag present on *args* into the environment.

    The toggle travels as its ``REPRO_*`` variable — like
    ``REPRO_SCALE``, worker processes inherit it at spawn, so one flag
    governs the whole invocation.  Absent flags (``None``) leave the
    environment alone.
    """
    for knob in ALL_KNOBS:
        value = getattr(args, knob.attr, None)
        if value is not None:
            os.environ[knob.env] = value


def passthrough_cli(args: argparse.Namespace) -> list[str]:
    """Replicate the caller's explicit knob flags for a child command.

    ``repro launch`` builds each shard's ``repro sweep`` command line
    with this, so children resolve every knob exactly as the parent
    did; knobs the caller never set stay unset (children read their own
    environment, which the executor already forwards).
    """
    cli: list[str] = []
    for knob in ALL_KNOBS:
        value = getattr(args, knob.attr, None)
        if value:
            cli += [knob.flag, value]
    return cli
