"""Declarative load generation against the online query service.

The serving tier (:mod:`repro.core.serve`) is only trustworthy if its
performance is *asserted*, not eyeballed — the discipline of the
redisgraph-benchmark-go scenario files: a YAML-ish document declares
the workload shape (``clients``/``rps``/``requests``) and the KPIs the
run must meet (``q50 latency ≤ X ms``, ``QPS ≥ Y``), and CI gates on
the outcome.  This module is that half:

* :func:`parse_scenario` reads the line-oriented scenario format
  (``key: value`` pairs plus repeatable ``kpi:`` assertions — see
  :data:`SCENARIO_KEYS`); unknown keys and malformed KPIs fail loudly,
  a scenario is a contract, not a suggestion.
* :func:`run_load` drives a live daemon over HTTP: ``clients`` worker
  threads issue ``requests`` total queries (round-robin through the
  workload), paced to ``rps`` when nonzero (scheduled send times, not
  sleep-per-request drift), measuring client-observed latency.
* Every response's answer lists are kept **per workload query**, so
  the result knows whether concurrent execution ever returned two
  different answers for the same query — the serve-vs-batch identity
  contract's concurrent half.
* :func:`evaluate_kpis` scores the measured metrics against the
  scenario's assertions and :func:`bench_record` emits the
  ``BENCH_pr7.json`` trajectory point.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "KpiOutcome",
    "KpiSpec",
    "LoadResult",
    "Scenario",
    "ScenarioError",
    "bench_record",
    "evaluate_kpis",
    "load_scenario",
    "metrics_of",
    "parse_scenario",
    "post_query",
    "post_update",
    "run_load",
]

#: v2: records the mixed read/write shape (updates applied, update
#: latency quantiles, ``update_every``) alongside the query KPIs.
BENCH_SCHEMA = "repro-serve-bench-v2"


class ScenarioError(ValueError):
    """A scenario file that cannot be parsed or a KPI that cannot run."""


# ----------------------------------------------------------------------
# scenarios: the declarative workload + KPI contract
# ----------------------------------------------------------------------

#: Scalar scenario keys -> (coercion, default).  ``kpi`` is the one
#: repeatable key and lives outside this table.
SCENARIO_KEYS: dict = {
    "name": (str, "scenario"),
    "description": (str, ""),
    "method": (str, ""),
    "clients": (int, 1),
    "requests": (int, 1),
    "rps": (float, 0.0),
    "timeout_seconds": (float, 30.0),
    "update_every": (int, 0),
}

#: Metric names a KPI may assert, matching :func:`metrics_of`.
KPI_METRICS = (
    "q50_ms",
    "q90_ms",
    "q99_ms",
    "mean_ms",
    "max_ms",
    "qps",
    "errors",
    "requests",
    "seconds",
    "updates",
    "update_errors",
    "update_q50_ms",
    "update_mean_ms",
)

_OPS = {"<=": lambda a, b: a <= b, ">=": lambda a, b: a >= b}


@dataclass(frozen=True, slots=True)
class KpiSpec:
    """One assertion: ``metric <= threshold`` or ``metric >= threshold``."""

    metric: str
    op: str
    threshold: float

    def check(self, metrics: dict) -> tuple[float, bool]:
        actual = float(metrics[self.metric])
        return actual, _OPS[self.op](actual, self.threshold)

    def spec(self) -> str:
        return f"{self.metric} {self.op} {self.threshold:g}"


@dataclass(frozen=True, slots=True)
class Scenario:
    """A parsed load scenario: workload shape plus KPI assertions."""

    name: str = "scenario"
    description: str = ""
    #: Method the requests target ("" = the bench CLI's default).
    method: str = ""
    clients: int = 1
    requests: int = 1
    #: Target aggregate request rate; 0 = unthrottled.
    rps: float = 0.0
    #: Per-request HTTP timeout.
    timeout_seconds: float = 30.0
    #: Mixed read/write shape: every Nth request slot issues a dataset
    #: update (from the bench CLI's ``--updates`` pool) instead of a
    #: query.  0 = read-only.
    update_every: int = 0
    kpis: tuple[KpiSpec, ...] = field(default_factory=tuple)


def _parse_kpi(raw: str) -> KpiSpec:
    for op in _OPS:
        if op in raw:
            metric, _, threshold = raw.partition(op)
            metric = metric.strip()
            if metric not in KPI_METRICS:
                known = ", ".join(KPI_METRICS)
                raise ScenarioError(
                    f"unknown KPI metric {metric!r}; expected one of {known}"
                )
            try:
                value = float(threshold.strip())
            except ValueError:
                raise ScenarioError(
                    f"KPI threshold must be a number, got {threshold.strip()!r}"
                )
            return KpiSpec(metric=metric, op=op, threshold=value)
    raise ScenarioError(
        f"KPI must be 'METRIC <= N' or 'METRIC >= N', got {raw!r}"
    )


def parse_scenario(text: str) -> Scenario:
    """Parse the line-oriented scenario format.

    One ``key: value`` per line; ``#`` starts a comment; blank lines
    are ignored; ``kpi:`` repeats.  Example::

        name: serve-smoke
        method: ggsx
        clients: 2
        requests: 40
        rps: 0            # unthrottled
        kpi: q50_ms <= 250
        kpi: qps >= 2
    """
    values: dict = {}
    kpis: list[KpiSpec] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        key, separator, value = line.partition(":")
        key = key.strip()
        if not separator or not key:
            raise ScenarioError(
                f"line {lineno}: expected 'key: value', got {raw.strip()!r}"
            )
        value = value.strip()
        if key == "kpi":
            kpis.append(_parse_kpi(value))
            continue
        if key not in SCENARIO_KEYS:
            known = ", ".join([*SCENARIO_KEYS, "kpi"])
            raise ScenarioError(
                f"line {lineno}: unknown scenario key {key!r}; "
                f"expected one of {known}"
            )
        coerce, _ = SCENARIO_KEYS[key]
        try:
            values[key] = coerce(value)
        except ValueError:
            raise ScenarioError(
                f"line {lineno}: {key} expects {coerce.__name__}, "
                f"got {value!r}"
            )
    scenario = Scenario(**values, kpis=tuple(kpis))
    if scenario.clients < 1:
        raise ScenarioError(f"clients must be >= 1, got {scenario.clients}")
    if scenario.requests < 1:
        raise ScenarioError(f"requests must be >= 1, got {scenario.requests}")
    if scenario.rps < 0:
        raise ScenarioError(f"rps must be >= 0, got {scenario.rps}")
    if scenario.update_every < 0:
        raise ScenarioError(
            f"update_every must be >= 0, got {scenario.update_every}"
        )
    return scenario


def load_scenario(path: str | Path) -> Scenario:
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        raise ScenarioError(f"scenario file not found: {path}")
    try:
        return parse_scenario(text)
    except ScenarioError as exc:
        raise ScenarioError(f"{path}: {exc}")


# ----------------------------------------------------------------------
# the load run
# ----------------------------------------------------------------------


def post_query(
    url: str, method: str, gfd_text: str, timeout: float = 30.0
) -> tuple[int, dict]:
    """POST one workload to ``<url>/query``; ``(status, document)``.

    HTTP-level errors come back as a status + ``{"error": ...}``
    document rather than raising — the load generator counts them, it
    does not crash on them.
    """
    body = json.dumps({"method": method, "queries": gfd_text}).encode("utf-8")
    request = urllib.request.Request(
        f"{url.rstrip('/')}/query",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            document = json.loads(exc.read().decode("utf-8"))
        except Exception:
            document = {"error": str(exc)}
        return exc.code, document
    except (urllib.error.URLError, OSError, ValueError) as exc:
        return 0, {"error": str(exc)}


def post_update(
    url: str,
    add_text: str = "",
    remove=(),
    timeout: float = 30.0,
) -> tuple[int, dict]:
    """POST one dataset delta to ``<url>/update``; ``(status, document)``.

    Same error contract as :func:`post_query`: HTTP failures come back
    as a status + error document, never an exception.
    """
    body = json.dumps({"add": add_text, "remove": list(remove)}).encode("utf-8")
    request = urllib.request.Request(
        f"{url.rstrip('/')}/update",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            document = json.loads(exc.read().decode("utf-8"))
        except Exception:
            document = {"error": str(exc)}
        return exc.code, document
    except (urllib.error.URLError, OSError, ValueError) as exc:
        return 0, {"error": str(exc)}


@dataclass
class LoadResult:
    """What one load run measured."""

    #: Client-observed per-request seconds, successful requests only.
    latencies: list[float] = field(default_factory=list)
    errors: int = 0
    requests: int = 0
    #: Wall-clock seconds from first send to last response.
    seconds: float = 0.0
    #: Workload query index -> the distinct answer payloads observed
    #: (a correct daemon yields exactly one per query, however many
    #: concurrent clients asked).
    answers_by_query: dict[int, list] = field(default_factory=dict)
    #: Dataset updates successfully applied (mixed read/write runs).
    updates: int = 0
    update_errors: int = 0
    #: Client-observed per-update seconds, successful updates only.
    update_latencies: list[float] = field(default_factory=list)

    def record_answers(self, query_index: int, answers) -> None:
        seen = self.answers_by_query.setdefault(query_index, [])
        if answers not in seen:
            seen.append(answers)

    def divergent_queries(self) -> list[int]:
        """Workload queries that ever received two different answers."""
        return sorted(
            index
            for index, seen in self.answers_by_query.items()
            if len(seen) != 1
        )


def run_load(
    url: str,
    scenario: Scenario,
    query_texts: list[str],
    update_texts: list[str] | None = None,
) -> LoadResult:
    """Drive a live daemon with *scenario* over *query_texts*.

    Request *i* (0-based, global across clients) carries workload query
    ``i % len(query_texts)`` — every query is exercised, and with more
    requests than queries the same query is asked concurrently by
    different clients, which is exactly the interleaving the identity
    contract must survive.  With ``rps > 0`` request *i* is not sent
    before ``start + i/rps`` (scheduled pacing, immune to per-request
    sleep drift).

    With ``scenario.update_every = N > 0``, every Nth request slot
    posts the next graph from *update_texts* to ``/update`` instead of
    querying (falling back to a query once the pool is drained).  The
    pool is consumed **in order under one lock held across the POST**,
    so however the client threads interleave, the daemon applies
    ``update_texts[0], [1], ...`` as a strict prefix — which is what
    lets ``--verify`` reconstruct the final dataset for the cold-engine
    comparison.
    """
    if not query_texts:
        raise ScenarioError("run_load needs at least one query")
    if scenario.update_every > 0 and not update_texts:
        raise ScenarioError(
            "scenario sets update_every but no updates were provided"
        )
    method = scenario.method
    updates = list(update_texts or [])
    result = LoadResult()
    lock = threading.Lock()
    update_lock = threading.Lock()
    next_request = 0
    next_update = 0
    start = time.perf_counter()

    def take() -> int | None:
        nonlocal next_request
        with lock:
            if next_request >= scenario.requests:
                return None
            index = next_request
            next_request += 1
            return index

    def send_update() -> bool:
        """Apply the next pooled update; False when the pool is dry."""
        nonlocal next_update
        with update_lock:
            if next_update >= len(updates):
                return False
            add_text = updates[next_update]
            next_update += 1
            sent = time.perf_counter()
            status, _document = post_update(
                url, add_text, timeout=scenario.timeout_seconds
            )
            elapsed = time.perf_counter() - sent
        with lock:
            if status == 200:
                result.updates += 1
                result.update_latencies.append(elapsed)
            else:
                result.update_errors += 1
        return True

    def client() -> None:
        while True:
            index = take()
            if index is None:
                return
            if scenario.rps > 0:
                scheduled = start + index / scenario.rps
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            if (
                scenario.update_every > 0
                and (index + 1) % scenario.update_every == 0
                and send_update()
            ):
                continue
            query_index = index % len(query_texts)
            sent = time.perf_counter()
            status, document = post_query(
                url,
                method,
                query_texts[query_index],
                timeout=scenario.timeout_seconds,
            )
            elapsed = time.perf_counter() - sent
            with lock:
                result.requests += 1
                if status == 200:
                    result.latencies.append(elapsed)
                    result.record_answers(query_index, document.get("answers"))
                else:
                    result.errors += 1

    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}")
        for i in range(scenario.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.seconds = max(time.perf_counter() - start, 1e-9)
    return result


def metrics_of(result: LoadResult) -> dict:
    """The KPI-addressable metrics of one load run."""
    from repro.core.serve import quantile

    latencies = sorted(result.latencies)
    count = len(latencies)
    update_latencies = sorted(result.update_latencies)
    update_count = len(update_latencies)
    return {
        "q50_ms": quantile(latencies, 0.50) * 1e3,
        "q90_ms": quantile(latencies, 0.90) * 1e3,
        "q99_ms": quantile(latencies, 0.99) * 1e3,
        "mean_ms": (sum(latencies) / count * 1e3) if count else 0.0,
        "max_ms": (latencies[-1] * 1e3) if count else 0.0,
        "qps": count / result.seconds,
        "errors": result.errors,
        "requests": result.requests,
        "seconds": result.seconds,
        "updates": result.updates,
        "update_errors": result.update_errors,
        "update_q50_ms": quantile(update_latencies, 0.50) * 1e3,
        "update_mean_ms": (
            (sum(update_latencies) / update_count * 1e3) if update_count else 0.0
        ),
    }


@dataclass(frozen=True, slots=True)
class KpiOutcome:
    """One KPI scored against a run's measured metrics."""

    spec: KpiSpec
    actual: float
    passed: bool

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"{mark}  {self.spec.spec()}  (actual {self.actual:g})"


def evaluate_kpis(
    kpis: tuple[KpiSpec, ...], metrics: dict
) -> list[KpiOutcome]:
    return [
        KpiOutcome(spec=spec, actual=actual, passed=passed)
        for spec in kpis
        for actual, passed in [spec.check(metrics)]
    ]


def bench_record(
    scenario: Scenario,
    metrics: dict,
    outcomes: list[KpiOutcome],
    extra: dict | None = None,
) -> dict:
    """The ``BENCH_pr7.json`` trajectory point of one load run."""
    record = {
        "schema": BENCH_SCHEMA,
        "scenario": scenario.name,
        "method": scenario.method,
        "clients": scenario.clients,
        "requests": scenario.requests,
        "rps": scenario.rps,
        "update_every": scenario.update_every,
        **{key: metrics[key] for key in KPI_METRICS},
        "kpis": [
            {
                "kpi": outcome.spec.spec(),
                "actual": outcome.actual,
                "passed": outcome.passed,
            }
            for outcome in outcomes
        ],
        "passed": all(outcome.passed for outcome in outcomes),
    }
    if extra:
        record.update(extra)
    return record
