"""Grid sharding: cell selectors, shard manifests, resume, and merge.

The paper's figure grid is a (method × dataset) matrix whose cells are
independent, and the ROADMAP's north star is fleet-scale reproduction —
the route distributed subgraph-matching systems take is to split the
grid across machines and merge deterministic partial results.  PR 2's
canonical JSON and ``sweep_digest`` made partial sweeps diffable; this
module makes them **shardable, resumable, and mergeable** without
changing a single result byte:

* :class:`CellSelector` — the ``--only`` selector language
  (``method=ggsx,graphs=40``): per-key value sets, ANDed across keys
  and ORed within a key, always narrowing the grid to a rectangular
  (x values × methods) subgrid.  Unknown keys, unknown methods, and
  selections matching no cells are all loud :class:`SelectorError`\\ s.
* :class:`ShardSpec` — a deterministic ``i/n`` partition of the
  subgrid's cells (stride ``n`` over grid order, so every shard gets a
  mix of x values and methods).  Shards are disjoint and cover the
  grid; shard ``1/1`` is the whole grid.
* :class:`CellAssignment` — the ``--cells`` language: an *arbitrary*
  explicit cell set, the shape cost-balanced driver shards
  (:mod:`repro.core.driver`) need and neither stride shards nor
  rectangular selectors can express.
* :class:`ShardManifest` — the canonical-JSON record of one (partial)
  run: the subgrid, every completed cell with its timing-free digest,
  its measured seconds, its static cost units, and the content address
  of its index build in the artifact store
  (:mod:`repro.indexes.store`), when one was used.  Manifests are the
  unit of resume (skip completed cells), of merge (stitch shards), and
  of the cost-model feedback loop (:func:`cost_history` feeds measured
  seconds back into :func:`repro.core.scheduling.estimate_cost`).
* :func:`merge_manifests` — stitches shard manifests back into one
  :class:`~repro.core.experiments.SweepResult` whose canonical JSON is
  byte-identical (same ``sweep_digest``) to an unsharded run of the
  same subgrid.  Overlapping shards must agree: two manifests claiming
  the same cell with different digests raise a :class:`MergeError`
  naming the cell.
* :class:`SweepPlan` — what the sweep functions consume: selector +
  shard + resume manifest, applied while generating tasks so datasets
  of fully skipped x values are never even generated.

Determinism contract: cells are canonical (timing-free content is a
pure function of method, dataset, and workloads), datasets are a pure
function of ``(profile, x, seed)``, and merged sweeps list cells and
dataset statistics in grid order (x outer, method inner) — exactly the
insertion order of a sequential unsharded run.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.experiments import SweepResult
from repro.core.runner import MethodCell
from repro.core.scheduling import CostHistory
from repro.core.serialization import (
    canonical_cell,
    cell_from_dict,
    cell_to_dict,
    stats_from_dict,
    stats_to_dict,
    x_key,
)
from repro.utils.hashing import stable_digest

__all__ = [
    "MANIFEST_SCHEMA",
    "CellAssignment",
    "CellSelector",
    "ManifestCell",
    "ManifestError",
    "MergeError",
    "SelectorError",
    "ShardManifest",
    "ShardSpec",
    "SweepPlan",
    "cell_digest",
    "cell_seconds",
    "cost_history",
    "load_manifest",
    "manifest_for",
    "manifest_path_for",
    "manifest_from_json",
    "manifest_records",
    "manifest_to_json",
    "merge_manifests",
    "parse_cells",
    "parse_only",
    "parse_shard",
    "save_manifest",
]

MANIFEST_SCHEMA = "repro-shard-manifest-v1"
_MANIFEST_SCHEMA = MANIFEST_SCHEMA

#: Figure x-axis label -> the selector key that addresses it.
_AXIS_KEYS = {
    "number of nodes": "nodes",
    "density": "density",
    "labels": "labels",
    "number of graphs": "graphs",
    "dataset": "dataset",
    "scale": "scale",
}

#: Every key the selector language accepts.
_KNOWN_KEYS = ("method", "x") + tuple(_AXIS_KEYS.values())


class SelectorError(ValueError):
    """A ``--only`` selector that cannot be applied: unknown key,
    unknown value, key for the wrong sweep axis, or empty selection."""


class ManifestError(ValueError):
    """A shard manifest that cannot be read or does not fit this run."""


class MergeError(ValueError):
    """Shard manifests that cannot be stitched: incompatible grids,
    divergent overlapping cells, or (unless allowed) missing cells."""


# ----------------------------------------------------------------------
# the --only selector language
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellSelector:
    """A rectangular grid restriction: key -> accepted string values.

    Keys are ANDed, values of one key are ORed, and every value is
    matched against ``str(x)`` (for axis keys) or the method name — so
    ``method=ggsx,method=naive,graphs=40`` selects the {ggsx, naive} ×
    {40} subgrid of the graph-count sweep.
    """

    #: (key, accepted values) sorted by key — the canonical form.
    clauses: tuple[tuple[str, tuple[str, ...]], ...]

    @classmethod
    def parse(cls, specs: Sequence[str]) -> "CellSelector":
        """Parse one or more ``--only`` arguments (comma-separated
        ``KEY=VALUE`` clauses each).  Unknown keys fail loudly."""
        values_of: dict[str, list[str]] = {}
        for spec in specs:
            for clause in spec.split(","):
                clause = clause.strip()
                if not clause:
                    continue
                key, separator, value = clause.partition("=")
                key, value = key.strip(), value.strip()
                if not separator or not key or not value:
                    raise SelectorError(
                        f"--only expects KEY=VALUE clauses, got {clause!r}"
                    )
                if key not in _KNOWN_KEYS:
                    known = ", ".join(_KNOWN_KEYS)
                    raise SelectorError(
                        f"unknown selector key {key!r}; expected one of {known}"
                    )
                bucket = values_of.setdefault(key, [])
                if value not in bucket:
                    bucket.append(value)
        if not values_of:
            raise SelectorError("--only selects nothing (no clauses given)")
        return cls(
            clauses=tuple(
                (key, tuple(values)) for key, values in sorted(values_of.items())
            )
        )

    def as_dict(self) -> dict[str, list[str]]:
        """JSON shape of the selector (also its equality identity)."""
        return {key: list(values) for key, values in self.clauses}

    def narrow(
        self, x_values: Sequence, methods: Sequence[str], x_name: str
    ) -> tuple[list, list[str]]:
        """Apply the selector to one sweep's grid.

        Returns the selected ``(x values, methods)`` in original order.
        A value matching nothing it could ever match — a method not in
        the roster, an x value not on this sweep's axis — is rejected
        loudly rather than silently selecting zero cells.
        """
        axis_key = _AXIS_KEYS.get(x_name, "x")
        selected_x = list(x_values)
        selected_methods = list(methods)
        for key, values in self.clauses:
            if key == "method":
                unknown = [v for v in values if v not in methods]
                if unknown:
                    roster = ", ".join(methods)
                    raise SelectorError(
                        f"--only method={unknown[0]!r} is not in this sweep's "
                        f"roster ({roster})"
                    )
                selected_methods = [m for m in methods if m in values]
            elif key in (axis_key, "x"):
                known = {str(x) for x in x_values}
                unknown = [v for v in values if v not in known]
                if unknown:
                    axis = ", ".join(str(x) for x in x_values)
                    raise SelectorError(
                        f"--only {key}={unknown[0]!r} matches no x value of "
                        f"this sweep (axis {x_name!r}: {axis})"
                    )
                # Intersect with any previous axis clause (the alias and
                # the generic 'x' key AND together, like distinct keys).
                selected_x = [x for x in selected_x if str(x) in values]
            else:
                raise SelectorError(
                    f"selector key {key!r} does not apply to this sweep "
                    f"(its x axis is {x_name!r}, addressed as "
                    f"{axis_key!r} or 'x')"
                )
        if not selected_x or not selected_methods:
            raise SelectorError("--only selects no cells")
        return selected_x, selected_methods


def parse_only(specs: Sequence[str] | None) -> CellSelector | None:
    """``--only`` arguments -> selector (``None`` when no flags given)."""
    if not specs:
        return None
    return CellSelector.parse(specs)


# ----------------------------------------------------------------------
# shard specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """Shard ``index`` (1-based) of ``count`` equal stride partitions."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SelectorError(f"--shard needs at least 1 shard, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise SelectorError(
                f"--shard index must be in 1..{self.count}, got {self.index}"
            )

    def take(self, keys: Sequence) -> list:
        """This shard's share of *keys*: every ``count``-th cell starting
        at ``index - 1``.  Stride (rather than contiguous blocks) mixes
        x values and methods within each shard, balancing load without
        a cost model.  Shards are disjoint and jointly cover *keys*."""
        return list(keys[self.index - 1 :: self.count])

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def parse_shard(text: str | None) -> ShardSpec | None:
    """Parse an ``I/N`` shard argument (``None`` passes through)."""
    if text is None:
        return None
    head, separator, tail = text.partition("/")
    try:
        if not separator:
            raise ValueError
        index, count = int(head), int(tail)
    except ValueError:
        raise SelectorError(f"--shard expects I/N (e.g. 2/8), got {text!r}")
    return ShardSpec(index=index, count=count)


# ----------------------------------------------------------------------
# explicit cell assignments (cost-balanced driver shards)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellAssignment:
    """An explicit list of grid cells one invocation must run.

    :class:`ShardSpec` can only express stride partitions, and
    :class:`CellSelector` only rectangular subgrids — but cost-balanced
    shard assignment (:mod:`repro.core.driver`) hands each shard an
    *arbitrary* cell set.  ``--cells`` carries that set: ``X:METHOD``
    entries matched against ``str(x)`` and the method roster, exactly
    like selector values.  The assignment restricts which cells
    *execute*; the manifest still records the full (selector-narrowed)
    grid, so driver shards merge like stride shards do.
    """

    #: ``(str(x), method)`` entries, in the order given (deduplicated).
    entries: tuple[tuple[str, str], ...]

    @classmethod
    def parse(cls, specs: Sequence[str]) -> "CellAssignment":
        """Parse one or more ``--cells`` arguments (comma-separated
        ``X:METHOD`` entries each)."""
        entries: list[tuple[str, str]] = []
        for spec in specs:
            for item in spec.split(","):
                item = item.strip()
                if not item:
                    continue
                x, separator, method = item.rpartition(":")
                x, method = x.strip(), method.strip()
                if not separator or not x or not method:
                    raise SelectorError(
                        f"--cells expects X:METHOD entries, got {item!r}"
                    )
                if (x, method) not in entries:
                    entries.append((x, method))
        if not entries:
            raise SelectorError("--cells selects nothing (no entries given)")
        return cls(entries=tuple(entries))

    @classmethod
    def of(cls, keys: Sequence[tuple]) -> "CellAssignment":
        """An assignment covering exactly *keys* (driver side)."""
        return cls(entries=tuple((str(x), method) for x, method in keys))

    def spec(self) -> str:
        """The ``--cells`` argument reproducing this assignment."""
        return ",".join(f"{x}:{method}" for x, method in self.entries)

    def resolve(
        self, x_values: Sequence, methods: Sequence[str], x_name: str = "x"
    ) -> list[tuple]:
        """The grid keys this assignment names, in grid order.

        Every entry must match a cell of the (already selector-narrowed)
        grid — an entry matching nothing is rejected loudly, because a
        silently dropped cell would surface much later as a mysterious
        merge-completeness failure.
        """
        x_by_str = {str(x): x for x in x_values}
        wanted: set[tuple] = set()
        for x_str, method in self.entries:
            if x_str not in x_by_str:
                axis = ", ".join(str(x) for x in x_values)
                raise SelectorError(
                    f"--cells entry {x_str}:{method} matches no x value of "
                    f"this sweep (axis {x_name!r}: {axis})"
                )
            if method not in methods:
                roster = ", ".join(methods)
                raise SelectorError(
                    f"--cells entry {x_str}:{method} names a method not in "
                    f"this sweep's roster ({roster})"
                )
            wanted.add((x_by_str[x_str], method))
        return [
            (x, method)
            for x in x_values
            for method in methods
            if (x, method) in wanted
        ]


def parse_cells(specs: Sequence[str] | None) -> CellAssignment | None:
    """``--cells`` arguments -> assignment (``None`` when no flags given)."""
    if not specs:
        return None
    return CellAssignment.parse(specs)


# ----------------------------------------------------------------------
# per-cell derived quantities
# ----------------------------------------------------------------------


def cell_digest(cell: MethodCell) -> str:
    """Timing-free content digest of one cell.

    The per-cell analog of :func:`repro.core.serialization.sweep_digest`:
    two runs of the same (method, dataset, workloads) agree on it in
    every execution mode, so it is the currency shards use to prove
    they computed the same thing.
    """
    payload = json.dumps(cell_to_dict(canonical_cell(cell)), sort_keys=True)
    return f"{stable_digest(payload.encode('utf-8')):016x}"


def cell_seconds(cell: MethodCell) -> float:
    """Measured seconds of one completed cell: build time plus every
    workload's total query time.  Derivable from the cell alone, so it
    is identical in sequential, pooled, arena, and batched modes."""
    total = cell.build_seconds or 0.0
    for size_stats in cell.per_size.values():
        if size_stats.stats is not None:
            total += size_stats.stats.total_query_seconds()
    return total


# ----------------------------------------------------------------------
# shard manifests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ManifestCell:
    """One completed cell as a manifest records it."""

    x: object
    method: str
    #: :func:`cell_digest` of the cell — the cross-shard agreement check.
    digest: str
    #: :func:`cell_seconds` — the cost-model feedback signal.
    seconds: float
    #: Static :func:`~repro.core.scheduling.estimate_cost` units the
    #: scheduler assigned when the cell ran (0.0 when unrecorded).
    cost_units: float
    cell: MethodCell
    #: Content address of the cell's index build in the artifact store
    #: (:func:`repro.indexes.store.artifact_address`; "" when the cell
    #: ran without a store or its build failed).  Deterministic — a
    #: cold and a warm run of the same cell record the same address.
    artifact: str = ""

    @property
    def key(self) -> tuple:
        return (self.x, self.method)


@dataclass
class ShardManifest:
    """Canonical record of one (possibly partial) sweep run.

    Everything a later invocation needs: the full subgrid identity (to
    refuse resuming/merging the wrong run), the completed cells with
    digests and timings (to skip, stitch, and schedule), and the
    dataset statistics of every x value the run touched."""

    experiment: str
    x_name: str
    x_values: list
    methods: list[str]
    query_sizes: tuple[int, ...]
    seed: int
    profile: str
    #: Canonical selector mapping (``{}`` = the full grid).
    selector: dict[str, list[str]] = field(default_factory=dict)
    #: ``(index, count)`` or ``None`` for an unsharded run.
    shard: tuple[int, int] | None = None
    #: Resolved grid keys of an explicit ``--cells`` assignment, or
    #: ``None`` when the whole (sharded) grid ran.  Part of the resume
    #: identity — a driver shard must resume with the same cell set —
    #: but *not* of the merge identity: shards with different
    #: assignments stitch together by design.
    assignment: list[tuple] | None = None
    cells: list[ManifestCell] = field(default_factory=list)
    #: x value -> DatasetStatistics for every x with at least one cell.
    dataset_stats: dict = field(default_factory=dict)

    def grid_keys(self) -> list[tuple]:
        """Every (x, method) of the subgrid, in grid order."""
        return [(x, m) for x in self.x_values for m in self.methods]

    def completed_keys(self) -> set[tuple]:
        return {entry.key for entry in self.cells}

    def grid_identity(self) -> tuple:
        """What two manifests must agree on to describe the same run."""
        return (
            self.experiment,
            self.x_name,
            tuple(self.x_values),
            tuple(self.methods),
            tuple(self.query_sizes),
            self.seed,
            self.profile,
            tuple((k, tuple(v)) for k, v in sorted(self.selector.items())),
        )


def manifest_for(
    sweep: SweepResult,
    experiment: str,
    seed: int,
    profile: str,
    selector: CellSelector | None = None,
    shard: ShardSpec | None = None,
    assignment: CellAssignment | None = None,
) -> ShardManifest:
    """Build the manifest of a just-finished (partial) *sweep*."""
    cells = [
        ManifestCell(
            x=x,
            method=method,
            digest=cell_digest(cell),
            seconds=cell_seconds(cell),
            cost_units=float(sweep.cost_units.get((x, method), 0.0)),
            cell=cell,
            artifact=str(cell.provenance.get("artifact", "")),
        )
        for (x, method), cell in sweep.cells.items()
    ]
    return ShardManifest(
        experiment=experiment,
        x_name=sweep.x_name,
        x_values=list(sweep.x_values),
        methods=list(sweep.methods),
        query_sizes=tuple(sweep.query_sizes),
        seed=seed,
        profile=profile,
        selector=selector.as_dict() if selector is not None else {},
        shard=(shard.index, shard.count) if shard is not None else None,
        assignment=None
        if assignment is None
        else assignment.resolve(sweep.x_values, sweep.methods, sweep.x_name),
        cells=cells,
        dataset_stats=dict(sweep.dataset_stats),
    )


def manifest_to_json(manifest: ShardManifest) -> str:
    """Canonical JSON of a manifest: fixed field order, grid-ordered
    cells, stable x keying — diffable across machines like the sweep
    JSON itself (only the measured ``seconds`` and the execution-mode
    ``artifact`` provenance vary run to run)."""
    order = {key: i for i, key in enumerate(manifest.grid_keys())}
    cells = sorted(manifest.cells, key=lambda entry: order.get(entry.key, -1))
    document = {
        "schema": _MANIFEST_SCHEMA,
        "experiment": manifest.experiment,
        "x_name": manifest.x_name,
        "x_values": manifest.x_values,
        "methods": manifest.methods,
        "query_sizes": list(manifest.query_sizes),
        "seed": manifest.seed,
        "profile": manifest.profile,
        "selector": {k: manifest.selector[k] for k in sorted(manifest.selector)},
        "shard": None
        if manifest.shard is None
        else {"index": manifest.shard[0], "count": manifest.shard[1]},
        "assignment": None
        if manifest.assignment is None
        else [[x, method] for x, method in manifest.assignment],
        "cells": [
            {
                "x": entry.x,
                "method": entry.method,
                "digest": entry.digest,
                "seconds": entry.seconds,
                "cost_units": entry.cost_units,
                "artifact": entry.artifact,
                "cell": cell_to_dict(entry.cell),
            }
            for entry in cells
        ],
        "dataset_stats": {
            x_key(x): stats_to_dict(stats)
            for x, stats in sorted(
                manifest.dataset_stats.items(),
                key=lambda item: _stat_order(manifest.x_values, item[0]),
            )
        },
    }
    return json.dumps(document, indent=2, sort_keys=False)


def _stat_order(x_values: Sequence, x: object) -> int:
    try:
        return x_values.index(x)
    except ValueError:  # pragma: no cover - stats for an off-grid x
        return len(x_values)


def manifest_from_json(text: str) -> ShardManifest:
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ManifestError(f"not valid JSON: {exc}")
    if document.get("schema") != _MANIFEST_SCHEMA:
        raise ManifestError(f"not a {_MANIFEST_SCHEMA} document")
    try:
        return _manifest_from_document(document)
    except (KeyError, TypeError, AttributeError) as exc:
        raise ManifestError(
            f"malformed {_MANIFEST_SCHEMA} document: {type(exc).__name__}: {exc}"
        )


def _manifest_from_document(document: dict) -> ShardManifest:
    shard = document.get("shard")
    assignment = document.get("assignment")
    manifest = ShardManifest(
        experiment=document["experiment"],
        x_name=document["x_name"],
        x_values=document["x_values"],
        methods=document["methods"],
        query_sizes=tuple(document["query_sizes"]),
        seed=document["seed"],
        profile=document.get("profile", ""),
        selector={k: list(v) for k, v in document.get("selector", {}).items()},
        shard=None if shard is None else (shard["index"], shard["count"]),
        assignment=None
        if assignment is None
        else [(entry[0], entry[1]) for entry in assignment],
    )
    for entry in document.get("cells", []):
        cell = cell_from_dict(entry["cell"])
        artifact = str(entry.get("artifact", ""))
        if artifact:
            # Provenance is execution metadata (excluded from digests);
            # restoring it keeps merged manifests' artifact column full.
            cell.provenance["artifact"] = artifact
        manifest.cells.append(
            ManifestCell(
                x=entry["x"],
                method=entry["method"],
                digest=entry["digest"],
                seconds=entry["seconds"],
                cost_units=entry.get("cost_units", 0.0),
                cell=cell,
                artifact=artifact,
            )
        )
    x_by_key = {x_key(x): x for x in manifest.x_values}
    for key, stats in document.get("dataset_stats", {}).items():
        manifest.dataset_stats[x_by_key.get(key, key)] = stats_from_dict(stats)
    return manifest


def save_manifest(manifest: ShardManifest, path: str | Path) -> None:
    Path(path).write_text(manifest_to_json(manifest), encoding="utf-8")


def load_manifest(path: str | Path) -> ShardManifest:
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        raise ManifestError(f"manifest file not found: {path}")
    try:
        return manifest_from_json(text)
    except ManifestError as exc:
        raise ManifestError(f"{path}: {exc}")


def manifest_path_for(json_path: str | Path) -> Path:
    """Where a sweep's manifest lives: beside its ``--json`` file
    (``out.json`` -> ``out.manifest.json``)."""
    path = Path(json_path)
    return path.with_name(f"{path.stem}.manifest.json")


def manifest_records(manifest: ShardManifest) -> list[tuple]:
    """The manifest's cells as raw ``(key, method, seconds, units)``
    cost records — the currency :class:`CostHistory` is built from.
    Exposed separately from :func:`cost_history` so callers can splice
    several evidence sources (a ``--history`` file, a resume manifest)
    into one calibrator; later records win on exact keys."""
    return [
        (entry.key, entry.method, entry.seconds, entry.cost_units)
        for entry in manifest.cells
    ]


def cost_history(manifest: ShardManifest) -> CostHistory:
    """The manifest's measured cell seconds as a scheduling calibrator
    — the feedback loop that replaces the static dataset×queries
    estimate wherever history exists."""
    return CostHistory(manifest_records(manifest))


# ----------------------------------------------------------------------
# merging shards back into one sweep
# ----------------------------------------------------------------------


def merge_manifests(
    manifests: Sequence[ShardManifest], require_complete: bool = True
) -> tuple[SweepResult, ShardManifest]:
    """Stitch shard manifests into one sweep plus its merged manifest.

    All manifests must describe the same subgrid (experiment, axis,
    x values, methods, query sizes, seed, selector).  Overlapping
    cells must agree on their digest — two shards disagreeing on one
    cell raise a :class:`MergeError` naming it, because a divergent
    cell means the shards did not run the same deterministic
    computation and *neither* result can be trusted into the merged
    sweep.  With ``require_complete`` (the default) every grid cell
    must be covered; pass ``False`` to fold a partial set of shards
    into a partial (further mergeable, resumable) result.

    The merged sweep lists cells and dataset statistics in grid order,
    so its canonical JSON is byte-identical to an unsharded run's.
    """
    if not manifests:
        raise MergeError("nothing to merge: no manifests given")
    reference = manifests[0]
    for other in manifests[1:]:
        if other.grid_identity() != reference.grid_identity():
            raise MergeError(
                "manifests describe different runs: "
                f"{_identity_diff(reference, other)}"
            )
    chosen: dict[tuple, ManifestCell] = {}
    for manifest in manifests:
        for entry in manifest.cells:
            recomputed = cell_digest(entry.cell)
            if recomputed != entry.digest:
                raise MergeError(
                    f"corrupt manifest: cell ({reference.x_name}={entry.x}, "
                    f"method={entry.method}) carries digest {entry.digest} "
                    f"but its payload hashes to {recomputed}"
                )
            existing = chosen.get(entry.key)
            if existing is None:
                chosen[entry.key] = entry
            elif existing.digest != entry.digest:
                raise MergeError(
                    f"shards diverge on cell ({reference.x_name}={entry.x}, "
                    f"method={entry.method}): digest {existing.digest} != "
                    f"{entry.digest}"
                )
            elif (
                existing.artifact
                and entry.artifact
                and existing.artifact != entry.artifact
            ):
                # The artifact address is a pure function of (method,
                # index params, dataset content), so two shards of one
                # run disagreeing on it means they built their indexes
                # from different inputs — even though the cells' result
                # digests happen to agree.
                raise MergeError(
                    f"shards diverge on cell ({reference.x_name}={entry.x}, "
                    f"method={entry.method})'s index artifact address: "
                    f"{existing.artifact} != {entry.artifact}"
                )
            elif entry.artifact and not existing.artifact:
                # Agreeing duplicates: prefer the entry that knows its
                # artifact address, keeping the merged column full.
                chosen[entry.key] = entry
    grid = reference.grid_keys()
    missing = [key for key in grid if key not in chosen]
    if missing and require_complete:
        shown = ", ".join(
            f"({reference.x_name}={x}, method={m})" for x, m in missing[:5]
        )
        more = "" if len(missing) <= 5 else f" (+{len(missing) - 5} more)"
        raise MergeError(
            f"merged shards cover {len(chosen)}/{len(grid)} cells; "
            f"missing {shown}{more}"
        )
    stats: dict = {}
    for manifest in manifests:
        for x, entry_stats in manifest.dataset_stats.items():
            existing = stats.get(x)
            if existing is None:
                stats[x] = entry_stats
            elif existing != entry_stats:
                raise MergeError(
                    f"shards diverge on dataset statistics for "
                    f"{reference.x_name}={x}"
                )
    sweep = SweepResult(
        x_name=reference.x_name,
        x_values=list(reference.x_values),
        methods=list(reference.methods),
        query_sizes=tuple(reference.query_sizes),
    )
    for x in reference.x_values:
        if x in stats:
            sweep.dataset_stats[x] = stats[x]
    for key in grid:
        entry = chosen.get(key)
        if entry is not None:
            if entry.artifact:
                # The merged manifest re-derives its artifact column
                # from cell provenance; keep the two in sync even for
                # entries built in-memory rather than loaded from JSON.
                entry.cell.provenance["artifact"] = entry.artifact
            sweep.cells[key] = entry.cell
            sweep.cost_units[key] = entry.cost_units
    merged = manifest_for(
        sweep,
        experiment=reference.experiment,
        seed=reference.seed,
        profile=reference.profile,
    )
    merged.selector = dict(reference.selector)
    return sweep, merged


def _identity_diff(a: ShardManifest, b: ShardManifest) -> str:
    fields = (
        ("experiment", a.experiment, b.experiment),
        ("x_name", a.x_name, b.x_name),
        ("x_values", a.x_values, b.x_values),
        ("methods", a.methods, b.methods),
        ("query_sizes", a.query_sizes, b.query_sizes),
        ("seed", a.seed, b.seed),
        ("profile", a.profile, b.profile),
        ("selector", a.selector, b.selector),
    )
    for name, left, right in fields:
        if left != right:
            return f"{name} {left!r} != {right!r}"
    return "unknown difference"  # pragma: no cover - identity covers all fields


# ----------------------------------------------------------------------
# the plan a sweep executes under
# ----------------------------------------------------------------------


@dataclass
class SweepPlan:
    """Selector + shard + resume state, as the sweep functions see it.

    The sweep functions (:mod:`repro.core.experiments`) apply the plan
    while *generating* tasks: the grid narrows to the selector's
    subgrid, the shard keeps its stride of cells, manifest-completed
    cells are skipped, and x values left with no runnable cell never
    even generate their dataset.  :meth:`finalize` then folds the
    resumed cells back in and restores canonical grid ordering, so the
    saved result is indistinguishable from a fresh run of the whole
    shard.
    """

    selector: CellSelector | None = None
    shard: ShardSpec | None = None
    #: Explicit driver-style cell assignment (``--cells``): only these
    #: grid cells execute, while the manifest keeps the full grid.
    assignment: CellAssignment | None = None
    #: Manifest of a previous invocation of the *same* run to resume.
    resume: ShardManifest | None = None
    #: CLI identity, validated against ``resume`` (and recorded in the
    #: manifest written afterwards).
    experiment: str = ""
    seed: int = 0
    #: Active scale profile name — a CI-scale manifest must not resume
    #: a ``REPRO_SCALE=paper`` run (identical grids, different cells).
    profile: str = ""
    #: Measured-seconds calibration for the scheduler (defaults to the
    #: resume manifest's history).
    history: CostHistory | None = None

    def __post_init__(self) -> None:
        if self.history is None and self.resume is not None:
            self.history = cost_history(self.resume)

    # -- grid application ---------------------------------------------

    def subgrid(
        self, x_values: Sequence, methods: Sequence[str], x_name: str
    ) -> tuple[list, list[str]]:
        """The (x values, methods) this run addresses, selector applied."""
        xs, ms = list(x_values), list(methods)
        if self.selector is not None:
            xs, ms = self.selector.narrow(xs, ms, x_name)
        if self.assignment is not None:
            # Validate eagerly (and with the axis name) so a bad --cells
            # entry fails before any dataset is generated.
            self.assignment.resolve(xs, ms, x_name)
        if self.resume is not None:
            self._check_resume(xs, ms, x_name)
        return xs, ms

    def cells_to_run(
        self, x_values: Sequence, methods: Sequence[str]
    ) -> list[tuple]:
        """Grid-ordered keys this invocation must actually execute."""
        keys = [(x, m) for x in x_values for m in methods]
        if self.shard is not None:
            keys = self.shard.take(keys)
        if self.assignment is not None:
            assigned = set(self.assignment.resolve(x_values, methods))
            keys = [key for key in keys if key in assigned]
        if self.resume is not None:
            done = self.resume.completed_keys()
            keys = [key for key in keys if key not in done]
        return keys

    def finalize(self, result: SweepResult) -> None:
        """Fold resumed cells/stats back in; restore grid ordering."""
        if self.resume is not None:
            for entry in self.resume.cells:
                if entry.key not in result.cells:
                    # Execution metadata: this invocation neither built
                    # nor store-reused the cell — it was restored whole,
                    # and build summaries must say so.
                    entry.cell.provenance["resumed"] = True
                    result.cells[entry.key] = entry.cell
                if entry.cost_units:
                    result.cost_units.setdefault(entry.key, entry.cost_units)
            for x, stats in self.resume.dataset_stats.items():
                result.dataset_stats.setdefault(x, stats)
        result.cells = {
            (x, m): result.cells[(x, m)]
            for x in result.x_values
            for m in result.methods
            if (x, m) in result.cells
        }
        result.dataset_stats = {
            x: result.dataset_stats[x]
            for x in result.x_values
            if x in result.dataset_stats
        }

    # -- resume validation --------------------------------------------

    def _check_resume(
        self, x_values: list, methods: list[str], x_name: str
    ) -> None:
        manifest = self.resume
        assert manifest is not None
        expected = (
            self.experiment,
            x_name,
            tuple(x_values),
            tuple(methods),
            self.seed,
            self.profile,
            self.selector.as_dict() if self.selector is not None else {},
            (self.shard.index, self.shard.count) if self.shard is not None else None,
            None
            if self.assignment is None
            else tuple(self.assignment.resolve(x_values, methods, x_name)),
        )
        found = (
            manifest.experiment,
            manifest.x_name,
            tuple(manifest.x_values),
            tuple(manifest.methods),
            manifest.seed,
            manifest.profile,
            manifest.selector,
            manifest.shard,
            None
            if manifest.assignment is None
            else tuple(tuple(key) for key in manifest.assignment),
        )
        names = ("experiment", "x_name", "x_values", "methods", "seed",
                 "profile", "selector", "shard", "cells")
        for name, want, got in zip(names, expected, found):
            if want != got:
                raise ManifestError(
                    f"--resume manifest does not match this run: "
                    f"{name} {got!r} (manifest) != {want!r} (requested)"
                )
