"""ASCII log-scale line plots of figure series.

The paper presents every result as a log-scale line plot; the report
tables (:mod:`repro.core.report`) carry the numbers, and this module
renders the same series as terminal plots so trends — crossovers,
explosions, flat curves, breaking points — are visible at a glance.

Each method gets a marker character; points on a log (or linear) grid;
missing data simply ends a curve, mirroring the paper's truncated
lines.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

__all__ = ["ascii_plot"]

#: Marker per series, assigned in order.
_MARKERS = "ox+*#@%&"


def ascii_plot(
    title: str,
    series: Mapping[str, list],
    width: int = 72,
    height: int = 18,
    log_y: bool = True,
    y_label: str = "",
) -> str:
    """Render series as an ASCII plot.

    Parameters
    ----------
    series:
        Method → list of ``(x, y-or-None)`` pairs, as produced by
        :class:`~repro.core.experiments.SweepResult` projections.
    log_y:
        Log-scale the y axis (the paper's default); non-positive values
        are clamped to the smallest positive value present.
    """
    points: list[tuple[float, float, int]] = []  # (x, y, series index)
    names = list(series)
    for index, name in enumerate(names):
        for x, y in series[name]:
            if y is None:
                continue
            points.append((float(x), float(y), index))
    if not points:
        return f"{title}\n(no data)\n"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    positive = [y for y in ys if y > 0]
    floor = min(positive) if positive else 1e-12

    def transform_y(y: float) -> float:
        if not log_y:
            return y
        return math.log10(max(y, floor))

    x_low, x_high = min(xs), max(xs)
    y_low = min(transform_y(y) for y in ys)
    y_high = max(transform_y(y) for y in ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, index in points:
        column = round((x - x_low) / x_span * (width - 1))
        row = round((transform_y(y) - y_low) / y_span * (height - 1))
        grid[height - 1 - row][column] = _MARKERS[index % len(_MARKERS)]

    top_label = _format_value(10**y_high if log_y else y_high)
    bottom_label = _format_value(10**y_low if log_y else y_low)
    gutter = max(len(top_label), len(bottom_label)) + 1

    lines = [title]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label
        elif row_index == height - 1:
            label = bottom_label
        else:
            label = ""
        lines.append(f"{label.rjust(gutter)}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    lines.append(
        " " * gutter
        + f" {_format_value(x_low)}"
        + f"{_format_value(x_high)}".rjust(width - len(_format_value(x_low)))
    )
    scale_note = "log-y" if log_y else "linear-y"
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(f"{' ' * gutter} {legend}   [{scale_note}]"
                 + (f" {y_label}" if y_label else ""))
    return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if 0.001 <= magnitude < 10000:
        return f"{value:.4g}"
    return f"{value:.1e}"
