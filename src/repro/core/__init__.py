"""The evaluation framework — the paper's primary contribution.

The paper's value is not a new index but a *systematic methodology*:
build every method over datasets that vary one key parameter at a time,
enforce a per-experiment time limit, and report four metrics (indexing
time, index size, query time, false positive ratio) so the methods'
performance *and scalability* become comparable.  This package is that
methodology as a library:

* :mod:`~repro.core.presets` — scale profiles: the paper's §4.1/§4.2
  configuration, and a CI-sized profile with identical structure;
* :mod:`~repro.core.runner` — build/query execution with budgets,
  producing per-(method, dataset) measurement cells;
* :mod:`~repro.core.experiments` — the sweeps behind Figures 1–6 and
  Table 1;
* :mod:`~repro.core.metrics` — Eq. (3) and aggregation;
* :mod:`~repro.core.report` — ASCII rendering of every figure/table,
  plus the qualitative "shape checks" of §6 (who wins, where methods
  break).
"""

from repro.core.metrics import WorkloadStats, false_positive_ratio, summarize_results
from repro.core.presets import CI_PROFILE, PAPER_PROFILE, ScaleProfile, active_profile
from repro.core.runner import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    MethodCell,
    SizeStats,
    evaluate_method,
    make_method,
)
from repro.core.experiments import (
    SweepResult,
    density_sweep,
    graph_count_sweep,
    labels_sweep,
    nodes_sweep,
    real_dataset_experiment,
)
from repro.core.report import render_series_table, render_sweep, render_table1
from repro.utils.budget import Budget, BudgetExceeded

__all__ = [
    "Budget",
    "BudgetExceeded",
    "ScaleProfile",
    "PAPER_PROFILE",
    "CI_PROFILE",
    "active_profile",
    "false_positive_ratio",
    "WorkloadStats",
    "summarize_results",
    "MethodCell",
    "SizeStats",
    "evaluate_method",
    "make_method",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "STATUS_ERROR",
    "SweepResult",
    "nodes_sweep",
    "density_sweep",
    "labels_sweep",
    "graph_count_sweep",
    "real_dataset_experiment",
    "render_series_table",
    "render_sweep",
    "render_table1",
]
