"""Metric definitions (paper §4.3, Eq. (3)).

The false positive ratio of a query workload is the *average of
per-query ratios*, not the ratio of totals::

    FP = (1/|Q|) Σ_q (|C_q| − |A_q|) / |C_q|

— a distinction that matters when candidate-set sizes vary wildly
across queries.  Queries with empty candidate sets contribute zero.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.indexes.base import QueryResult

__all__ = [
    "false_positive_ratio",
    "WorkloadStats",
    "summarize_results",
    "QueryRecord",
    "record_of",
    "summarize_records",
]


def false_positive_ratio(results: Iterable[QueryResult]) -> float:
    """Eq. (3) over a workload: mean of per-query FP ratios."""
    ratios = [result.false_positive_ratio for result in results]
    if not ratios:
        return 0.0
    return sum(ratios) / len(ratios)


@dataclass(frozen=True, slots=True)
class WorkloadStats:
    """Aggregated metrics of one query workload against one index."""

    num_queries: int
    avg_query_seconds: float
    avg_filter_seconds: float
    avg_verify_seconds: float
    avg_candidates: float
    avg_answers: float
    false_positive_ratio: float

    def total_query_seconds(self) -> float:
        """The workload's total measured query time (mean × count).

        The shard manifests (:mod:`repro.core.sharding`) record each
        cell's measured seconds as build time plus this total over its
        per-size workloads — a mode-independent quantity derivable from
        the cell alone, whichever worker(s) ran it.
        """
        return self.avg_query_seconds * self.num_queries


def summarize_results(results: Sequence[QueryResult]) -> WorkloadStats:
    """Collapse per-query results into the paper's reported quantities."""
    if not results:
        return WorkloadStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    count = len(results)
    return WorkloadStats(
        num_queries=count,
        avg_query_seconds=sum(r.total_seconds for r in results) / count,
        avg_filter_seconds=sum(r.filter_seconds for r in results) / count,
        avg_verify_seconds=sum(r.verify_seconds for r in results) / count,
        avg_candidates=sum(len(r.candidates) for r in results) / count,
        avg_answers=sum(len(r.answers) for r in results) / count,
        false_positive_ratio=false_positive_ratio(results),
    )


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """One query's measurements, reduced to scalars.

    The per-query batching engine (:mod:`repro.core.scheduling`) ships
    these across the process boundary instead of full
    :class:`~repro.indexes.base.QueryResult` objects: the candidate and
    answer *sets* stay in the worker, only their sizes and the (already
    computed, bit-exact) per-query FP ratio travel.
    """

    total_seconds: float
    filter_seconds: float
    verify_seconds: float
    num_candidates: int
    num_answers: int
    false_positive_ratio: float


def record_of(result: QueryResult) -> QueryRecord:
    """Reduce one result to its scalar record."""
    return QueryRecord(
        total_seconds=result.total_seconds,
        filter_seconds=result.filter_seconds,
        verify_seconds=result.verify_seconds,
        num_candidates=len(result.candidates),
        num_answers=len(result.answers),
        false_positive_ratio=result.false_positive_ratio,
    )


def summarize_records(records: Sequence[QueryRecord]) -> WorkloadStats:
    """:func:`summarize_results` over records, arithmetic mirrored exactly.

    Records concatenated back into original query order must aggregate
    to the *bit-identical* statistics a sequential run computes —
    same values summed in the same order, then divided once — so a
    batched workload canonicalizes byte-for-byte like an unbatched one.
    """
    if not records:
        return WorkloadStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    count = len(records)
    ratios = [record.false_positive_ratio for record in records]
    return WorkloadStats(
        num_queries=count,
        avg_query_seconds=sum(r.total_seconds for r in records) / count,
        avg_filter_seconds=sum(r.filter_seconds for r in records) / count,
        avg_verify_seconds=sum(r.verify_seconds for r in records) / count,
        avg_candidates=sum(r.num_candidates for r in records) / count,
        avg_answers=sum(r.num_answers for r in records) / count,
        false_positive_ratio=sum(ratios) / len(ratios),
    )
