"""Budgeted execution of one method over one dataset + workloads.

Each (method, dataset) pair yields a :class:`MethodCell` — one "cell"
of a paper figure: build status/time/size, plus per-query-size workload
statistics.  Budget overruns and implementation failures are recorded
as statuses rather than raised, exactly as the paper reports methods
that "failed to produce an index within the 8-hour limit" or crashed
(gCode on PDBS, §5.1) — the figures simply have no data point there.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.graphs.csr import as_core_dataset, as_core_query
from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.indexes import ALL_INDEX_CLASSES
from repro.indexes.base import GraphIndex
from repro.core.metrics import WorkloadStats, summarize_results
from repro.utils.budget import Budget, BudgetExceeded, MemoryBudgetExceeded

__all__ = [
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "STATUS_MEMORY",
    "STATUS_ERROR",
    "SizeStats",
    "MethodCell",
    "CellTask",
    "make_method",
    "evaluate_method",
    "run_cell",
]

STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
#: The index outgrew its memory allowance (Grapes on huge datasets, §5.2.4).
STATUS_MEMORY = "memory"
STATUS_ERROR = "error"


@dataclass(frozen=True, slots=True)
class SizeStats:
    """Workload outcome for one query size."""

    status: str
    stats: WorkloadStats | None = None
    error: str = ""


@dataclass(slots=True)
class MethodCell:
    """One method's measurements on one dataset configuration."""

    method: str
    build_status: str
    build_seconds: float | None = None
    index_bytes: int | None = None
    build_details: dict = field(default_factory=dict)
    build_error: str = ""
    #: Query size -> workload statistics.
    per_size: dict[int, SizeStats] = field(default_factory=dict)
    #: Execution metadata about where the build came from (artifact
    #: address, ``reused`` flag, original build timestamp).  Never
    #: serialized into sweep JSON and excluded from canonicalization —
    #: a warm (store-reusing) run stays byte-identical to a cold one.
    provenance: dict = field(default_factory=dict)

    # -- figure accessors (None = missing data point) ------------------

    def query_seconds(self) -> float | None:
        """Average query time over all sizes with data (Figures c)."""
        values = [
            cell.stats.avg_query_seconds
            for cell in self.per_size.values()
            if cell.status == STATUS_OK and cell.stats is not None
        ]
        return sum(values) / len(values) if values else None

    def fp_ratio(self) -> float | None:
        """Average false positive ratio over all sizes (Figures d)."""
        values = [
            cell.stats.false_positive_ratio
            for cell in self.per_size.values()
            if cell.status == STATUS_OK and cell.stats is not None
        ]
        return sum(values) / len(values) if values else None

    def query_seconds_for(self, size: int) -> float | None:
        """Average query time for one query size (Figure 4)."""
        cell = self.per_size.get(size)
        if cell is None or cell.status != STATUS_OK or cell.stats is None:
            return None
        return cell.stats.avg_query_seconds


@dataclass(frozen=True, slots=True)
class CellTask:
    """A picklable description of one (method × dataset) cell.

    This is the unit of work the parallel engine ships to worker
    processes (:mod:`repro.core.parallel`): everything
    :func:`evaluate_method` needs, as plain data.  ``key`` is an opaque
    tag the caller uses to place the resulting
    :class:`MethodCell` — sweeps use ``(x_value, method_name)``.
    """

    key: tuple
    method: str
    dataset: GraphDataset
    #: Query size -> queries of that size.
    workloads: Mapping[int, Sequence[Graph]]
    method_config: Mapping[str, object] | None = None
    build_budget_seconds: float | None = None
    query_budget_seconds: float | None = None
    build_memory_bytes: int | None = None
    #: On-disk tier of the index artifact store; ``None`` disables the
    #: store for this cell (legacy always-rebuild behavior).
    index_store_dir: str | None = None
    #: ``False`` forces a paper-faithful rebuild (fresh measured build
    #: timing) even when a matching artifact exists; the fresh build is
    #: still stored for other consumers.
    reuse_indexes: bool = True
    #: Canonical dataset content digest, computed once by the
    #: dispatching parent so the M method-cells over one dataset do not
    #: each re-fingerprint it worker-side (``None`` = compute lazily).
    dataset_digest: int | None = None
    #: Query answer form (:data:`repro.indexes.base.REGIMES`):
    #: transactional graph ids, or single-graph embedding roots.
    regime: str = "transactional"


def run_cell(task: CellTask) -> MethodCell:
    """Execute one cell: a pure, picklable function of its task.

    Builds the index and runs every workload *in the calling process* —
    when dispatched by :class:`repro.core.parallel.ParallelRunner` the
    budgets are therefore enforced inside the worker, and only the
    resulting :class:`MethodCell` crosses the process boundary.
    """
    return evaluate_method(
        task.method,
        task.dataset,
        task.workloads,
        method_config=task.method_config,
        build_budget_seconds=task.build_budget_seconds,
        query_budget_seconds=task.query_budget_seconds,
        build_memory_bytes=task.build_memory_bytes,
        index_store_dir=task.index_store_dir,
        reuse_indexes=task.reuse_indexes,
        dataset_digest=task.dataset_digest,
        regime=task.regime,
    )


def make_method(name: str, config: Mapping[str, object] | None = None) -> GraphIndex:
    """Instantiate a method by its paper name with optional settings."""
    try:
        cls = ALL_INDEX_CLASSES[name]
    except KeyError:
        known = ", ".join(ALL_INDEX_CLASSES)
        raise ValueError(f"unknown method {name!r}; expected one of {known}")
    return cls(**dict(config or {}))


def evaluate_method(
    method_name: str,
    dataset: GraphDataset,
    workloads: Mapping[int, Sequence[Graph]],
    method_config: Mapping[str, object] | None = None,
    build_budget_seconds: float | None = None,
    query_budget_seconds: float | None = None,
    build_memory_bytes: int | None = None,
    index_store_dir: str | None = None,
    reuse_indexes: bool = True,
    dataset_digest: int | None = None,
    regime: str = "transactional",
) -> MethodCell:
    """Build one method over *dataset* and run every workload.

    Parameters
    ----------
    method_name:
        Key into :data:`repro.indexes.ALL_INDEX_CLASSES`.
    workloads:
        Query size → queries of that size.
    build_budget_seconds / query_budget_seconds:
        The paper's 8-hour limits, scaled.  The query budget applies
        per workload (one batch of queries of one size).
    build_memory_bytes:
        Optional memory allowance for the build (the paper's 128 GB
        host); overruns are recorded as ``STATUS_MEMORY``.
    index_store_dir / reuse_indexes / dataset_digest:
        When a store directory is given, a matching
        :class:`~repro.indexes.store.IndexArtifact` replaces the build
        (unless ``reuse_indexes`` is off), and every fresh successful
        build is stored for later cells and invocations.  A reused cell
        reports the artifact's *provenance* build seconds — the
        original measured time, never a fake re-measured one — and tags
        ``cell.provenance``.  Build budgets are not re-enforced on
        reuse.  *dataset_digest* skips re-fingerprinting when the
        caller (e.g. an arena handle) already knows it.
    regime:
        The query answer form every workload runs under —
        ``"transactional"`` graph ids (the default) or
        ``"single-graph"`` embedding roots over a one-graph dataset.
        Building and the artifact store are regime-independent.

    Never raises for method failures; statuses record them.
    """
    # Under the CSR core (the default), the hot loops below see the
    # immutable flat-array dataset; the dict core passes through.
    dataset = as_core_dataset(dataset)
    index = make_method(method_name, method_config)
    cell = MethodCell(method=method_name, build_status=STATUS_OK)

    store = None
    if index_store_dir is not None:
        from repro.indexes.store import shared_store

        store = shared_store(index_store_dir)
        if dataset_digest is None:
            from repro.graphs.dataset import dataset_fingerprint

            dataset_digest = dataset_fingerprint(dataset)
        if reuse_indexes:
            artifact = store.get(method_name, index.index_params(), dataset_digest)
            if artifact is not None:
                from repro.indexes.store import materialize_artifact

                index = materialize_artifact(artifact, dataset)
                provenance = artifact.provenance
                cell.build_seconds = provenance.build_seconds
                cell.index_bytes = provenance.size_bytes
                cell.build_details = dict(provenance.details)
                cell.provenance = {
                    "reused": True,
                    "artifact": artifact.address,
                    "built_at": provenance.created_at,
                    "library_version": provenance.library_version,
                }
                _run_workloads(cell, index, workloads, query_budget_seconds, regime)
                return cell

    build_budget = (
        Budget(
            build_budget_seconds,
            max_bytes=build_memory_bytes,
            phase=f"{method_name} build",
        )
        if build_budget_seconds is not None or build_memory_bytes is not None
        else None
    )
    try:
        report = index.build(dataset, budget=build_budget)
    except MemoryBudgetExceeded:
        cell.build_status = STATUS_MEMORY
        return cell
    except BudgetExceeded:
        cell.build_status = STATUS_TIMEOUT
        return cell
    except (MemoryError, RecursionError, ValueError, RuntimeError) as exc:
        cell.build_status = STATUS_ERROR
        cell.build_error = f"{type(exc).__name__}: {exc}"
        return cell
    cell.build_seconds = report.seconds
    cell.index_bytes = report.size_bytes
    cell.build_details = dict(report.details)
    if store is not None:
        from repro.indexes.store import artifact_from_index

        assert dataset_digest is not None
        try:
            address = store.put(artifact_from_index(index, dataset_digest))
        except NotImplementedError:
            pass  # no payload-split contract (test double): run unstored
        else:
            cell.provenance = {"reused": False, "artifact": address}

    _run_workloads(cell, index, workloads, query_budget_seconds, regime)
    return cell


def _run_workloads(
    cell: MethodCell,
    index: GraphIndex,
    workloads: Mapping[int, Sequence[Graph]],
    query_budget_seconds: float | None,
    regime: str = "transactional",
) -> None:
    """Run every workload through a built *index*, recording per-size
    statistics and statuses on *cell* (shared by the fresh-build and
    artifact-reuse paths)."""
    for size, queries in workloads.items():
        query_budget = (
            Budget(query_budget_seconds, phase=f"{cell.method} queries size {size}")
            if query_budget_seconds is not None
            else None
        )
        # Query admission: convert each workload query to the active
        # core once, here, so filter and verify both see CSR-vs-CSR
        # (queries arrive from generators/IO as builder dict graphs).
        admitted = [as_core_query(query) for query in queries]
        try:
            results = [
                index.query(query, budget=query_budget, regime=regime)
                for query in admitted
            ]
        except BudgetExceeded:
            cell.per_size[size] = SizeStats(status=STATUS_TIMEOUT)
            continue
        except (MemoryError, RecursionError, ValueError, RuntimeError) as exc:
            cell.per_size[size] = SizeStats(
                status=STATUS_ERROR, error=f"{type(exc).__name__}: {exc}"
            )
            continue
        cell.per_size[size] = SizeStats(
            status=STATUS_OK, stats=summarize_results(results)
        )
