"""Contract validation for index implementations.

The filter-and-verify contract (no false negatives in filtering; exact
answers after verification) is what makes every method in this library
interchangeable.  Anyone adding a new :class:`~repro.indexes.base.GraphIndex`
subclass needs a way to check it against ground truth before trusting
benchmark numbers — this module is that harness:

>>> from repro.core.validation import validate_index
>>> from repro.indexes import GraphGrepSXIndex
>>> report = validate_index(lambda: GraphGrepSXIndex(max_path_edges=2),
...                         trials=2, seed=7)
>>> report.ok
True

It fuzzes randomized datasets and workloads (including the adversarial
cases that bite in practice: single-vertex queries, disconnected
queries, unknown labels, queries equal to a whole data graph) and
compares candidates and answers against the naive oracle.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.indexes.base import GraphIndex
from repro.indexes.naive import NaiveIndex
from repro.utils.rng import make_rng

__all__ = ["ContractViolation", "ValidationReport", "validate_index"]


@dataclass(frozen=True, slots=True)
class ContractViolation:
    """One observed breach of the filter-and-verify contract."""

    kind: str          # "false_negative" | "wrong_answers"
    trial: int
    query_repr: str
    detail: str


@dataclass(slots=True)
class ValidationReport:
    """Outcome of a validation run."""

    trials: int
    queries_checked: int = 0
    violations: list[ContractViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (
            f"validation {status}: {self.queries_checked} queries over "
            f"{self.trials} randomized datasets"
        )


def validate_index(
    factory: Callable[[], GraphIndex],
    trials: int = 3,
    queries_per_trial: int = 6,
    seed: int = 0,
    fail_fast: bool = False,
) -> ValidationReport:
    """Fuzz a :class:`GraphIndex` implementation against the oracle.

    Parameters
    ----------
    factory:
        Zero-argument callable producing a fresh, unbuilt index.
    trials:
        Number of randomized (dataset, workload) rounds.
    queries_per_trial:
        Random-walk queries per round, in addition to the adversarial
        fixed cases.
    seed:
        Reproducibility seed; a failing report can always be replayed.
    fail_fast:
        Stop at the first violation instead of collecting all.
    """
    rng = make_rng(seed)
    report = ValidationReport(trials=trials)
    for trial in range(trials):
        config = GraphGenConfig(
            num_graphs=rng.randint(8, 20),
            mean_nodes=rng.randint(8, 14),
            mean_density=rng.uniform(0.12, 0.3),
            num_labels=rng.randint(2, 5),
        )
        dataset = generate_dataset(config, seed=rng.getrandbits(32))
        oracle = NaiveIndex()
        oracle.build(dataset)
        index = factory()
        index.build(dataset)

        for query in _workload(dataset, queries_per_trial, rng):
            report.queries_checked += 1
            truth = oracle.query(query).answers
            candidates = index.filter(query)
            if not truth <= candidates:
                report.violations.append(
                    ContractViolation(
                        kind="false_negative",
                        trial=trial,
                        query_repr=repr(query),
                        detail=f"missing answers: {sorted(truth - candidates)}",
                    )
                )
                if fail_fast:
                    return report
            answers = index.query(query).answers
            if answers != truth:
                report.violations.append(
                    ContractViolation(
                        kind="wrong_answers",
                        trial=trial,
                        query_repr=repr(query),
                        detail=(
                            f"got {sorted(answers)}, expected {sorted(truth)}"
                        ),
                    )
                )
                if fail_fast:
                    return report
    return report


def _workload(dataset: GraphDataset, count: int, rng) -> list[Graph]:
    """Random-walk queries plus the adversarial fixed cases."""
    queries: list[Graph] = []
    for size in (3, 5):
        try:
            queries.extend(
                generate_queries(dataset, count // 2, size, seed=rng.getrandbits(32))
            )
        except ValueError:
            continue
    some_label = dataset[0].label(0)
    other_label = dataset[min(1, len(dataset) - 1)].label(0)
    queries.append(Graph([some_label]))                       # single vertex
    queries.append(Graph([some_label, other_label]))          # disconnected
    queries.append(Graph(["__UNKNOWN__", "__UNKNOWN__"], [(0, 1)]))  # impossible
    queries.append(dataset[rng.randrange(len(dataset))].copy())      # exact graph
    return queries
