"""Sweep orchestration driver: plan, launch, and merge sharded sweeps.

PR 3/4 made the figure grid shardable (``--shard``, canonical shard
manifests, byte-identical ``repro merge``, a content-addressed index
store) — but a human still hand-launched every ``--shard i/n``
invocation and stitched the pieces.  The scalability literature this
reproduction leans on (Sun et al.'s billion-node matching, Das et al.'s
large-graph query processing) is explicit that partitionability is only
half the story: throughput comes from an *orchestration layer* that
balances and coordinates the partitions.  This module is that layer:

* **Planning without datasets** — :func:`experiment_grid` derives a
  sweep's full (x values × methods) grid straight from the scale
  profile, and :func:`plan_units` prices each cell with the same
  dataset-size × query-work shape :func:`repro.core.scheduling
  .estimate_cost` uses, computed from the *configuration* (expected
  graph count, nodes, density) instead of a generated dataset — so a
  launch plans a paper-scale sweep in microseconds.
* **Cost-balanced assignment** — :func:`balanced_partition` runs greedy
  longest-processing-time over per-cell estimated seconds
  (:func:`plan_seconds`: measured seconds from a
  :class:`~repro.core.scheduling.CostHistory` where evidence exists,
  static units otherwise), replacing the stride partition's blind
  round-robin.  :func:`stride_partition` remains available (and
  digest-equivalent) for comparison and reproducibility of old runs.
* **Pluggable executors** — :class:`ShardExecutor` is the seam between
  planning and infrastructure.  :class:`LocalSubprocessExecutor` runs
  shards as concurrent ``python -m repro sweep --cells ...``
  subprocesses; :class:`InProcessExecutor` runs them sequentially in
  the calling process (tests, debugging); :class:`SSHExecutor` and
  :class:`KubernetesExecutor` are documented stubs marking where a
  fleet backend plugs in.
* **Driver run manifests** — :class:`DriverRun` records the planned
  assignment, grid identity, and (after merge) the merged digest in a
  ``<out>.driver.json`` file, so ``repro launch --resume`` reuses the
  *recorded* assignment (new history must not shuffle cells mid-run),
  skips shards whose manifests are complete, and verifies the merged
  digest against the recorded one.
* **Cross-invocation history files** — :func:`append_history` /
  :func:`load_history` persist measured per-cell seconds as JSONL
  (``--history runs.jsonl``), so *any* later invocation calibrates its
  cost model from every run that came before it, without ``--resume``.

The load-bearing invariant: balanced assignment changes *which* cells
land in which shard, never a result byte — the merged sweep's canonical
JSON is byte-identical to the unsharded (and stride-sharded) run's.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from collections.abc import Sequence
from contextlib import redirect_stderr, redirect_stdout
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.presets import ScaleProfile
from repro.core.scheduling import CostHistory
from repro.core.sharding import CellSelector

__all__ = [
    "DRIVER_SCHEMA",
    "HISTORY_SCHEMA",
    "DriverError",
    "DriverRun",
    "EXECUTORS",
    "InProcessExecutor",
    "KubernetesExecutor",
    "LocalSubprocessExecutor",
    "SSHExecutor",
    "ShardCommand",
    "ShardExecutor",
    "append_history",
    "assign_shards",
    "balanced_partition",
    "driver_path_for",
    "driver_run_from_json",
    "driver_run_to_json",
    "experiment_grid",
    "load_driver_run",
    "load_history",
    "load_history_records",
    "make_executor",
    "plan_seconds",
    "plan_units",
    "save_driver_run",
    "shard_json_path",
    "stride_partition",
]

DRIVER_SCHEMA = "repro-driver-run-v1"
HISTORY_SCHEMA = "repro-cost-history-v1"


class DriverError(ValueError):
    """A launch that cannot be planned, executed, resumed, or merged."""


# ----------------------------------------------------------------------
# planning: the grid and its estimated costs, without any dataset
# ----------------------------------------------------------------------

#: experiment name -> (x axis label, profile attribute holding x values).
_EXPERIMENT_AXES = {
    "nodes": ("number of nodes", "nodes_values"),
    "density": ("density", "density_values"),
    "labels": ("labels", "label_values"),
    "graphs": ("number of graphs", "graph_count_values"),
    "real": ("dataset", "real_dataset_names"),
    "massive": ("scale", "massive_scale_values"),
}


def experiment_grid(
    experiment: str,
    profile: ScaleProfile,
    methods: Sequence[str] | None = None,
    selector: CellSelector | None = None,
) -> tuple[str, list, list[str]]:
    """The ``(x_name, x values, methods)`` a launch covers.

    Mirrors exactly what the sweep functions in
    :mod:`repro.core.experiments` would address — same profile values,
    same roster, same selector narrowing — but derived from
    configuration alone, so the driver can partition cells before a
    single dataset exists.
    """
    if experiment not in _EXPERIMENT_AXES:
        known = ", ".join(_EXPERIMENT_AXES)
        raise DriverError(f"unknown experiment {experiment!r}; expected one of {known}")
    x_name, values_attr = _EXPERIMENT_AXES[experiment]
    x_values = list(getattr(profile, values_attr))
    if methods:
        method_names = list(methods)
    elif experiment == "massive":
        # The massive regime has its own default roster (the methods
        # with single-graph filtering worth measuring).
        method_names = list(profile.massive_methods)
    else:
        method_names = list(profile.method_names())
    if selector is not None:
        x_values, method_names = selector.narrow(x_values, method_names, x_name)
    return x_name, x_values, method_names


def plan_units(experiment: str, profile: ScaleProfile, x: object) -> float:
    """Static planning cost of one cell, in ``estimate_cost`` units.

    The runtime estimator prices a cell as dataset weight × (1 + query
    work) from the generated dataset; the planner computes the same
    product from the *expected* dataset shape the profile configures —
    close enough for load balancing, and free.  Deliberately
    method-blind like the runtime estimate; history calibration
    (:func:`plan_seconds`) is what un-blinds it.
    """
    if experiment == "real":
        from repro.generators.realsets import REAL_DATASET_SPECS

        spec = REAL_DATASET_SPECS[str(x).upper()].scaled(
            profile.real_dataset_scale
        )
        num_graphs = float(spec.num_graphs)
        nodes = spec.avg_nodes
        edges = nodes * spec.avg_degree / 2.0
    elif experiment == "massive":
        # One R-MAT graph of 2**scale vertices, edge_factor draws each.
        num_graphs = 1.0
        nodes = float(1 << int(x))
        edges = nodes * profile.massive_edge_factor
    else:
        num_graphs = float(
            x if experiment == "graphs" else profile.default_num_graphs
        )
        nodes = float(x if experiment == "nodes" else profile.default_nodes)
        density = float(
            x if experiment == "density" else profile.default_density
        )
        edges = density * nodes * (nodes - 1.0) / 2.0
    weight = num_graphs * (1.0 + nodes + edges)
    if experiment == "massive":
        query_work = float(
            sum(
                size * profile.massive_queries_per_size
                for size in profile.massive_query_sizes
            )
        )
    else:
        query_work = float(
            sum(size * profile.queries_per_size for size in profile.query_sizes)
        )
    return weight * (1.0 + query_work)


def plan_seconds(
    experiment: str,
    profile: ScaleProfile,
    key: tuple,
    history: CostHistory | None = None,
) -> float:
    """Estimated cost of one ``(x, method)`` cell for shard balancing.

    With *history*, a recorded cell returns its measured seconds and an
    unrecorded one the method's (or global) seconds-per-unit rate times
    the static units; with no usable history the static units pass
    through unchanged.  Either way every cell of one plan is priced in
    the same currency, which is all a partition needs.
    """
    x, method = key
    units = plan_units(experiment, profile, x)
    if history is not None:
        predicted = history.predict_seconds(key, method, units)
        if predicted is not None:
            return predicted
    return units


# ----------------------------------------------------------------------
# partitions: cost-balanced (LPT) and stride
# ----------------------------------------------------------------------


def balanced_partition(costs: Sequence[float], count: int) -> list[list[int]]:
    """Greedy longest-processing-time partition of ``len(costs)`` items.

    Items are taken in descending cost (ties broken by index, so the
    partition is deterministic) and each lands on the currently
    lightest shard (ties broken by shard index).  LPT's makespan is
    within 4/3 of optimal — and, unlike stride, it cannot stack several
    known-expensive cells on one shard.  Each shard's indices come back
    sorted, so cells keep grid order within their shard.
    """
    if count < 1:
        raise DriverError(f"a partition needs at least 1 shard, got {count}")
    shards: list[list[int]] = [[] for _ in range(count)]
    loads = [0.0] * count
    for index in sorted(range(len(costs)), key=lambda i: (-costs[i], i)):
        lightest = min(range(count), key=lambda j: (loads[j], j))
        shards[lightest].append(index)
        loads[lightest] += costs[index]
    return [sorted(shard) for shard in shards]


def stride_partition(total: int, count: int) -> list[list[int]]:
    """The ``--shard i/n`` stride partition, as index lists."""
    if count < 1:
        raise DriverError(f"a partition needs at least 1 shard, got {count}")
    return [list(range(start, total, count)) for start in range(count)]


def assign_shards(
    keys: Sequence[tuple],
    costs: Sequence[float],
    count: int,
    strategy: str = "balanced",
) -> list[list[tuple]]:
    """Partition grid *keys* into ``count`` shards' cell lists.

    ``strategy`` is ``"balanced"`` (LPT over *costs*) or ``"stride"``
    (the cost-blind ``--shard`` partition).  Shards may come back empty
    when ``count`` exceeds the cell count; callers skip launching
    those.  Every key appears in exactly one shard either way — the
    property the partition tests pin.
    """
    if len(keys) != len(costs):
        raise DriverError(
            f"got {len(keys)} cells but {len(costs)} cost estimates"
        )
    if strategy == "balanced":
        parts = balanced_partition(costs, count)
    elif strategy == "stride":
        parts = stride_partition(len(keys), count)
    else:
        raise DriverError(
            f"unknown assignment strategy {strategy!r}; "
            "expected 'balanced' or 'stride'"
        )
    return [[keys[i] for i in part] for part in parts]


def shard_load(cells: Sequence[tuple], costs_by_key: dict) -> float:
    """Total estimated seconds of one shard's cell list."""
    return float(sum(costs_by_key[key] for key in cells))


# ----------------------------------------------------------------------
# executors: how planned shard commands actually run
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardCommand:
    """One shard's planned CLI invocation.

    ``cli_args`` is everything after the program name (``repro``), so
    each executor decides how to wrap it — ``sys.executable -m repro``
    locally, ``ssh host repro ...`` on a fleet.
    """

    shard_index: int
    cli_args: tuple[str, ...]
    #: Where the shard's stdout/stderr land (tail shown on failure).
    log_path: Path


class ShardExecutor:
    """Interface between the driver's plan and an execution substrate.

    Implementations run every :class:`ShardCommand` to completion and
    return the per-command exit codes, in command order.  Executors own
    concurrency (the local executor runs all shards at once; a fleet
    executor would schedule against its cluster); the driver only
    observes exit codes and the shard manifests the sweeps leave
    behind, so any substrate that runs ``repro sweep`` and shares a
    filesystem (or copies manifests back) can plug in.
    """

    #: Registry key and ``--executor`` value.
    name = "abstract"

    def run(self, commands: Sequence[ShardCommand]) -> list[int]:
        raise NotImplementedError


#: Grace period between ``terminate()`` and the ``kill()`` escalation
#: when stopping shard subprocesses (seconds).
_STOP_GRACE_SECONDS = 5.0


def _stop_processes(running: Sequence[tuple], grace: float = _STOP_GRACE_SECONDS) -> None:
    """Stop every ``(process, log)`` pair, escalating to SIGKILL.

    ``terminate()`` first (SIGTERM: shards flush their manifests and
    exit), then ``wait(grace)``, then ``kill()`` for anything still
    alive — a shard wedged in uninterruptible work (or masking SIGTERM)
    must not hang the driver forever on a bare ``wait()``.  Logs are
    closed last so a dying shard's final output still lands.  Never
    raises: teardown runs from exception paths.
    """
    for process, _ in running:
        try:
            process.terminate()
        except OSError:  # pragma: no cover - already reaped
            pass
    for process, log in running:
        try:
            process.wait(timeout=grace)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
        except OSError:  # pragma: no cover - already reaped
            pass
        log.close()


class LocalSubprocessExecutor(ShardExecutor):
    """Run every shard as a concurrent local subprocess.

    Shards are started together and waited on in order — the grid is
    embarrassingly parallel, so no inter-shard scheduling is needed
    beyond the cost-balanced assignment itself.  ``PYTHONPATH`` is
    extended with this process's ``repro`` package location so the
    children resolve the same code regardless of how the parent was
    launched (installed, ``PYTHONPATH=src``, or a pytest run).

    Interruption contract: a ``KeyboardInterrupt`` (Ctrl-C) or any
    other exception raised while waiting stops every running shard —
    ``terminate()``, a bounded ``wait``, then ``kill()`` — instead of
    orphaning them; completed shards keep their manifests, so the
    launch resumes with ``--resume``.
    """

    name = "local"

    #: Seconds a terminated shard gets to flush and exit before SIGKILL.
    stop_grace = _STOP_GRACE_SECONDS

    def run(self, commands: Sequence[ShardCommand]) -> list[int]:
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        running: list[tuple] = []
        try:
            for command in commands:
                log = open(command.log_path, "w", encoding="utf-8")
                try:
                    process = subprocess.Popen(
                        [sys.executable, "-m", "repro", *command.cli_args],
                        stdout=log,
                        stderr=subprocess.STDOUT,
                        env=env,
                    )
                except OSError:
                    log.close()
                    raise
                running.append((process, log))
        except OSError as exc:
            # A mid-loop failure (unwritable log, fork refusal) must not
            # orphan the shards already started: stop them, close their
            # logs, and fail as a driver error — completed shards from
            # earlier launches keep their manifests, so --resume works.
            _stop_processes(running, grace=self.stop_grace)
            raise DriverError(
                f"could not start every shard subprocess: {exc}; "
                "no shards left running — rerun with --resume"
            )
        return self._await(running)

    def _await(self, running: Sequence[tuple]) -> list[int]:
        """Wait for every ``(process, log)`` pair, in order.

        On ``KeyboardInterrupt`` — or any exception out of the wait
        loop — every still-running shard is stopped (with kill
        escalation) before the exception propagates: Ctrl-C on the
        driver must never leave orphaned shard sweeps burning CPU
        behind a dead parent.
        """
        codes = []
        try:
            for process, log in running:
                codes.append(process.wait())
                log.close()
        except BaseException:
            _stop_processes(running[len(codes):], grace=self.stop_grace)
            raise
        return codes


class InProcessExecutor(ShardExecutor):
    """Run shards sequentially via :func:`repro.cli.main.main`.

    No subprocesses, no concurrency: the debugging (and test) executor,
    where monkeypatched profiles and coverage instrumentation apply to
    the shard sweeps too.  Output still lands in the per-shard log
    files, exactly like the local executor's.
    """

    name = "inprocess"

    def run(self, commands: Sequence[ShardCommand]) -> list[int]:
        from repro.cli.main import main

        codes = []
        for command in commands:
            with open(command.log_path, "w", encoding="utf-8") as log:
                with redirect_stdout(log), redirect_stderr(log):
                    codes.append(main(list(command.cli_args)))
        return codes


class SSHExecutor(ShardExecutor):
    """Documented stub: run each shard over SSH on a fleet host.

    The contract a real implementation fills in: start
    ``repro sweep <experiment> --cells ... --json <shared-path>`` on a
    host picked from a pool, stream its log back, and return its exit
    code.  Because shard sweeps communicate *only* through manifest
    files and content-addressed artifact stores, a shared filesystem
    (NFS) or a copy-back step is the whole integration surface — the
    driver's planning, resume, and merge logic is substrate-agnostic.
    """

    name = "ssh"

    def run(self, commands: Sequence[ShardCommand]) -> list[int]:
        raise DriverError(
            "the ssh executor is a documented stub — shard sweeps only "
            "need a host that can run 'repro sweep' against a shared "
            "filesystem; see docs/architecture.md (Layer 5)"
        )


class KubernetesExecutor(ShardExecutor):
    """Documented stub: run each shard as a Kubernetes Job.

    A real implementation maps one :class:`ShardCommand` to one Job
    (image with this package, args = ``repro <cli_args>``, a
    ReadWriteMany volume for shard manifests and the index store),
    waits for completion, and returns container exit codes.  Nothing
    else changes: resume and merge already operate purely on the
    manifest files the Jobs leave on the volume.
    """

    name = "k8s"

    def run(self, commands: Sequence[ShardCommand]) -> list[int]:
        raise DriverError(
            "the k8s executor is a documented stub — one shard maps to "
            "one Job writing its manifest to a shared volume; see "
            "docs/architecture.md (Layer 5)"
        )


EXECUTORS: dict[str, type[ShardExecutor]] = {
    cls.name: cls
    for cls in (
        LocalSubprocessExecutor,
        InProcessExecutor,
        SSHExecutor,
        KubernetesExecutor,
    )
}


def make_executor(name: str) -> ShardExecutor:
    """Instantiate a registered executor by ``--executor`` name."""
    try:
        return EXECUTORS[name]()
    except KeyError:
        known = ", ".join(EXECUTORS)
        raise DriverError(f"unknown executor {name!r}; expected one of {known}")


# ----------------------------------------------------------------------
# the driver run manifest: what --resume resumes
# ----------------------------------------------------------------------


@dataclass
class DriverRun:
    """Canonical record of one launch: identity, plan, and outcome.

    Saved *before* shards start (so a crashed launch resumes with the
    same assignment even if the cost history has since changed) and
    updated with the merged digest afterwards (so a resumed launch can
    verify it reassembled the same bytes)."""

    experiment: str
    profile: str
    seed: int
    x_name: str
    x_values: list
    methods: list[str]
    selector: dict[str, list[str]]
    shards: int
    strategy: str
    jobs: int
    #: Per shard (1-based order): the assigned grid keys.
    assignment: list[list[tuple]] = field(default_factory=list)
    #: Per shard: the plan-time estimated seconds of its cell list.
    estimated_seconds: list[float] = field(default_factory=list)
    #: ``sweep_digest`` of the merged result ("" until merged once).
    merged_digest: str = ""

    def identity(self) -> tuple:
        """What a ``--resume`` launch must agree with."""
        return (
            self.experiment,
            self.profile,
            self.seed,
            self.x_name,
            tuple(self.x_values),
            tuple(self.methods),
            tuple((k, tuple(v)) for k, v in sorted(self.selector.items())),
            self.shards,
        )


def driver_run_to_json(run: DriverRun) -> str:
    document = {
        "schema": DRIVER_SCHEMA,
        "experiment": run.experiment,
        "profile": run.profile,
        "seed": run.seed,
        "x_name": run.x_name,
        "x_values": run.x_values,
        "methods": run.methods,
        "selector": {k: run.selector[k] for k in sorted(run.selector)},
        "shards": run.shards,
        "strategy": run.strategy,
        "jobs": run.jobs,
        "assignment": [
            [[x, method] for x, method in cells] for cells in run.assignment
        ],
        "estimated_seconds": run.estimated_seconds,
        "merged_digest": run.merged_digest,
    }
    return json.dumps(document, indent=2, sort_keys=False)


def driver_run_from_json(text: str) -> DriverRun:
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DriverError(f"not valid JSON: {exc}")
    if not isinstance(document, dict) or document.get("schema") != DRIVER_SCHEMA:
        raise DriverError(f"not a {DRIVER_SCHEMA} document")
    try:
        return DriverRun(
            experiment=document["experiment"],
            profile=document.get("profile", ""),
            seed=document["seed"],
            x_name=document["x_name"],
            x_values=document["x_values"],
            methods=document["methods"],
            selector={
                k: list(v) for k, v in document.get("selector", {}).items()
            },
            shards=document["shards"],
            strategy=document.get("strategy", "balanced"),
            jobs=document.get("jobs", 1),
            assignment=[
                [(entry[0], entry[1]) for entry in cells]
                for cells in document.get("assignment", [])
            ],
            estimated_seconds=list(document.get("estimated_seconds", [])),
            merged_digest=document.get("merged_digest", ""),
        )
    except (KeyError, TypeError, IndexError) as exc:
        raise DriverError(
            f"malformed {DRIVER_SCHEMA} document: {type(exc).__name__}: {exc}"
        )


def save_driver_run(run: DriverRun, path: str | Path) -> None:
    Path(path).write_text(driver_run_to_json(run), encoding="utf-8")


def load_driver_run(path: str | Path) -> DriverRun:
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        raise DriverError(f"driver run manifest not found: {path}")
    try:
        return driver_run_from_json(text)
    except DriverError as exc:
        raise DriverError(f"{path}: {exc}")


def driver_path_for(json_path: str | Path) -> Path:
    """Where a launch's driver run manifest lives: beside its ``--json``
    output (``out.json`` -> ``out.driver.json``)."""
    path = Path(json_path)
    return path.with_name(f"{path.stem}.driver.json")


def shard_json_path(json_path: str | Path, index: int, count: int) -> Path:
    """Where shard *index* of *count* writes its sweep JSON (its
    manifest then lands beside it, per :func:`manifest_path_for`)."""
    path = Path(json_path)
    return path.with_name(f"{path.stem}.shard{index}of{count}{path.suffix or '.json'}")


# ----------------------------------------------------------------------
# cross-invocation history files (--history runs.jsonl)
# ----------------------------------------------------------------------


def append_history(
    path: str | Path,
    manifest,
    experiment: str,
    keys: "set[tuple] | None" = None,
) -> int:
    """Append one JSONL cost record per completed manifest cell.

    *keys*, when given, limits the append to those grid keys — the
    cells an invocation actually executed, so resumed/restored cells
    are not re-logged on every resume.  Returns the record count.
    The file is append-only and line-oriented on purpose: concurrent
    shards, crashed runs, and multiple experiments can all share one
    file, and the loader simply skips what it cannot use.
    """
    lines = []
    for entry in manifest.cells:
        if keys is not None and entry.key not in keys:
            continue
        lines.append(
            json.dumps(
                {
                    "schema": HISTORY_SCHEMA,
                    "experiment": experiment,
                    "profile": manifest.profile,
                    "seed": manifest.seed,
                    "x": entry.x,
                    "method": entry.method,
                    "seconds": entry.seconds,
                    "units": entry.cost_units,
                },
                sort_keys=True,
            )
        )
    if lines:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    return len(lines)


def load_history_records(
    path: str | Path, experiment: str, profile: str
) -> list[tuple]:
    """Cost records from a history file matching *experiment*/*profile*.

    Only same-experiment, same-profile records are usable: a CI-scale
    cell's seconds say nothing about a ``REPRO_SCALE=paper`` cell, and
    x values collide across experiments (``nodes=40`` vs ``graphs=40``).
    Malformed or foreign lines are skipped, not fatal — a shared
    append-only file may interleave writers or tear a final line.
    Returns ``(key, method, seconds, units)`` tuples in file order
    (later records win on exact keys inside :class:`CostHistory`).
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    records: list[tuple] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(document, dict):
            continue
        if document.get("schema") != HISTORY_SCHEMA:
            continue
        if (
            document.get("experiment") != experiment
            or document.get("profile") != profile
        ):
            continue
        try:
            records.append(
                (
                    (document["x"], document["method"]),
                    document["method"],
                    float(document["seconds"]),
                    float(document["units"]),
                )
            )
        except (KeyError, TypeError, ValueError):
            continue
    return records


def load_history(
    path: str | Path, experiment: str, profile: str
) -> CostHistory | None:
    """A :class:`CostHistory` from a history file (``None`` when the
    file holds nothing usable for this experiment/profile)."""
    records = load_history_records(path, experiment, profile)
    return CostHistory(records) if records else None
