"""The online query tier: a long-lived daemon answering subgraph queries.

Everything before this module is *offline*: ``repro sweep``/``launch``
reproduce the paper's figures as batch jobs and exit.  The production
systems this reproduction models (and the ROADMAP's north star — heavy
traffic from many concurrent clients) face the opposite shape: indexes
are built **once**, kept hot, and amortized over an unbounded query
stream.  This module is that tier:

* A :class:`QueryService` loads one dataset, warms one built index per
  method — served from the content-addressed artifact store
  (:mod:`repro.indexes.store`) when a matching build exists, built
  fresh (and written through) otherwise — and answers query workloads
  from concurrent callers.  Warm-up can fan the per-method builds out
  across the persistent pool's workers (``jobs > 1``), shipping the
  built structures back as artifacts.
* A :class:`ReproHTTPServer` (stdlib ``ThreadingHTTPServer``; no
  framework dependency) exposes the service over three endpoints:
  ``GET /healthz`` (liveness + warm-index inventory), ``GET /metrics``
  (request counts, QPS, latency quantiles), and ``POST /query``
  (a ``.gfd`` query workload in, per-query answer id lists out).
* :func:`run_server` owns the daemon lifecycle: SIGTERM/SIGINT flip a
  shutdown event, the accept loop stops, **in-flight requests drain**
  (``block_on_close``, non-daemon request threads), the persistent
  pool closes (idempotently — the ``atexit`` hook fires later on the
  same, now no-op, path), and the process exits 0.

Answer identity is the load-bearing contract, exactly as byte-identity
is for the offline engine: a query answered by the daemon returns the
same sorted answer-id lists as ``repro query`` over the same artifacts.
Methods whose indexes mutate at query time (Tree+Δ adopts features of
failed queries) are serialized per method behind an ``RLock``, so
concurrency can reorder *across* methods but never interleave inside
one index — the store's memory tiers are themselves lock-guarded for
the same reason.
"""

from __future__ import annotations

import hashlib
import json
import math
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.runner import make_method
from repro.graphs.csr import active_graph_core, as_core_dataset, as_core_query
from repro.graphs.dataset import (
    DatasetDelta,
    GraphDataset,
    apply_delta,
    dataset_fingerprint,
    delta_fingerprint,
)
from repro.graphs.graph import GraphError
from repro.graphs.io import loads_dataset
from repro.indexes import ALL_INDEX_CLASSES

__all__ = [
    "MethodState",
    "QueryService",
    "RequestMetrics",
    "ReproHTTPServer",
    "ServeError",
    "answers_of",
    "make_server",
    "quantile",
    "run_server",
]


class ServeError(RuntimeError):
    """A service that cannot warm up or answer (bad method, bad query)."""


# ----------------------------------------------------------------------
# request metrics: what /metrics reports and the load generator asserts
# ----------------------------------------------------------------------


def quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted sample (0 on empty).

    Nearest-rank (not interpolated) so the reported q50 is a latency
    that actually happened — the convention of the redisgraph-benchmark
    harnesses whose KPI format the load generator mirrors.
    """
    if not sorted_values:
        return 0.0
    if q <= 0.0:
        return sorted_values[0]
    # 1-based nearest rank is ceil(q * n); clamp for q > 1.
    rank = min(len(sorted_values), math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


class RequestMetrics:
    """Thread-safe recorder of per-request latencies and errors.

    Every request thread of the daemon records into one instance; the
    lock makes the append + counter increments atomic.  ``snapshot``
    computes QPS over the service's lifetime and nearest-rank latency
    quantiles — the exact quantities ``repro bench serve`` asserts KPIs
    against server-side.
    """

    #: Retain at most this many latencies (newest win); quantiles over
    #: an unbounded daemon lifetime would otherwise grow without limit.
    max_samples = 100_000

    def __init__(self, clock=time.perf_counter) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._started = clock()
        self._latencies: list[float] = []
        self._requests = 0
        self._errors = 0

    def record(self, seconds: float, error: bool = False) -> None:
        with self._lock:
            self._requests += 1
            if error:
                self._errors += 1
            else:
                self._latencies.append(seconds)
                if len(self._latencies) > self.max_samples:
                    del self._latencies[: -self.max_samples]

    def snapshot(self) -> dict:
        """Current counters and latency quantiles, as a JSON-able dict."""
        with self._lock:
            uptime = max(self._clock() - self._started, 1e-9)
            latencies = sorted(self._latencies)
            requests = self._requests
            errors = self._errors
        return {
            "requests": requests,
            "errors": errors,
            "uptime_seconds": uptime,
            "qps": requests / uptime,
            "latency_ms": {
                "q50": quantile(latencies, 0.50) * 1e3,
                "q90": quantile(latencies, 0.90) * 1e3,
                "q99": quantile(latencies, 0.99) * 1e3,
                "mean": (sum(latencies) / len(latencies) * 1e3)
                if latencies
                else 0.0,
                "max": (latencies[-1] * 1e3) if latencies else 0.0,
            },
        }


# ----------------------------------------------------------------------
# the service: one dataset, warm indexes, locked answering
# ----------------------------------------------------------------------


@dataclass(slots=True)
class MethodState:
    """One warm index plus the lock serializing queries through it."""

    index: object
    #: Tree+Δ mutates its Δ table per query; every method answers under
    #: its own lock so concurrent clients cannot interleave inside one
    #: index structure (methods still answer in parallel to each other).
    lock: threading.RLock = field(default_factory=threading.RLock)
    build_seconds: float = 0.0
    index_bytes: int = 0
    reused: bool = False
    artifact: str = ""


def answers_of(results) -> list[list[int]]:
    """Per-query sorted answer-id lists — the identity-bearing payload.

    The exact reduction ``repro query`` applies before comparing
    methods (``tuple(tuple(sorted(r.answers)))``), as JSON-able lists:
    a daemon answer and a batch answer for the same query must be
    **equal element for element**.
    """
    return [sorted(result.answers) for result in results]


def _warm_worker(payload: tuple) -> tuple:
    """Pool-side warm-up: build (or fetch) one method, return its artifact.

    Top-level for pickling.  The heavy structure crosses back as an
    :class:`~repro.indexes.store.IndexArtifact` — the same contract the
    offline engine reuses builds through — and the parent materializes
    it against its own dataset instance.
    """
    from repro.core.arena import ArenaHandle, cached_dataset
    from repro.indexes.store import artifact_from_index, shared_store

    dataset, method, options, digest, store_dir, reuse = payload
    if isinstance(dataset, ArenaHandle):
        resolved = cached_dataset(dataset)
    else:
        resolved = as_core_dataset(dataset)
    store = shared_store(store_dir) if store_dir else None
    index = make_method(method, options)
    if store is not None and reuse:
        artifact = store.get(method, index.index_params(), digest)
        if artifact is not None:
            return method, artifact, True
    index.build(resolved)
    artifact = artifact_from_index(index, digest)
    if store is not None:
        store.put(artifact)
    return method, artifact, False


class QueryService:
    """Warm indexes over one dataset, answering concurrent workloads.

    Parameters
    ----------
    dataset:
        The data-graph collection queries run against (converted to the
        active graph core once, here, so every request thread shares
        the same immutable CSR structures).
    methods:
        Method names to warm (default: the full roster).
    method_options:
        ``--option`` map; each method receives the subset its
        constructor accepts, like ``repro query``.
    index_store_dir / reuse_indexes:
        The content-addressed artifact store to serve builds from (and
        write fresh builds to).  ``reuse_indexes=False`` forces fresh
        builds, still written through.
    """

    def __init__(
        self,
        dataset: GraphDataset,
        methods: list[str] | None = None,
        method_options: dict | None = None,
        index_store_dir: str | None = None,
        reuse_indexes: bool = True,
        name: str = "",
    ) -> None:
        self.dataset = as_core_dataset(dataset)
        self.name = name or getattr(dataset, "name", "") or "dataset"
        self.methods = list(methods) if methods else list(ALL_INDEX_CLASSES)
        for method in self.methods:
            if method not in ALL_INDEX_CLASSES:
                known = ", ".join(ALL_INDEX_CLASSES)
                raise ServeError(
                    f"unknown method {method!r}; expected one of {known}"
                )
        self.method_options = dict(method_options or {})
        self.index_store_dir = index_store_dir
        self.reuse_indexes = reuse_indexes
        self.dataset_digest = dataset_fingerprint(self.dataset)
        self._states: dict[str, MethodState] = {}
        #: Serializes whole-service updates: one delta swaps every
        #: method's index and then the dataset, atomically with respect
        #: to other updates (queries serialize per method as usual).
        self._update_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending_updates = 0
        self.updates_applied = 0
        #: Parsed + core-converted query workloads, keyed by content
        #: digest of the request text: repeated workloads (the shape of
        #: real query traffic, and of the load generator) skip both the
        #: ``.gfd`` parse and the per-query CSR conversion.
        self._query_cache: OrderedDict[tuple, tuple] = OrderedDict()
        self._query_cache_lock = threading.Lock()
        self.query_cache_hits = 0
        self.query_cache_misses = 0

    #: Bound on cached parsed workloads (newest win); an unbounded
    #: daemon lifetime of distinct queries must not grow memory.
    query_cache_max_entries = 1024

    # -- warm-up -------------------------------------------------------

    def _options_for(self, method: str) -> dict:
        import inspect

        accepted = inspect.signature(
            ALL_INDEX_CLASSES[method].__init__
        ).parameters
        return {
            key: value
            for key, value in self.method_options.items()
            if key in accepted
        }

    def warm(self, jobs: int | None = 1) -> dict[str, MethodState]:
        """Build or fetch every method's index; the daemon's startup.

        ``jobs > 1`` fans the builds out across the persistent pool's
        workers through a shared-memory arena (one dataset segment, not
        one pickle per method); built structures come back as store
        artifacts and are materialized against this process's dataset.
        Sequential warm-up (the default) builds in-process.
        """
        from repro.indexes.store import (
            artifact_from_index,
            materialize_artifact,
            shared_store,
        )

        pending = [m for m in self.methods if m not in self._states]
        if not pending:
            return self._states
        # --jobs convention: None = all cores, 1 = sequential.
        parallel = (jobs is None or jobs > 1) and len(pending) > 1
        if parallel:
            from repro.core.arena import DatasetArena
            from repro.core.parallel import persistent_pool

            arena = DatasetArena.create(self.dataset)
            try:
                tasks = [
                    (
                        arena.handle,
                        method,
                        self._options_for(method),
                        self.dataset_digest,
                        self.index_store_dir,
                        self.reuse_indexes,
                    )
                    for method in pending
                ]
                outcomes = persistent_pool().runner(jobs).map(_warm_worker, tasks)
            finally:
                arena.close()
            for method, artifact, reused in outcomes:
                index = materialize_artifact(artifact, self.dataset)
                self._install(method, index, artifact, reused)
            return self._states
        store = shared_store(self.index_store_dir) if self.index_store_dir else None
        for method in pending:
            index = make_method(method, self._options_for(method))
            artifact = None
            reused = False
            if store is not None and self.reuse_indexes:
                artifact = store.get(
                    method, index.index_params(), self.dataset_digest
                )
                if artifact is not None:
                    index = materialize_artifact(artifact, self.dataset)
                    reused = True
            if artifact is None:
                index.build(self.dataset)
                artifact = artifact_from_index(index, self.dataset_digest)
                if store is not None:
                    store.put(artifact)
            self._install(method, index, artifact, reused)
        return self._states

    def _install(self, method: str, index, artifact, reused: bool) -> None:
        provenance = artifact.provenance
        self._states[method] = MethodState(
            index=index,
            build_seconds=provenance.build_seconds,
            index_bytes=provenance.size_bytes,
            reused=reused,
            artifact=artifact.address,
        )

    # -- answering -----------------------------------------------------

    def answer(self, method: str, queries) -> list:
        """Run *queries* through one warm index, serialized per method.

        Returns the per-query :class:`~repro.indexes.base.QueryResult`
        list in query order.  Raises :class:`ServeError` for a method
        the service does not hold — the daemon's 400, never a silent
        fallback to a cold build mid-request.
        """
        state = self._states.get(method)
        if state is None:
            warm = ", ".join(self._states) or "none"
            raise ServeError(
                f"method {method!r} is not warm on this service "
                f"(warm: {warm})"
            )
        with state.lock:
            return [state.index.query(query) for query in queries]

    def _admitted_queries(self, gfd_text: str) -> tuple:
        """Parse + core-convert a request body, content-digest cached.

        Admission happens once per distinct request text: the parsed
        workload is converted to the active graph core (CSR by default)
        and memoized under a digest of the body, so a repeated query —
        the common case for real traffic and for the load generator —
        costs one hash instead of a ``.gfd`` parse plus per-query CSR
        conversion.  The core is part of the key: a daemon restarted
        under a different ``REPRO_GRAPH_CORE`` never sees stale
        conversions, and the cached graphs are immutable so sharing one
        tuple across request threads is safe.
        """
        key = (
            hashlib.blake2b(gfd_text.encode("utf-8"), digest_size=16).hexdigest(),
            active_graph_core(),
        )
        with self._query_cache_lock:
            cached = self._query_cache.get(key)
            if cached is not None:
                self._query_cache.move_to_end(key)
                self.query_cache_hits += 1
                return cached
            self.query_cache_misses += 1
        try:
            workload = loads_dataset(gfd_text, name="request")
        except GraphError as exc:
            raise ServeError(f"malformed query workload: {exc}")
        queries = tuple(as_core_query(query) for query in workload)
        if not queries:
            raise ServeError("empty query workload")
        with self._query_cache_lock:
            self._query_cache[key] = queries
            self._query_cache.move_to_end(key)
            while len(self._query_cache) > self.query_cache_max_entries:
                self._query_cache.popitem(last=False)
        return queries

    def answer_text(self, method: str, gfd_text: str) -> dict:
        """Answer a ``.gfd``-formatted workload: the HTTP body contract.

        Returns the JSON-able response document: per-query sorted
        answer ids (the identity payload), candidate counts, and the
        measured query seconds.
        """
        queries = self._admitted_queries(gfd_text)
        results = self.answer(method, queries)
        return {
            "method": method,
            "count": len(results),
            "answers": answers_of(results),
            "candidates": [len(r.candidates) for r in results],
            "seconds": sum(r.total_seconds for r in results),
        }

    # -- dynamic updates ----------------------------------------------

    @property
    def staleness(self) -> int:
        """Updates accepted by the daemon but not yet applied.

        The ``/metrics`` gauge the CI mixed read/write leg watches: it
        rises while an update is queued or in flight and returns to 0
        once every warm index reflects the latest dataset.
        """
        with self._pending_lock:
            return self._pending_updates

    def note_pending_update(self, step: int) -> None:
        with self._pending_lock:
            self._pending_updates += step

    def update(self, delta: DatasetDelta) -> dict:
        """Apply *delta* to the dataset and every warm index, atomically.

        Each method's index is brought up to date through its
        ``update()`` contract (incremental where the method supports it,
        rebuild otherwise) — producing, by contract, exactly the index a
        cold build over the post-delta dataset would.  Updated artifacts
        are written through to the store twice: once at their lineage
        address (derived from the parent artifact and the delta digest,
        for ``repro index ls`` derivation chains) and once re-addressed
        as a cold build, so future cold starts over the new dataset
        reuse them.
        """
        from repro.indexes.store import (
            artifact_from_index,
            shared_store,
            strip_lineage,
        )

        with self._update_lock:
            try:
                new_dataset = as_core_dataset(apply_delta(self.dataset, delta))
            except (ValueError, TypeError) as exc:
                raise ServeError(f"bad delta: {exc}")
            new_digest = dataset_fingerprint(new_dataset)
            ddigest = delta_fingerprint(delta)
            store = (
                shared_store(self.index_store_dir)
                if self.index_store_dir
                else None
            )
            summary: dict[str, dict] = {}
            for method, state in self._states.items():
                with state.lock:
                    report = state.index.update(delta, new_dataset=new_dataset)
                    artifact = artifact_from_index(
                        state.index,
                        new_digest,
                        parent=state.artifact,
                        delta_digest=ddigest,
                    )
                    if store is not None:
                        store.put(artifact)
                        store.put(strip_lineage(artifact))
                    state.build_seconds = report.seconds
                    state.index_bytes = report.size_bytes
                    state.reused = False
                    state.artifact = artifact.address
                summary[method] = {
                    "seconds": report.seconds,
                    "maintenance": report.details.get("maintenance", ""),
                    "artifact": artifact.address,
                }
            self.dataset = new_dataset
            self.dataset_digest = new_digest
            self.updates_applied += 1
        return {
            "graphs": len(new_dataset),
            "dataset_digest": f"{new_digest & 0xFFFFFFFFFFFFFFFF:016x}",
            "added": len(delta.added),
            "removed": len(delta.removed),
            "methods": summary,
        }

    def update_text(self, document: dict) -> dict:
        """Apply an update from its HTTP body form.

        The body contract is ``{"add": "<gfd text>", "remove": [ids]}``
        (either key optional); ids refer to the dataset as served at
        the moment the update is applied.
        """
        added: tuple = ()
        add_text = document.get("add", "")
        if add_text:
            try:
                workload = loads_dataset(str(add_text), name="update")
            except GraphError as exc:
                raise ServeError(f"malformed added graphs: {exc}")
            added = tuple(workload)
        removed = document.get("remove", [])
        if not isinstance(removed, list):
            raise ServeError('"remove" must be a list of graph ids')
        try:
            delta = DatasetDelta(added=added, removed=tuple(removed))
        except (ValueError, TypeError) as exc:
            raise ServeError(f"bad delta: {exc}")
        if not delta:
            raise ServeError("empty update: nothing to add or remove")
        return self.update(delta)

    def inventory(self) -> dict:
        """The warm-method map ``/healthz`` reports."""
        return {
            method: {
                "build_seconds": state.build_seconds,
                "index_bytes": state.index_bytes,
                "reused": state.reused,
                "artifact": state.artifact,
            }
            for method, state in self._states.items()
        }


# ----------------------------------------------------------------------
# the HTTP face: ThreadingHTTPServer + a three-endpoint handler
# ----------------------------------------------------------------------


class ReproHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`.

    ``daemon_threads = False`` + ``block_on_close = True`` is the
    graceful-drain half of the shutdown contract: ``shutdown()`` stops
    the accept loop, and ``server_close()`` then *joins* every
    in-flight request thread — a client mid-query gets its answer, not
    a reset connection.
    """

    daemon_threads = False
    block_on_close = True
    #: A drained socket should release its port immediately for the
    #: next daemon (or test) binding it.
    allow_reuse_address = True

    def __init__(self, address, service: QueryService) -> None:
        super().__init__(address, ServeHandler)
        self.service = service
        self.metrics = RequestMetrics()
        #: Update requests are metered separately: mixing second-scale
        #: index maintenance into the query latency quantiles would
        #: drown the numbers the KPIs assert.
        self.update_metrics = RequestMetrics()


class ServeHandler(BaseHTTPRequestHandler):
    """Routes: ``GET /healthz``, ``GET /metrics``, ``POST /query``."""

    server: ReproHTTPServer  # narrowed for readability
    #: Stamped into the Server header; version bumps with the package.
    server_version = "repro-serve/1"

    # The default handler prints one access-log line per request to
    # stderr; at load-generator rates that noise dominates the daemon's
    # own output, and /metrics already records the activity.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _send_json(self, status: int, document: dict) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/healthz":
            service = self.server.service
            metrics = self.server.metrics.snapshot()
            self._send_json(
                200,
                {
                    "status": "ok",
                    "dataset": service.name,
                    "graphs": len(service.dataset),
                    "methods": service.inventory(),
                    "requests": metrics["requests"],
                    "uptime_seconds": metrics["uptime_seconds"],
                },
            )
            return
        if self.path == "/metrics":
            service = self.server.service
            document = self.server.metrics.snapshot()
            document["updates"] = self.server.update_metrics.snapshot()
            document["staleness"] = service.staleness
            document["updates_applied"] = service.updates_applied
            document["query_cache"] = {
                "hits": service.query_cache_hits,
                "misses": service.query_cache_misses,
                "entries": len(service._query_cache),
            }
            self._send_json(200, document)
            return
        self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _read_json_body(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length)
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}")
        if not isinstance(document, dict):
            raise ServeError("request body must be a JSON object")
        return document

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/update":
            self._post_update()
            return
        if self.path != "/query":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        started = time.perf_counter()
        try:
            document = self._read_json_body()
            if "queries" not in document:
                raise ServeError(
                    'request body must be {"method": ..., "queries": "<gfd>"}'
                )
            method = document.get("method", "")
            response = self.server.service.answer_text(
                str(method), str(document["queries"])
            )
        except ServeError as exc:
            self.server.metrics.record(
                time.perf_counter() - started, error=True
            )
            self._send_json(400, {"error": str(exc)})
            return
        self.server.metrics.record(time.perf_counter() - started)
        self._send_json(200, response)

    def _post_update(self) -> None:
        """``POST /update``: apply a dataset delta to every warm index.

        The staleness gauge covers the request's full span — it rises
        the moment the update is accepted and falls only after every
        index reflects it (or the request fails).
        """
        service = self.server.service
        started = time.perf_counter()
        service.note_pending_update(+1)
        try:
            response = service.update_text(self._read_json_body())
        except ServeError as exc:
            self.server.update_metrics.record(
                time.perf_counter() - started, error=True
            )
            self._send_json(400, {"error": str(exc)})
            return
        finally:
            service.note_pending_update(-1)
        self.server.update_metrics.record(time.perf_counter() - started)
        self._send_json(200, response)


# ----------------------------------------------------------------------
# lifecycle: bind, announce, drain on SIGTERM/SIGINT, exit 0
# ----------------------------------------------------------------------


def make_server(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> ReproHTTPServer:
    """Bind a server for *service* (``port=0`` = ephemeral; the bound
    port is ``server.server_address[1]``)."""
    return ReproHTTPServer((host, port), service)


def run_server(
    server: ReproHTTPServer,
    announce=print,
    install_signals: bool = True,
    shutdown_event: threading.Event | None = None,
) -> int:
    """Serve until SIGTERM/SIGINT (or *shutdown_event*), then drain.

    The accept loop runs on a worker thread; this thread blocks on the
    shutdown event, which the signal handlers set.  (``shutdown()``
    must never be called from the thread running ``serve_forever`` —
    with the accept loop elsewhere, the signal-woken main thread calls
    it safely.)  After the drain the persistent pool closes through its
    reentrancy-safe path and the daemon returns 0 — the clean-shutdown
    contract the CI smoke leg asserts.
    """
    from repro.core.parallel import persistent_pool

    stop = shutdown_event if shutdown_event is not None else threading.Event()
    previous: dict[int, object] = {}
    if install_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(
                signum, lambda *_args: stop.set()
            )
    acceptor = threading.Thread(
        target=server.serve_forever, name="repro-serve-accept"
    )
    acceptor.start()
    host, port = server.server_address[:2]
    announce(f"serving on http://{host}:{port} (SIGTERM or Ctrl-C drains)")
    try:
        stop.wait()
    finally:
        announce("shutting down: draining in-flight requests...")
        server.shutdown()
        acceptor.join()
        server.server_close()  # joins request threads (block_on_close)
        persistent_pool().close()
        if install_signals:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        snapshot = server.metrics.snapshot()
        announce(
            f"served {snapshot['requests']} request(s) "
            f"({snapshot['errors']} error(s), "
            f"q50 {snapshot['latency_ms']['q50']:.3f} ms, "
            f"{snapshot['qps']:.1f} req/s lifetime)"
        )
    return 0
