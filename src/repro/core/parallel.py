"""Parallel execution of experiment cells across worker processes.

Every (method × dataset) cell of the paper's figure grid is independent
— the same observation *NScale* and the billion-node matching line of
work exploit — so reproducing a figure is an embarrassingly parallel
workload.  :class:`ParallelRunner` fans :class:`~repro.core.runner.CellTask`
items out to a ``ProcessPoolExecutor``: the index build, batched query
execution, and budget enforcement all happen inside the worker, and
only the finished :class:`~repro.core.runner.MethodCell` (plus a small
execution report) crosses the process boundary back.

Determinism guarantee
---------------------
Results are merged back **in task-submission order**, regardless of the
order workers finish, and a ``jobs=1`` runner executes the exact same
code path in-process.  Cells therefore carry identical *measured
content* (statuses, candidate/answer counts, index sizes, FP ratios)
either way — only wall-clock timing fields differ run to run, exactly
as they do between two sequential runs.
:func:`repro.core.serialization.canonical_sweep` strips those timing
fields, under which a parallel sweep serializes byte-identically to a
sequential one; ``tests/test_parallel_runner.py`` holds that property.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass

from repro.core.arena import SharedCellTask, run_shared_cell
from repro.core.runner import CellTask, MethodCell, run_cell

__all__ = [
    "TaskOutcome",
    "ParallelRunner",
    "PersistentPool",
    "execute_task",
    "persistent_pool",
    "run_cells",
]

#: Called after each task completes: (done_count, total, task).
ProgressCallback = Callable[[int, int, object], None]


@dataclass(frozen=True, slots=True)
class TaskOutcome:
    """One executed cell plus where/how it ran.

    Execution metadata lives here — *not* on the cell — so that
    parallel and sequential runs produce identical cells.
    """

    key: tuple
    cell: MethodCell
    #: PID of the process that executed the task (the parent's own pid
    #: when running sequentially).
    worker_pid: int
    #: Wall-clock seconds the task spent executing in its worker.
    seconds: float


def execute_task(task: CellTask | SharedCellTask) -> MethodCell:
    """Run either task flavor in the calling process."""
    if isinstance(task, SharedCellTask):
        return run_shared_cell(task)
    return run_cell(task)


def _execute(task: CellTask | SharedCellTask) -> tuple[MethodCell, int, float]:
    """Worker-side entry point: run one cell, report pid and duration."""
    start = time.perf_counter()
    cell = execute_task(task)
    return cell, os.getpid(), time.perf_counter() - start


def _mp_context():
    """Prefer fork (cheap on Linux: no re-import, datasets inherited by
    the executor machinery's pickling only); fall back to the platform
    default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class ParallelRunner:
    """Run cell tasks across ``jobs`` worker processes.

    Parameters
    ----------
    jobs:
        Worker process count.  ``None`` means ``os.cpu_count()``;
        ``jobs <= 1`` runs every task in-process with no pool and no
        pickling — the sequential path, byte-for-byte the code the
        workers run.
    worker_initializer / initargs:
        Optional callable invoked once in each worker at startup
        (per-worker logging, instrumentation, warm caches).

    Use as a context manager to keep the pool alive across several
    :meth:`run` / :meth:`map` calls; otherwise each call manages its
    own short-lived pool.

    Examples
    --------
    >>> runner = ParallelRunner(jobs=1)
    >>> runner.jobs
    1
    """

    def __init__(
        self,
        jobs: int | None = None,
        worker_initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> None:
        self.jobs = (os.cpu_count() or 1) if jobs is None else max(1, int(jobs))
        self._worker_initializer = worker_initializer
        self._initargs = initargs
        self._executor: ProcessPoolExecutor | None = None

    # -- pool lifecycle ------------------------------------------------

    def __enter__(self) -> "ParallelRunner":
        if self.jobs > 1 and self._executor is None:
            self._executor = self._make_executor()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down a pool kept alive by context-manager use."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=_mp_context(),
            initializer=self._worker_initializer,
            initargs=self._initargs,
        )

    # -- execution -----------------------------------------------------

    def map(
        self,
        func: Callable,
        items: Sequence,
        progress: Callable[[int, int, object], None] | None = None,
        order: Sequence[int] | None = None,
    ) -> list:
        """Apply a picklable *func* to every item, preserving order.

        The generic primitive under :meth:`run`: results come back in
        ``items`` order no matter which worker finishes first.  With
        ``jobs <= 1`` this is a plain in-process loop.

        *order*, if given, is a permutation of ``range(len(items))``
        giving the **submission** (and, sequentially, execution) order —
        the adaptive scheduler passes a longest-first permutation here.
        Results are *returned* in ``items`` order regardless, so
        scheduling never changes what callers observe.
        """
        total = len(items)
        if order is None:
            order = range(total)
        elif sorted(order) != list(range(total)):
            raise ValueError("order must be a permutation of range(len(items))")
        if self.jobs <= 1:
            results: list = [None] * total
            for done, index in enumerate(order, start=1):
                results[index] = func(items[index])
                if progress is not None:
                    progress(done, total, items[index])
            return results

        owns_pool = self._executor is None
        executor = self._executor or self._make_executor()
        try:
            futures: list[Future | None] = [None] * total
            for index in order:
                futures[index] = executor.submit(func, items[index])
            index_of = {future: i for i, future in enumerate(futures)}
            pending = set(futures)
            done_count = 0
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    done_count += 1
                    if progress is not None:
                        progress(done_count, total, items[index_of[future]])
            # Collect in submission order; a worker-side exception (a
            # programming error — method failures are statuses inside
            # the cell) re-raises here exactly as it would sequentially.
            return [future.result() for future in futures]
        finally:
            if owns_pool:
                executor.shutdown()

    def run(
        self,
        tasks: Sequence[CellTask | SharedCellTask],
        progress: ProgressCallback | None = None,
        order: Sequence[int] | None = None,
    ) -> list[TaskOutcome]:
        """Execute every task; outcomes are in ``tasks`` order.

        *order* is an optional submission permutation (see :meth:`map`);
        outcome order is unaffected by it.
        """
        raw = self.map(_execute, tasks, progress=progress, order=order)
        return [
            TaskOutcome(key=task.key, cell=cell, worker_pid=pid, seconds=seconds)
            for task, (cell, pid, seconds) in zip(tasks, raw)
        ]


def run_cells(
    tasks: Sequence[CellTask | SharedCellTask],
    jobs: int | None = 1,
    progress: ProgressCallback | None = None,
    order: Sequence[int] | None = None,
) -> dict[tuple, MethodCell]:
    """One-shot convenience: tasks in, ``{key: cell}`` out.

    Insertion order of the returned dict equals task order, so callers
    that fill result tables from it get the same ordering a sequential
    loop would have produced.
    """
    outcomes = ParallelRunner(jobs=jobs).run(tasks, progress=progress, order=order)
    return {outcome.key: outcome.cell for outcome in outcomes}


# ----------------------------------------------------------------------
# the persistent pool: one set of workers per CLI invocation
# ----------------------------------------------------------------------


class PersistentPool:
    """Keeps one :class:`ParallelRunner`'s workers alive across sweeps.

    PR 1 span up a fresh ``ProcessPoolExecutor`` per sweep; a CLI
    invocation reproducing several figures paid worker startup (and lost
    every worker-side cache) each time.  A ``PersistentPool`` hands out
    the *same* entered runner for as long as the requested worker count
    stays put, so the arena dataset cache and the batched-mode index
    cache (:mod:`repro.core.arena`, :mod:`repro.core.scheduling`) stay
    warm from one sweep to the next.

    The module-level singleton (:func:`persistent_pool`) is closed via
    ``atexit``; callers that want deterministic teardown (the CLI does)
    call :meth:`close` themselves.

    Teardown is **idempotent and reentrancy-safe**: the online query
    service (:mod:`repro.core.serve`) closes the pool from a signal-
    driven shutdown path while ``atexit`` holds its own registration,
    so ``close`` → ``close`` (double teardown) must be a no-op and a
    ``close`` arriving *while another close is mid-shutdown* — a signal
    handler interrupting the executor teardown — must return
    immediately instead of deadlocking on executor shutdown.
    """

    def __init__(self) -> None:
        self._runner: ParallelRunner | None = None
        self._close_lock = threading.Lock()

    def runner(self, jobs: int | None) -> ParallelRunner:
        """The shared runner for *jobs* workers (``None`` = all cores).

        Reuses the live runner when the resolved worker count matches;
        otherwise the old pool is shut down and a fresh one created.
        """
        resolved = (os.cpu_count() or 1) if jobs is None else max(1, int(jobs))
        if self._runner is not None and self._runner.jobs == resolved:
            return self._runner
        self.close()
        runner = ParallelRunner(jobs=resolved)
        runner.__enter__()  # owns its executor until close()
        self._runner = runner
        return runner

    @property
    def active_runner(self) -> ParallelRunner | None:
        """The currently live runner, if any (introspection/tests)."""
        return self._runner

    def close(self) -> None:
        """Shut down the pooled workers (idempotent, reentrancy-safe).

        A second ``close`` while one is already mid-teardown (a signal
        handler firing during ``atexit``, or vice versa) returns
        immediately — the first closer owns the shutdown, and blocking
        here would deadlock a handler running on the same thread the
        teardown interrupted.
        """
        if not self._close_lock.acquire(blocking=False):
            return  # another close is already tearing the pool down
        try:
            runner, self._runner = self._runner, None
            if runner is not None:
                runner.close()
        finally:
            self._close_lock.release()

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_GLOBAL_POOL = PersistentPool()


def persistent_pool() -> PersistentPool:
    """The process-wide pool shared by every sweep of one invocation."""
    return _GLOBAL_POOL


atexit.register(_GLOBAL_POOL.close)
