"""Parallel execution of experiment cells across worker processes.

Every (method × dataset) cell of the paper's figure grid is independent
— the same observation *NScale* and the billion-node matching line of
work exploit — so reproducing a figure is an embarrassingly parallel
workload.  :class:`ParallelRunner` fans :class:`~repro.core.runner.CellTask`
items out to a ``ProcessPoolExecutor``: the index build, batched query
execution, and budget enforcement all happen inside the worker, and
only the finished :class:`~repro.core.runner.MethodCell` (plus a small
execution report) crosses the process boundary back.

Determinism guarantee
---------------------
Results are merged back **in task-submission order**, regardless of the
order workers finish, and a ``jobs=1`` runner executes the exact same
code path in-process.  Cells therefore carry identical *measured
content* (statuses, candidate/answer counts, index sizes, FP ratios)
either way — only wall-clock timing fields differ run to run, exactly
as they do between two sequential runs.
:func:`repro.core.serialization.canonical_sweep` strips those timing
fields, under which a parallel sweep serializes byte-identically to a
sequential one; ``tests/test_parallel_runner.py`` holds that property.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass

from repro.core.runner import CellTask, MethodCell, run_cell

__all__ = ["TaskOutcome", "ParallelRunner", "run_cells"]

#: Called after each task completes: (done_count, total, task).
ProgressCallback = Callable[[int, int, CellTask], None]


@dataclass(frozen=True, slots=True)
class TaskOutcome:
    """One executed cell plus where/how it ran.

    Execution metadata lives here — *not* on the cell — so that
    parallel and sequential runs produce identical cells.
    """

    key: tuple
    cell: MethodCell
    #: PID of the process that executed the task (the parent's own pid
    #: when running sequentially).
    worker_pid: int
    #: Wall-clock seconds the task spent executing in its worker.
    seconds: float


def _execute(task: CellTask) -> tuple[MethodCell, int, float]:
    """Worker-side entry point: run one cell, report pid and duration."""
    start = time.perf_counter()
    cell = run_cell(task)
    return cell, os.getpid(), time.perf_counter() - start


def _mp_context():
    """Prefer fork (cheap on Linux: no re-import, datasets inherited by
    the executor machinery's pickling only); fall back to the platform
    default where fork is unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class ParallelRunner:
    """Run cell tasks across ``jobs`` worker processes.

    Parameters
    ----------
    jobs:
        Worker process count.  ``None`` means ``os.cpu_count()``;
        ``jobs <= 1`` runs every task in-process with no pool and no
        pickling — the sequential path, byte-for-byte the code the
        workers run.
    worker_initializer / initargs:
        Optional callable invoked once in each worker at startup
        (per-worker logging, instrumentation, warm caches).

    Use as a context manager to keep the pool alive across several
    :meth:`run` / :meth:`map` calls; otherwise each call manages its
    own short-lived pool.

    Examples
    --------
    >>> runner = ParallelRunner(jobs=1)
    >>> runner.jobs
    1
    """

    def __init__(
        self,
        jobs: int | None = None,
        worker_initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> None:
        self.jobs = (os.cpu_count() or 1) if jobs is None else max(1, int(jobs))
        self._worker_initializer = worker_initializer
        self._initargs = initargs
        self._executor: ProcessPoolExecutor | None = None

    # -- pool lifecycle ------------------------------------------------

    def __enter__(self) -> "ParallelRunner":
        if self.jobs > 1 and self._executor is None:
            self._executor = self._make_executor()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut down a pool kept alive by context-manager use."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=_mp_context(),
            initializer=self._worker_initializer,
            initargs=self._initargs,
        )

    # -- execution -----------------------------------------------------

    def map(
        self,
        func: Callable,
        items: Sequence,
        progress: Callable[[int, int, object], None] | None = None,
    ) -> list:
        """Apply a picklable *func* to every item, preserving order.

        The generic primitive under :meth:`run`: results come back in
        ``items`` order no matter which worker finishes first.  With
        ``jobs <= 1`` this is a plain in-process loop.
        """
        total = len(items)
        if self.jobs <= 1:
            results = []
            for done, item in enumerate(items, start=1):
                results.append(func(item))
                if progress is not None:
                    progress(done, total, item)
            return results

        owns_pool = self._executor is None
        executor = self._executor or self._make_executor()
        try:
            futures: list[Future] = [executor.submit(func, item) for item in items]
            index_of = {future: i for i, future in enumerate(futures)}
            pending = set(futures)
            done_count = 0
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    done_count += 1
                    if progress is not None:
                        progress(done_count, total, items[index_of[future]])
            # Collect in submission order; a worker-side exception (a
            # programming error — method failures are statuses inside
            # the cell) re-raises here exactly as it would sequentially.
            return [future.result() for future in futures]
        finally:
            if owns_pool:
                executor.shutdown()

    def run(
        self,
        tasks: Sequence[CellTask],
        progress: ProgressCallback | None = None,
    ) -> list[TaskOutcome]:
        """Execute every task; outcomes are in ``tasks`` order."""
        raw = self.map(_execute, tasks, progress=progress)
        return [
            TaskOutcome(key=task.key, cell=cell, worker_pid=pid, seconds=seconds)
            for task, (cell, pid, seconds) in zip(tasks, raw)
        ]


def run_cells(
    tasks: Sequence[CellTask],
    jobs: int | None = 1,
    progress: ProgressCallback | None = None,
) -> dict[tuple, MethodCell]:
    """One-shot convenience: tasks in, ``{key: cell}`` out.

    Insertion order of the returned dict equals task order, so callers
    that fill result tables from it get the same ordering a sequential
    loop would have produced.
    """
    outcomes = ParallelRunner(jobs=jobs).run(tasks, progress=progress)
    return {outcome.key: outcome.cell for outcome in outcomes}
