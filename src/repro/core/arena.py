"""Shared-memory dataset arena: pack a dataset once, attach everywhere.

PR 1's engine pickles each task's whole dataset into every worker
submission — (method × dataset) cells over one dataset ship that dataset
``|methods|`` times.  Billion-scale matchers avoid exactly this by
keeping graph storage shared across workers (Sun et al.); this module is
the transactional-database analogue: :class:`DatasetArena` serializes a
:class:`~repro.graphs.dataset.GraphDataset` **once** into a
``multiprocessing.shared_memory`` segment (the flat-array format of
:func:`repro.graphs.dataset.pack_dataset`), and workers *attach* to the
segment by name, reading graphs straight out of the mapped buffer via
the zero-copy :class:`~repro.graphs.dataset.PackedDatasetReader`.

Ownership and cleanup are deliberately simple:

* the **creator** (the dispatching process) owns the segment and is the
  only one that unlinks it — in a ``finally`` block at the end of every
  dispatch, and again via ``atexit`` as a backstop;
* **workers** only attach and close; a crashed worker therefore cannot
  leak a segment — the creator's unlink still runs;
* **attachers** immediately detach themselves from Python's
  ``resource_tracker``, which would otherwise unlink attached segments
  when any tracked process exits (the long-standing spawn-mode hazard);
  the creator's own registration stays until unlink, as a crash-time
  safety net.

Worker-side caches (dataset by content fingerprint, built index by
(fingerprint, method, config, budgets)) make the persistent pool
profitable: a worker that has already attached a dataset or built an
index for one batch reuses it for every later task in the invocation.
"""

from __future__ import annotations

import atexit
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

from repro.graphs.csr import CSRDataset, active_graph_core
from repro.graphs.dataset import (
    GraphDataset,
    PackedDatasetReader,
    dataset_fingerprint,
    pack_dataset,
)
from repro.graphs.graph import Graph

__all__ = [
    "ArenaHandle",
    "DatasetArena",
    "SharedCellTask",
    "attach_csr_dataset",
    "attach_dataset",
    "cached_dataset",
    "clear_worker_caches",
    "live_arenas",
    "run_shared_cell",
    "share_task",
]


@dataclass(frozen=True, slots=True)
class ArenaHandle:
    """A picklable reference to one shared-memory dataset segment.

    This — not the dataset — is what crosses the process boundary:
    a few dozen bytes instead of a re-pickled graph collection.  The
    ``fingerprint`` (the canonical 64-bit dataset content digest) keys
    the worker-side caches; the size fields feed the adaptive scheduler's
    cost model without touching the segment.
    """

    shm_name: str
    num_bytes: int
    #: Canonical content digest of the dataset
    #: (:func:`repro.graphs.dataset.dataset_fingerprint`) — the same
    #: value every other layer (index store, manifests, persistence)
    #: uses for dataset identity.
    fingerprint: int
    num_graphs: int
    total_vertices: int
    total_edges: int
    dataset_name: str


#: Creator-side registry of open arenas, for leak checks and atexit.
_LIVE: dict[str, "DatasetArena"] = {}


class DatasetArena:
    """Creator-side owner of one shared-memory dataset segment."""

    def __init__(self, shm: shared_memory.SharedMemory, handle: ArenaHandle) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self.handle = handle

    @classmethod
    def create(cls, dataset: GraphDataset) -> "DatasetArena":
        """Pack *dataset* into a fresh shared-memory segment."""
        payload = pack_dataset(dataset)
        # The creator stays registered with the resource tracker until
        # unlink (which unregisters) — the tracker is the safety net if
        # the creator dies before its finally/atexit cleanup runs.
        shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
        shm.buf[: len(payload)] = payload
        handle = ArenaHandle(
            shm_name=shm.name,
            num_bytes=len(payload),
            fingerprint=dataset_fingerprint(dataset),
            num_graphs=len(dataset),
            total_vertices=dataset.total_vertices(),
            total_edges=dataset.total_edges(),
            dataset_name=dataset.name,
        )
        arena = cls(shm, handle)
        _LIVE[shm.name] = arena
        return arena

    def close(self) -> None:
        """Unmap **and unlink** the segment (idempotent).

        Only the creator calls this; attached workers merely close their
        own mapping (:func:`attach_dataset` does so immediately after
        materializing).
        """
        if self._shm is None:
            return
        _LIVE.pop(self._shm.name, None)
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # already gone (e.g. external cleanup)
            pass
        self._shm = None

    def __enter__(self) -> "DatasetArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._shm is None else self.handle.shm_name
        return f"DatasetArena({state}, {self.handle.num_graphs} graphs)"


def live_arenas() -> tuple[str, ...]:
    """Names of segments this process created and has not yet unlinked."""
    return tuple(_LIVE)


def _cleanup_all() -> None:  # pragma: no cover - exercised at interpreter exit
    for arena in list(_LIVE.values()):
        arena.close()


atexit.register(_cleanup_all)


#: Whether this process shares the creator's resource tracker (decided
#: once, *before* the first attach — see :func:`_tracker_shared`).
_TRACKER_SHARED: bool | None = None


def _tracker_shared() -> bool:
    """True when this process inherited an already-running tracker.

    Fork workers (and the creator itself) share one tracker: attaching
    merely re-adds a name the creator's eventual ``unlink`` removes, so
    they must *not* unregister — the tracker cache is a set, and an
    early removal would make the creator's unlink-time unregister fail.
    A spawn worker runs its **own** tracker, which would unlink every
    segment it saw when the worker exits — destroying the creator's
    data mid-sweep — so there the attach registration must be undone.
    """
    global _TRACKER_SHARED
    if _TRACKER_SHARED is None:
        tracker = getattr(resource_tracker, "_resource_tracker", None)
        _TRACKER_SHARED = getattr(tracker, "_pid", None) is not None
    return _TRACKER_SHARED


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Undo an attach-time tracker registration (spawn workers only)."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def attach_dataset(handle: ArenaHandle) -> GraphDataset:
    """Materialize the dataset behind *handle* from shared memory.

    Attaches to the segment, reads every graph zero-copy, and detaches
    immediately — the returned dataset is ordinary process-local memory,
    so the creator can unlink the segment at any later point without
    invalidating it.

    Raises
    ------
    FileNotFoundError
        If the segment has already been unlinked (the leak tests use
        this to prove cleanup happened).
    """
    shared_tracker = _tracker_shared()
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    if not shared_tracker:
        _untrack(shm)
    try:
        with PackedDatasetReader(shm.buf) as reader:
            dataset = GraphDataset(reader.graphs(), name=reader.dataset_name)
    finally:
        shm.close()
    return dataset


def attach_csr_dataset(handle: ArenaHandle) -> CSRDataset:
    """Materialize a CSR view of the dataset behind *handle*.

    Same ownership rules as :func:`attach_dataset`, but the packed flat
    arrays become CSR ``indptr``/``indices`` directly — no intermediate
    dict :class:`~repro.graphs.graph.Graph` is ever rebuilt.
    """
    shared_tracker = _tracker_shared()
    shm = shared_memory.SharedMemory(name=handle.shm_name)
    if not shared_tracker:
        _untrack(shm)
    try:
        dataset = CSRDataset.from_packed(shm.buf)
    finally:
        shm.close()
    return dataset


#: Per-process dataset cache: (content fingerprint, graph core) ->
#: materialized dataset.  The core is part of the key so a dict-core
#: sweep following a CSR-core one in the same worker cannot be served
#: the wrong representation.
_DATASET_CACHE: dict[tuple[int, str], GraphDataset | CSRDataset] = {}


def cached_dataset(handle: ArenaHandle) -> GraphDataset | CSRDataset:
    """Worker-side attach with caching by content fingerprint.

    The first task touching a dataset in a given worker pays the attach
    + materialization; every later task in that worker (the persistent
    pool keeps workers alive across sweeps) reuses the same object.
    Under the CSR core the attach skips the ``from_adjacency`` rebuild
    and maps the packed arrays straight into :class:`CSRDataset`.
    """
    core = active_graph_core()
    key = (handle.fingerprint, core)
    dataset = _DATASET_CACHE.get(key)
    if dataset is None:
        if core == "csr":
            dataset = attach_csr_dataset(handle)
        else:
            dataset = attach_dataset(handle)
        _DATASET_CACHE[key] = dataset
    return dataset


def clear_worker_caches() -> None:
    """Drop this process's dataset cache (tests and memory pressure)."""
    _DATASET_CACHE.clear()


# ----------------------------------------------------------------------
# shared-memory cell tasks
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SharedCellTask:
    """A :class:`~repro.core.runner.CellTask` whose dataset lives in an arena.

    Identical fields except ``handle`` replaces the dataset; pickling
    one ships the (small) query workloads and a segment name instead of
    the whole graph collection.
    """

    key: tuple
    method: str
    handle: ArenaHandle
    #: Query size -> queries of that size.
    workloads: Mapping[int, Sequence[Graph]]
    method_config: Mapping[str, object] | None = None
    build_budget_seconds: float | None = None
    query_budget_seconds: float | None = None
    build_memory_bytes: int | None = None
    #: Index artifact store directory (``None`` disables the store).
    index_store_dir: str | None = None
    #: ``False`` forces paper-faithful rebuilds despite the store.
    reuse_indexes: bool = True
    #: Query answer form (:data:`repro.indexes.base.REGIMES`).
    regime: str = "transactional"


def share_task(task, handle: ArenaHandle) -> SharedCellTask:
    """Rewrite a CellTask against an arena *handle* (dataset dropped)."""
    return SharedCellTask(
        key=task.key,
        method=task.method,
        handle=handle,
        workloads=task.workloads,
        method_config=task.method_config,
        build_budget_seconds=task.build_budget_seconds,
        query_budget_seconds=task.query_budget_seconds,
        build_memory_bytes=task.build_memory_bytes,
        index_store_dir=getattr(task, "index_store_dir", None),
        reuse_indexes=getattr(task, "reuse_indexes", True),
        regime=getattr(task, "regime", "transactional"),
    )


def run_shared_cell(task: SharedCellTask):
    """Worker entry point: resolve the arena, then run the cell as usual.

    The handle's content fingerprint doubles as the store's dataset
    digest — it *is* :func:`repro.graphs.dataset.dataset_fingerprint`,
    computed once by the arena's creator.
    """
    from repro.core.runner import evaluate_method

    return evaluate_method(
        task.method,
        cached_dataset(task.handle),
        task.workloads,
        method_config=task.method_config,
        build_budget_seconds=task.build_budget_seconds,
        query_budget_seconds=task.query_budget_seconds,
        build_memory_bytes=task.build_memory_bytes,
        index_store_dir=task.index_store_dir,
        reuse_indexes=task.reuse_indexes,
        dataset_digest=task.handle.fingerprint,
        regime=task.regime,
    )
