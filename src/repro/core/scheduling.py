"""Per-query batching and adaptive (longest-first) cell scheduling.

PR 1 parallelized at cell granularity, so one slow (method × dataset)
cell — a frequent-mining build over the largest dataset, say — owns the
tail of every sweep: the response-time/granularity trade-off Das et al.
measure on large-graph query processing.  This module shrinks that tail
in two independent ways:

* **Longest-first scheduling** — cells are *submitted* in descending
  estimated cost (:func:`estimate_cost`: dataset size × query work), so
  the expensive cells start first and the cheap ones pack the stragglers.
  Results still merge in original submission order, so scheduling is
  invisible in the output.
* **Per-query batching** — one cell's query workload splits into
  :class:`QueryBatch` subtasks (:func:`split_cell`), each carrying a
  contiguous slice of every query size.  Workers build the cell's index
  (or fetch it from the process's content-addressed
  :class:`~repro.indexes.store.IndexStore`) and answer just their slice;
  :func:`merge_batches` reassembles the per-query records **in original
  query order** and aggregates them with arithmetic mirrored from the
  sequential path — the merged cell canonicalizes byte-identically to
  an unbatched run.

Semantics note: the paper's per-workload query budget is enforced per
*batch* in batched mode (wall-clock cannot be shared across processes).
With no budget, or the zero budget the failure tests use, the two modes
agree exactly; a real mid-workload timeout may land on a different query
than sequentially — the same nondeterminism two sequential runs already
have.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.arena import ArenaHandle, SharedCellTask, cached_dataset
from repro.graphs.csr import active_graph_core, as_core_dataset, as_core_query
from repro.core.metrics import QueryRecord, record_of, summarize_records
from repro.core.runner import (
    STATUS_ERROR,
    STATUS_MEMORY,
    STATUS_OK,
    STATUS_TIMEOUT,
    CellTask,
    MethodCell,
    SizeStats,
    make_method,
)
from repro.graphs.dataset import GraphDataset, dataset_fingerprint
from repro.graphs.graph import Graph
from repro.utils.budget import Budget, BudgetExceeded, MemoryBudgetExceeded

__all__ = [
    "BatchOutcome",
    "BatchPart",
    "CellCost",
    "CostHistory",
    "QueryBatch",
    "clear_index_cache",
    "estimate_batch_cost",
    "estimate_cost",
    "longest_first",
    "merge_batches",
    "run_batch",
    "split_cell",
]


# ----------------------------------------------------------------------
# adaptive scheduling: cost model + longest-first ordering
# ----------------------------------------------------------------------


def _weight_of(dataset: GraphDataset | ArenaHandle) -> float:
    """Rough size of a dataset, by object or by arena handle."""
    if isinstance(dataset, ArenaHandle):
        return float(
            dataset.num_graphs + dataset.total_vertices + dataset.total_edges
        )
    return float(len(dataset) + dataset.total_vertices() + dataset.total_edges())


def _dataset_weight(task: CellTask | SharedCellTask) -> float:
    """Rough size of the dataset a task runs against."""
    if isinstance(task, SharedCellTask):
        return _weight_of(task.handle)
    return _weight_of(task.dataset)


def _query_work(workloads: Mapping[int, Sequence[Graph]]) -> float:
    """Total query edges — the workload side of the cost product."""
    return float(sum(size * len(queries) for size, queries in workloads.items()))


def estimate_cost(
    task: CellTask | SharedCellTask, history: "CostHistory | None" = None
) -> float:
    """Estimated cell cost: dataset size × (1 + query work).

    The static estimate is deliberately method-blind — the paper's whole
    point is that method cost profiles differ wildly and unpredictably —
    but dataset size and query volume dominate within a sweep, which is
    what tail-shrinking needs: the big-dataset cells start first.

    When *history* (measured cell seconds from earlier runs, e.g. a
    shard manifest — :mod:`repro.core.sharding`) is given, the static
    unit count is calibrated into predicted **seconds**: an exact
    re-run of a recorded cell gets its measured time back, other cells
    of a recorded method get that method's observed seconds-per-unit
    rate, and unrecorded methods fall back to the global rate.  This is
    the cost-model feedback loop that un-blinds the scheduler where
    evidence exists.
    """
    units = _dataset_weight(task) * (1.0 + _query_work(task.workloads))
    if history is not None:
        return history.calibrate(task.key, task.method, units)
    return units


def estimate_batch_cost(
    batch: "QueryBatch", history: "CostHistory | None" = None
) -> float:
    """Cost of one batch: its build share plus its slice of the queries.

    *history* calibrates the batch's unit count exactly as
    :func:`estimate_cost` does for whole cells; a recorded cell's
    measured rate prices each of its batches proportionally to the
    batch's share of the cell's work.
    """
    work = float(sum(part.size * len(part.queries) for part in batch.parts))
    units = _weight_of(batch.dataset) * (1.0 + work)
    if history is not None:
        return history.calibrate(batch.key, batch.method, units)
    return units


@dataclass(frozen=True, slots=True)
class CellCost:
    """One completed cell's measured cost, as recorded in a manifest."""

    #: Wall-clock seconds the cell's build + queries actually took.
    seconds: float
    #: The static :func:`estimate_cost` units computed when it ran.
    units: float


class CostHistory:
    """Measured cell seconds from previous runs, as a cost calibrator.

    Built from ``(key, method, seconds, units)`` records — one per
    completed cell, typically read out of a shard manifest
    (:func:`repro.core.sharding.cost_history`).  Three estimators, most
    specific first:

    1. **exact** — the same ``key`` was measured before: scale its
       observed seconds-per-unit rate by the requested unit count (for
       a whole cell that returns the measured seconds verbatim; for a
       query batch, the batch's proportional share);
    2. **per-method rate** — the mean seconds-per-unit over the
       method's recorded cells, correcting the static model's
       method-blindness;
    3. **global rate** — the mean over all recorded cells, so cells of
       never-measured methods stay comparable (in seconds) with
       calibrated ones.

    With no usable records at all, :meth:`calibrate` returns the static
    units unchanged — every estimate stays in one currency either way,
    which is all :func:`longest_first` needs.
    """

    def __init__(
        self, records: "Iterable[tuple[tuple, str, float, float]]" = ()
    ) -> None:
        self._costs: dict[tuple, CellCost] = {}
        rates_by_method: dict[str, list[float]] = {}
        for key, method, seconds, units in records:
            self._costs[key] = CellCost(seconds=seconds, units=units)
            if units > 0.0 and seconds >= 0.0:
                rates_by_method.setdefault(method, []).append(seconds / units)
        self._method_rates = {
            method: sum(rates) / len(rates)
            for method, rates in rates_by_method.items()
        }
        all_rates = [rate for rates in rates_by_method.values() for rate in rates]
        self._global_rate = sum(all_rates) / len(all_rates) if all_rates else None

    def __len__(self) -> int:
        return len(self._costs)

    def recorded(self, key: tuple) -> CellCost | None:
        """The measured cost of *key*, if this history holds one."""
        return self._costs.get(key)

    def predict_seconds(
        self, key: tuple, method: str, units: float
    ) -> float | None:
        """Best-evidence predicted seconds for one cell, or ``None``.

        Unlike :meth:`calibrate` — which scales a *rate* by the caller's
        unit count and therefore needs those units to match the recorded
        ones for an exact hit — this answers the planner's question
        directly: a recorded key returns its measured seconds verbatim
        (whatever units the caller guessed), an unrecorded key of a
        recorded method returns ``units`` priced at the method's rate,
        and a history with nothing usable returns ``None`` so the
        caller can fall back to its static estimate.  The sweep
        orchestration driver (:mod:`repro.core.driver`) plans shard
        assignments with this before any dataset exists.
        """
        exact = self._costs.get(key)
        if exact is not None:
            return exact.seconds
        rate = self._method_rates.get(method, self._global_rate)
        return None if rate is None else units * rate

    def rate_for(self, key: tuple, method: str) -> float | None:
        """Seconds-per-unit estimate for one cell, or ``None`` if the
        history holds nothing usable."""
        exact = self._costs.get(key)
        if exact is not None and exact.units > 0.0:
            return exact.seconds / exact.units
        return self._method_rates.get(method, self._global_rate)

    def calibrate(self, key: tuple, method: str, units: float) -> float:
        """Predicted seconds for *units* of work on this cell (static
        units unchanged when the history has no usable records)."""
        rate = self.rate_for(key, method)
        return units if rate is None else units * rate


def longest_first(costs: Sequence[float]) -> list[int]:
    """Submission order: indices by descending cost, stable on ties.

    The returned permutation feeds ``ParallelRunner.run(..., order=...)``;
    results still come back in the *original* index order, so the sweep
    output is submission-deterministic regardless of completion order.
    """
    return sorted(range(len(costs)), key=lambda i: (-costs[i], i))


# ----------------------------------------------------------------------
# per-query batching: task shapes
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BatchPart:
    """A contiguous slice of one query size's workload."""

    size: int
    #: Position of ``queries[0]`` within the size's full workload.
    start: int
    queries: tuple[Graph, ...]


@dataclass(frozen=True, slots=True)
class QueryBatch:
    """One worker-sized share of a cell's query workload.

    Every batch of a cell carries enough to (re)build the cell's index
    — workers deduplicate actual builds through the process's
    :class:`~repro.indexes.store.IndexStore` (content-addressed by
    ``(method, index_params, dataset_key)``), so a cell's index is
    built at most once per worker, at most ``min(jobs, batches)`` times
    per cell overall, and — with a store directory — at most once per
    *store*, across cells, sweeps, and invocations.
    """

    key: tuple
    method: str
    dataset: GraphDataset | ArenaHandle
    #: Content digest of the dataset — the store's address component.
    dataset_key: int
    batch_index: int
    num_batches: int
    #: Every query size of the parent cell, in workload order (the
    #: merged cell's ``per_size`` insertion order).
    sizes: tuple[int, ...]
    parts: tuple[BatchPart, ...]
    method_config: Mapping[str, object] | None = None
    build_budget_seconds: float | None = None
    query_budget_seconds: float | None = None
    build_memory_bytes: int | None = None
    #: On-disk tier of the index artifact store (``None`` = memory-only).
    index_store_dir: str | None = None
    #: ``False`` keeps reuse cell-local (paper-faithful build timings).
    reuse_indexes: bool = True
    #: Query answer form (:data:`repro.indexes.base.REGIMES`).
    regime: str = "transactional"


@dataclass(frozen=True, slots=True)
class PartOutcome:
    """What happened to one batch part."""

    size: int
    start: int
    status: str
    records: tuple[QueryRecord, ...] = ()
    error: str = ""


@dataclass(frozen=True, slots=True)
class BatchOutcome:
    """One executed batch: build outcome plus per-part query records."""

    key: tuple
    batch_index: int
    build_status: str
    build_seconds: float | None = None
    index_bytes: int | None = None
    build_details: dict = field(default_factory=dict)
    build_error: str = ""
    parts: tuple[PartOutcome, ...] = ()
    #: Build provenance (artifact address, reused flag) — execution
    #: metadata forwarded onto the merged cell, never canonicalized.
    provenance: dict = field(default_factory=dict)


def split_cell(
    task: CellTask | SharedCellTask, num_batches: int, dataset_key: int | None = None
) -> list[QueryBatch]:
    """Split one cell into up to *num_batches* query batches.

    Each size's workload is cut into contiguous chunks (chunk *i* of a
    ``q``-query size is ``queries[i*q//n : (i+1)*q//n]``), so batch 0
    holds the head of every size and batch n-1 the tail.  Cells with
    fewer queries than batches produce fewer batches; a cell with no
    queries still produces one build-only batch.  The split is a pure
    function of (task, num_batches) — deterministic across runs.
    """
    if isinstance(task, SharedCellTask):
        dataset: GraphDataset | ArenaHandle = task.handle
        key = task.handle.fingerprint if dataset_key is None else dataset_key
    else:
        dataset = task.dataset
        key = dataset_fingerprint(task.dataset) if dataset_key is None else dataset_key
    sizes = tuple(task.workloads)
    total_queries = sum(len(queries) for queries in task.workloads.values())
    count = max(1, min(int(num_batches), total_queries)) if total_queries else 1
    parts_of: list[list[BatchPart]] = [[] for _ in range(count)]
    for size, queries in task.workloads.items():
        queries = list(queries)
        length = len(queries)
        for i in range(count):
            lo = (i * length) // count
            hi = ((i + 1) * length) // count
            if hi > lo:
                parts_of[i].append(BatchPart(size, lo, tuple(queries[lo:hi])))
    return [
        QueryBatch(
            key=task.key,
            method=task.method,
            dataset=dataset,
            dataset_key=key,
            batch_index=i,
            num_batches=count,
            sizes=sizes,
            parts=tuple(parts_of[i]),
            method_config=task.method_config,
            build_budget_seconds=task.build_budget_seconds,
            query_budget_seconds=task.query_budget_seconds,
            build_memory_bytes=task.build_memory_bytes,
            index_store_dir=getattr(task, "index_store_dir", None),
            reuse_indexes=getattr(task, "reuse_indexes", True),
            regime=getattr(task, "regime", "transactional"),
        )
        for i in range(count)
    ]


# ----------------------------------------------------------------------
# worker side: store-backed builds + batch execution
# ----------------------------------------------------------------------

#: Per-process build memo — the direct successor of PR 2's
#: ``_INDEX_CACHE``, with the same budget-inclusive keying: failures are
#: cached so every batch of a cell reports the same deterministic
#: status, and successful builds are shared across batches (and, when
#: ``reuse_indexes`` is on, across cells) *of the same budgets*.  The
#: :class:`~repro.indexes.store.IndexStore` sits in front of it only
#: when an explicit store directory is configured — store artifacts are
#: budget-free by documented contract, and that trade must be opted
#: into, never implied.
_BUILD_MEMO: dict[tuple, tuple] = {}


def clear_index_cache() -> None:
    """Drop this process's built-index state (tests, memory pressure):
    the build memo plus every shared store's memory tier."""
    from repro.indexes.store import clear_stores

    _BUILD_MEMO.clear()
    clear_stores()


def _batch_dataset(batch: QueryBatch) -> GraphDataset:
    if isinstance(batch.dataset, ArenaHandle):
        return cached_dataset(batch.dataset)
    return as_core_dataset(batch.dataset)


def _built_index_for(batch: QueryBatch) -> tuple:
    """``("ok", index, report, provenance)`` or ``(status, error)``.

    Resolution order: the explicit artifact store (memory LRU, then
    disk) when one is configured and reuse is on — a hit materializes a
    fresh index and reports the *original* build's provenance; then the
    budget-keyed process memo; then a fresh build, written through to
    the store.

    Without ``--index-store`` the memo alone serves reuse, keyed by
    budgets exactly as PR 2's cache was — a lenient-budget build must
    never mask the timeout a strict-budget cell would have reported, so
    crossing budget boundaries is reserved for the explicit store (a
    documented trade of its own).
    """
    from repro.indexes.store import artifact_from_index, materialize_artifact, shared_store

    store = (
        shared_store(batch.index_store_dir)
        if batch.index_store_dir is not None
        else None
    )
    probe = make_method(batch.method, batch.method_config)
    params = probe.index_params()
    memo_key = (
        batch.method,
        tuple(sorted(params.items())),
        batch.dataset_key,
        # Indexes hold a reference to the dataset they were built over
        # (verify walks it), so a dict-core build must never be served
        # to a CSR-core batch in the same process, or vice versa.
        active_graph_core(),
        batch.build_budget_seconds,
        batch.build_memory_bytes,
        None if batch.reuse_indexes else batch.key,
    )
    # Memo first: within one process the live built index (budget-keyed,
    # so never budget-crossing) beats re-materializing from the store,
    # and the building run's batches all report consistent provenance.
    entry = _BUILD_MEMO.get(memo_key)
    if entry is not None:
        return entry
    if store is not None and batch.reuse_indexes:
        artifact = store.get(batch.method, params, batch.dataset_key)
        if artifact is not None:
            index = materialize_artifact(artifact, _batch_dataset(batch))
            provenance = artifact.provenance
            report = index.build_report
            entry = (
                STATUS_OK,
                index,
                report,
                {
                    "reused": True,
                    "artifact": artifact.address,
                    "built_at": provenance.created_at,
                    "library_version": provenance.library_version,
                },
            )
            # Memoize the hit like a fresh build: the cell's remaining
            # batches must not repeat the payload import per batch.
            _BUILD_MEMO[memo_key] = entry
            return entry
    dataset = _batch_dataset(batch)
    index = probe
    budget = (
        Budget(
            batch.build_budget_seconds,
            max_bytes=batch.build_memory_bytes,
            phase=f"{batch.method} build",
        )
        if batch.build_budget_seconds is not None
        or batch.build_memory_bytes is not None
        else None
    )
    try:
        report = index.build(dataset, budget=budget)
    except MemoryBudgetExceeded:
        entry = (STATUS_MEMORY, "")
    except BudgetExceeded:
        entry = (STATUS_TIMEOUT, "")
    except (MemoryError, RecursionError, ValueError, RuntimeError) as exc:
        entry = (STATUS_ERROR, f"{type(exc).__name__}: {exc}")
    else:
        provenance = {}
        if store is not None:
            try:
                address = store.put(
                    artifact_from_index(index, batch.dataset_key)
                )
            except NotImplementedError:
                # An index without the payload-split contract (a test
                # double) still runs; it just cannot be stored/reused.
                pass
            else:
                provenance = {"reused": False, "artifact": address}
        entry = (STATUS_OK, index, report, provenance)
    _BUILD_MEMO[memo_key] = entry
    return entry


def run_batch(batch: QueryBatch) -> BatchOutcome:
    """Worker entry point: build/fetch the index, answer this slice.

    Mirrors :func:`repro.core.runner.evaluate_method` per part: method
    failures become statuses, never exceptions; programming errors
    (unknown method) propagate.
    """
    entry = _built_index_for(batch)
    if entry[0] != STATUS_OK:
        return BatchOutcome(
            key=batch.key,
            batch_index=batch.batch_index,
            build_status=entry[0],
            build_error=entry[1],
        )
    _, index, report, provenance = entry
    parts: list[PartOutcome] = []
    for part in batch.parts:
        budget = (
            Budget(
                batch.query_budget_seconds,
                phase=f"{batch.method} queries size {part.size}",
            )
            if batch.query_budget_seconds is not None
            else None
        )
        try:
            # Query admission, as in the runner: each part's queries
            # convert to the active core once before answering.
            records = tuple(
                record_of(
                    index.query(
                        as_core_query(query), budget=budget, regime=batch.regime
                    )
                )
                for query in part.queries
            )
        except BudgetExceeded:
            parts.append(PartOutcome(part.size, part.start, STATUS_TIMEOUT))
        except (MemoryError, RecursionError, ValueError, RuntimeError) as exc:
            parts.append(
                PartOutcome(
                    part.size,
                    part.start,
                    STATUS_ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        else:
            parts.append(PartOutcome(part.size, part.start, STATUS_OK, records))
    return BatchOutcome(
        key=batch.key,
        batch_index=batch.batch_index,
        build_status=STATUS_OK,
        build_seconds=report.seconds,
        index_bytes=report.size_bytes,
        build_details=dict(report.details),
        parts=tuple(parts),
        provenance=dict(provenance),
    )


# ----------------------------------------------------------------------
# deterministic merge
# ----------------------------------------------------------------------


def merge_batches(
    batches: Sequence[QueryBatch], outcomes: Sequence[BatchOutcome]
) -> MethodCell:
    """Reassemble one cell from its batch outcomes, order-independently.

    *batches* and *outcomes* are aligned pairs in any order (they are
    sorted internally by batch index / part start), so the merged cell
    is a pure function of the outcome *set* — completion order cannot
    leak in.  Build fields come from the lowest-index batch; a size's
    status is the status of its earliest non-OK part (the sequential
    "first failure aborts the workload" semantics), otherwise its
    records concatenate in query order and aggregate exactly as the
    sequential path would.
    """
    if not batches:
        raise ValueError("merge_batches needs at least one batch")
    pairs = sorted(zip(batches, outcomes), key=lambda pair: pair[1].batch_index)
    lead_batch, lead = pairs[0]
    # Builds are deterministic so batches normally agree, but a budget
    # that sits right at the build time can succeed in one worker and
    # time out in another.  Any build failure fails the whole cell —
    # the sequential all-or-nothing semantics — rather than silently
    # merging the successful batches' partial query records.
    failed_build = next(
        (o for _, o in pairs if o.build_status != STATUS_OK), None
    )
    if failed_build is not None:
        return MethodCell(
            method=lead_batch.method,
            build_status=failed_build.build_status,
            build_error=failed_build.build_error,
        )
    # Provenance: a cell is "reused" only if NO batch built it fresh.
    # With jobs > 1 the build race can leave batch 0 as a store hit
    # while a sibling batch did the actual build — the fresh batch's
    # provenance must win or a cold run would masquerade as warm.
    fresh = next(
        (
            o.provenance
            for _, o in pairs
            if o.provenance.get("reused") is False
        ),
        None,
    )
    cell = MethodCell(
        method=lead_batch.method,
        build_status=lead.build_status,
        build_seconds=lead.build_seconds,
        index_bytes=lead.index_bytes,
        build_details=dict(lead.build_details),
        build_error=lead.build_error,
        provenance=dict(lead.provenance if fresh is None else fresh),
    )
    parts_by_size: dict[int, list[PartOutcome]] = {}
    for _, outcome in pairs:
        for part in outcome.parts:
            parts_by_size.setdefault(part.size, []).append(part)
    for size in lead_batch.sizes:
        parts = sorted(parts_by_size.get(size, []), key=lambda p: p.start)
        failed = next((p for p in parts if p.status != STATUS_OK), None)
        if failed is not None:
            cell.per_size[size] = SizeStats(status=failed.status, error=failed.error)
            continue
        records: list[QueryRecord] = []
        for part in parts:
            records.extend(part.records)
        cell.per_size[size] = SizeStats(
            status=STATUS_OK, stats=summarize_records(records)
        )
    return cell
