"""Subgraph isomorphism testing — the verification substrate.

Every benchmarked method verifies its candidate set with the VF2
algorithm (Cordella et al., TPAMI 2004 [6]); CT-Index uses "a modified
VF2 with additional heuristics" (§3).  This package implements VF2 for
*subgraph monomorphism* (the paper's Definition 3: query edges must be
present in the data graph, extra data edges are allowed) together with
pluggable vertex-ordering heuristics.
"""

from repro.isomorphism.heuristics import (
    connectivity_order,
    frequency_degree_order,
)
from repro.isomorphism.ullmann import ullmann_is_subgraph
from repro.isomorphism.vf2 import SubgraphMatcher, count_embeddings, find_embedding, is_subgraph

__all__ = [
    "SubgraphMatcher",
    "is_subgraph",
    "find_embedding",
    "count_embeddings",
    "connectivity_order",
    "frequency_degree_order",
    "ullmann_is_subgraph",
]
