"""Query-vertex ordering heuristics for VF2.

The order in which VF2 maps query vertices dominates its running time.
Two strategies are provided:

* :func:`connectivity_order` — the plain VF2 behaviour: explore the
  query so that (within each connected component) every vertex after the
  first is adjacent to an already-ordered vertex.  Used by Grapes,
  GGSX, gIndex, Tree+Δ and gCode, whose original implementations call
  stock VF2.
* :func:`frequency_degree_order` — the CT-Index refinement: start from
  the rarest-label, highest-degree vertices so the search fails fast.
  This is the "modified VF2 algorithm with additional heuristics" that
  lets CT-Index trade filtering power for verification speed (§3, §5).
"""

from __future__ import annotations

from repro.canonical.order import label_key
from repro.graphs.graph import Graph

__all__ = ["connectivity_order", "frequency_degree_order"]


def connectivity_order(query: Graph, data: Graph | None = None) -> list[int]:
    """Order query vertices connectivity-first, by increasing id.

    Starts each component at its smallest vertex id and grows by always
    appending the smallest unvisited vertex adjacent to the ordered
    prefix.  Deterministic and data-independent.
    """
    ordered: list[int] = []
    visited = [False] * query.order
    for start in query.vertices():
        if visited[start]:
            continue
        visited[start] = True
        ordered.append(start)
        frontier = {w for w in query.neighbors(start) if not visited[w]}
        while frontier:
            v = min(frontier)
            visited[v] = True
            ordered.append(v)
            frontier.discard(v)
            frontier.update(w for w in query.neighbors(v) if not visited[w])
    return ordered


def frequency_degree_order(query: Graph, data: Graph | None = None) -> list[int]:
    """CT-Index-style ordering: rare labels and high degrees first.

    The first vertex of each component is the one whose label is rarest
    in *data* (falling back to rarity within the query when no data
    graph is supplied), breaking ties by descending degree.  Subsequent
    vertices stay connected to the prefix, again preferring rare labels
    and high degree, so infeasible branches are pruned near the root.
    """
    if data is not None:
        frequency: dict[object, int] = data.label_histogram()
    else:
        frequency = query.label_histogram()

    def rank(v: int) -> tuple:
        return (
            frequency.get(query.label(v), 0),
            -query.degree(v),
            label_key(query.label(v)),
            v,
        )

    ordered: list[int] = []
    in_order = [False] * query.order
    remaining = set(query.vertices())
    while remaining:
        start = min(remaining, key=rank)
        ordered.append(start)
        in_order[start] = True
        remaining.discard(start)
        while True:
            frontier = [
                w
                for w in remaining
                if any(in_order[u] for u in query.neighbors(w))
            ]
            if not frontier:
                break
            chosen = min(frontier, key=rank)
            ordered.append(chosen)
            in_order[chosen] = True
            remaining.discard(chosen)
    return ordered
