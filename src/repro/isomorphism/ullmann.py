"""Ullmann's subgraph isomorphism algorithm (1976), monomorphism variant.

The classic predecessor of VF2 and the usual baseline when comparing
verification algorithms.  Ullmann maintains a candidate matrix ``M``
(query vertex → feasible data vertices) and interleaves backtracking
with *refinement*: a candidate pair ``(u, d)`` survives only if every
query neighbor of ``u`` still has at least one candidate among ``d``'s
data neighbors.  Refinement propagates to a fixpoint, pruning far from
the failure point — at the cost of touching the whole matrix per node
of the search tree.

The library verifies with VF2 everywhere (as every benchmarked system
does, §2.2); Ullmann exists for the verification-algorithm ablation in
``benchmarks/`` and as an independent oracle in tests.  Semantics are
identical to :mod:`repro.isomorphism.vf2`: subgraph *monomorphism* per
the paper's Definition 3.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.utils.budget import Budget

__all__ = ["ullmann_is_subgraph"]

#: Search-tree nodes between budget polls.
_BUDGET_POLL_INTERVAL = 512


def ullmann_is_subgraph(
    query: Graph, data: Graph, budget: Budget | None = None
) -> bool:
    """True iff *query* is subgraph-monomorphic to *data* (Def. 3)."""
    if query.order == 0:
        return True
    if query.order > data.order or query.size > data.size:
        return False

    candidates = _initial_candidates(query, data)
    if candidates is None:
        return False
    state = _State(query, data, budget)
    return state.search(0, candidates, set())


def _initial_candidates(query: Graph, data: Graph) -> list[set[int]] | None:
    """Degree- and label-feasible candidate sets per query vertex."""
    pick = getattr(data, "candidate_vertices", None)
    if pick is not None:
        # CSR core: one vectorized label+degree mask per query vertex.
        candidates: list[set[int]] = []
        for u in query.vertices():
            feasible = set(pick(query.label(u), query.degree(u)))
            if not feasible:
                return None
            candidates.append(feasible)
        return candidates
    by_label = data.vertices_by_label()
    candidates = []
    for u in query.vertices():
        feasible = {
            d
            for d in by_label.get(query.label(u), ())
            if data.degree(d) >= query.degree(u)
        }
        if not feasible:
            return None
        candidates.append(feasible)
    return candidates


class _State:
    __slots__ = ("query", "data", "budget", "nodes")

    def __init__(self, query: Graph, data: Graph, budget: Budget | None) -> None:
        self.query = query
        self.data = data
        self.budget = budget
        self.nodes = 0

    def search(
        self, position: int, candidates: list[set[int]], used: set[int]
    ) -> bool:
        if position == self.query.order:
            return True
        self._poll()
        for d in sorted(candidates[position]):
            if d in used:
                continue
            narrowed = self._assign(position, d, candidates)
            if narrowed is None:
                continue
            used.add(d)
            if self.search(position + 1, narrowed, used):
                used.discard(d)
                return True
            used.discard(d)
        return False

    def _assign(
        self, position: int, d: int, candidates: list[set[int]]
    ) -> list[set[int]] | None:
        """Pin query vertex *position* to *d* and refine to fixpoint."""
        narrowed = [set(c) for c in candidates]
        narrowed[position] = {d}
        # Monomorphism constraint: query neighbors of `position` must
        # map into data neighbors of d (and not onto d — injectivity).
        for u in self.query.neighbors(position):
            narrowed[u] &= self.data.neighbor_set(d)
            narrowed[u].discard(d)
            if not narrowed[u]:
                return None
        return self._refine(narrowed)

    def _refine(self, candidates: list[set[int]]) -> list[set[int]] | None:
        """Ullmann refinement to fixpoint.

        A candidate ``d`` for query vertex ``u`` survives only if every
        query neighbor of ``u`` has at least one candidate adjacent to
        ``d`` in the data graph.
        """
        changed = True
        while changed:
            changed = False
            for u in self.query.vertices():
                doomed = []
                for d in candidates[u]:
                    for w in self.query.neighbors(u):
                        if not (candidates[w] & self.data.neighbor_set(d)):
                            doomed.append(d)
                            break
                if doomed:
                    candidates[u] -= set(doomed)
                    if not candidates[u]:
                        return None
                    changed = True
        return candidates

    def _poll(self) -> None:
        if self.budget is None:
            return
        self.nodes += 1
        if self.nodes % _BUDGET_POLL_INTERVAL == 0:
            self.budget.check()
