"""Ullmann's subgraph isomorphism algorithm (1976), monomorphism variant.

The classic predecessor of VF2 and the usual baseline when comparing
verification algorithms.  Ullmann maintains a candidate matrix ``M``
(query vertex → feasible data vertices) and interleaves backtracking
with *refinement*: a candidate pair ``(u, d)`` survives only if every
query neighbor of ``u`` still has at least one candidate among ``d``'s
data neighbors.  Refinement propagates to a fixpoint, pruning far from
the failure point — at the cost of touching the whole matrix per node
of the search tree.

Two engines implement identical semantics:

* **bitset** (default) — candidate domains are packed uint64 rows, one
  bit per data vertex; refinement is numpy bitwise AND + ``any`` over
  whole rows, and the data adjacency is a packed bit matrix built once
  per (query, data) pair.  This is the CSR-era hot path.
* **set** — the original per-vertex ``set[int]`` domains, kept as the
  differential oracle: both engines explore the *same* search tree
  (candidates are iterated ascending, refinement passes visit query
  vertices in the same order, and a domain emptied at the same step
  fails at the same step), so accept/reject answers *and* budget poll
  counts match exactly — pinned by ``tests/test_ullmann.py``.

The library verifies with VF2 everywhere (as every benchmarked system
does, §2.2); Ullmann exists for the verification-algorithm ablation in
``benchmarks/`` and as an independent oracle in tests.  Semantics are
identical to :mod:`repro.isomorphism.vf2`: subgraph *monomorphism* per
the paper's Definition 3.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.budget import Budget

__all__ = ["ullmann_is_subgraph"]

#: Search-tree nodes between budget polls.
_BUDGET_POLL_INTERVAL = 512

#: Recognized engines, default first.
_ENGINES = ("bitset", "set")

_ONE = np.uint64(1)
_WORD_BITS = 64


def ullmann_is_subgraph(
    query: Graph,
    data: Graph,
    budget: Budget | None = None,
    engine: str | None = None,
    domains: list[set[int]] | None = None,
) -> bool:
    """True iff *query* is subgraph-monomorphic to *data* (Def. 3).

    *engine* selects the domain representation (``bitset`` by default,
    ``set`` for the legacy sets) — an ablation/testing knob; both
    engines return identical answers with identical budget semantics.

    *domains*, when given, constrains the search: query vertex ``u``
    may only map into ``domains[u]`` (intersected with the built-in
    label/degree feasibility).  The single-graph regime pins embedding
    roots and narrows candidates this way; ``None`` leaves the classic
    search — and its budget poll counts — untouched.
    """
    if engine is None:
        engine = _ENGINES[0]
    if engine not in _ENGINES:
        known = ", ".join(_ENGINES)
        raise ValueError(f"unknown engine {engine!r}; expected one of {known}")
    if query.order == 0:
        return True
    if query.order > data.order or query.size > data.size:
        return False

    candidates = _initial_candidates(query, data)
    if candidates is None:
        return False
    if domains is not None:
        if len(domains) != query.order:
            raise ValueError(
                f"domains carries {len(domains)} entries for a "
                f"{query.order}-vertex query"
            )
        for u, feasible in enumerate(candidates):
            feasible &= domains[u]
            if not feasible:
                return False
    if engine == "set":
        state = _State(query, data, budget)
        return state.search(0, candidates, set())
    bitset_state = _BitsetState(query, data, budget)
    return bitset_state.search(0, bitset_state.pack(candidates), set())


def _initial_candidates(query: Graph, data: Graph) -> list[set[int]] | None:
    """Degree- and label-feasible candidate sets per query vertex.

    Computed once per (query, data) pair: both cores expose
    ``candidate_vertices`` (the CSR core as one vectorized label+degree
    mask, the dict core over its cached label groups), with a plain
    ``vertices_by_label`` sweep as the fallback for bare read-API
    graphs in tests.
    """
    pick = getattr(data, "candidate_vertices", None)
    if pick is not None:
        candidates: list[set[int]] = []
        for u in query.vertices():
            feasible = set(pick(query.label(u), query.degree(u)))
            if not feasible:
                return None
            candidates.append(feasible)
        return candidates
    by_label = data.vertices_by_label()
    candidates = []
    for u in query.vertices():
        feasible = {
            d
            for d in by_label.get(query.label(u), ())
            if data.degree(d) >= query.degree(u)
        }
        if not feasible:
            return None
        candidates.append(feasible)
    return candidates


class _State:
    """The set-domain engine (differential oracle)."""

    __slots__ = ("query", "data", "budget", "nodes")

    def __init__(self, query: Graph, data: Graph, budget: Budget | None) -> None:
        self.query = query
        self.data = data
        self.budget = budget
        self.nodes = 0

    def search(
        self, position: int, candidates: list[set[int]], used: set[int]
    ) -> bool:
        if position == self.query.order:
            return True
        self._poll()
        for d in sorted(candidates[position]):
            if d in used:
                continue
            narrowed = self._assign(position, d, candidates)
            if narrowed is None:
                continue
            used.add(d)
            if self.search(position + 1, narrowed, used):
                used.discard(d)
                return True
            used.discard(d)
        return False

    def _assign(
        self, position: int, d: int, candidates: list[set[int]]
    ) -> list[set[int]] | None:
        """Pin query vertex *position* to *d* and refine to fixpoint."""
        narrowed = [set(c) for c in candidates]
        narrowed[position] = {d}
        # Monomorphism constraint: query neighbors of `position` must
        # map into data neighbors of d (and not onto d — injectivity).
        for u in self.query.neighbors(position):
            narrowed[u] &= self.data.neighbor_set(d)
            narrowed[u].discard(d)
            if not narrowed[u]:
                return None
        return self._refine(narrowed)

    def _refine(self, candidates: list[set[int]]) -> list[set[int]] | None:
        """Ullmann refinement to fixpoint.

        A candidate ``d`` for query vertex ``u`` survives only if every
        query neighbor of ``u`` has at least one candidate adjacent to
        ``d`` in the data graph.
        """
        changed = True
        while changed:
            changed = False
            for u in self.query.vertices():
                doomed = []
                for d in candidates[u]:
                    for w in self.query.neighbors(u):
                        if not (candidates[w] & self.data.neighbor_set(d)):
                            doomed.append(d)
                            break
                if doomed:
                    candidates[u] -= set(doomed)
                    if not candidates[u]:
                        return None
                    changed = True
        return candidates

    def _poll(self) -> None:
        if self.budget is None:
            return
        self.nodes += 1
        if self.nodes % _BUDGET_POLL_INTERVAL == 0:
            self.budget.check()


class _BitsetState:
    """The packed-uint64 domain engine (default).

    Domains are a ``(query.order, words)`` uint64 matrix — bit ``d`` of
    row ``u`` set iff data vertex ``d`` is a candidate for query vertex
    ``u`` — refined against a data adjacency bit matrix of the same
    width.  The search tree is identical to the set engine's: bits are
    iterated ascending (``sorted(candidates[position])``), refinement
    passes visit query vertices in the same order, and a pass dooms
    exactly the candidates the set engine's inner loop would.
    """

    __slots__ = ("query", "data", "budget", "nodes", "words", "adj", "qneighbors")

    def __init__(self, query: Graph, data: Graph, budget: Budget | None) -> None:
        self.query = query
        self.data = data
        self.budget = budget
        self.nodes = 0
        self.words = (data.order + _WORD_BITS - 1) // _WORD_BITS
        self.adj = self._adjacency_matrix(data)
        #: Query adjacency as plain int lists, for the refinement loop.
        self.qneighbors = [list(query.neighbors(u)) for u in query.vertices()]

    def _adjacency_matrix(self, data: Graph) -> np.ndarray:
        # A CSR host carries the packed matrix as a cached structure
        # (one vectorized scatter, amortized across the workload).
        cached = getattr(data, "adjacency_bitmatrix", None)
        if cached is not None:
            return cached()
        matrix = np.zeros((data.order, self.words), dtype=np.uint64)
        edge_list = list(data.edges())
        if edge_list:
            half = np.asarray(edge_list, dtype=np.int64)
            rows = np.concatenate([half[:, 0], half[:, 1]])
            cols = np.concatenate([half[:, 1], half[:, 0]])
            np.bitwise_or.at(
                matrix,
                (rows, cols >> 6),
                _ONE << (cols & 63).astype(np.uint64),
            )
        return matrix

    def pack(self, candidates: list[set[int]]) -> np.ndarray:
        """Pack per-vertex candidate sets into domain bit rows."""
        domains = np.zeros((len(candidates), self.words), dtype=np.uint64)
        for u, feasible in enumerate(candidates):
            members = np.fromiter(feasible, dtype=np.int64, count=len(feasible))
            np.bitwise_or.at(
                domains[u],
                members >> 6,
                _ONE << (members & 63).astype(np.uint64),
            )
        return domains

    @staticmethod
    def _members(row: np.ndarray) -> list[int]:
        """Set bits of one domain row, ascending — the iteration order
        ``sorted()`` gives the set engine."""
        bits = np.unpackbits(row.view(np.uint8), bitorder="little")
        return np.nonzero(bits)[0].tolist()

    def search(
        self, position: int, domains: np.ndarray, used: set[int]
    ) -> bool:
        if position == self.query.order:
            return True
        self._poll()
        for d in self._members(domains[position]):
            if d in used:
                continue
            narrowed = self._assign(position, d, domains)
            if narrowed is None:
                continue
            used.add(d)
            if self.search(position + 1, narrowed, used):
                used.discard(d)
                return True
            used.discard(d)
        return False

    def _assign(
        self, position: int, d: int, domains: np.ndarray
    ) -> np.ndarray | None:
        """Pin query vertex *position* to *d* and refine to fixpoint."""
        narrowed = domains.copy()
        narrowed[position] = 0
        narrowed[position, d >> 6] = _ONE << np.uint64(d & 63)
        neighbors = self.qneighbors[position]
        if neighbors:
            # One slab op: mask every neighbor row to d's data adjacency
            # and clear bit d (injectivity) in the same pass.
            narrowed[neighbors] &= self.adj[d]
            narrowed[neighbors, d >> 6] &= ~(_ONE << np.uint64(d & 63))
            if not narrowed[neighbors].any(axis=1).all():
                return None
        return self._refine(narrowed)

    def _refine(self, domains: np.ndarray) -> np.ndarray | None:
        """Ullmann refinement to fixpoint via support masks.

        A candidate ``d`` of query vertex ``u`` survives a pass iff,
        for every query neighbor ``w``, ``d`` is adjacent to some
        current candidate of ``w`` — i.e. iff bit ``d`` is set in
        ``support(w)``, the OR of the adjacency rows of ``w``'s
        candidates.  So a pass is one AND per query edge:
        ``domains[u] &= support(w)``.  The survival predicate is a pure
        function of the *current* domains — exactly the set engine's
        inner loop — so supports are memoized per vertex and
        invalidated the moment that vertex's domain shrinks, keeping
        the two engines' search trees identical.
        """
        order = self.query.order
        supports: list[np.ndarray | None] = [None] * order
        changed = True
        while changed:
            changed = False
            for u in range(order):
                neighbors = self.qneighbors[u]
                if not neighbors:
                    continue
                row = domains[u]
                for w in neighbors:
                    mask = supports[w]
                    if mask is None:
                        mask = supports[w] = np.bitwise_or.reduce(
                            self.adj[self._members(domains[w])], axis=0
                        )
                    row = row & mask
                if np.array_equal(row, domains[u]):
                    continue
                if not row.any():
                    return None
                domains[u] = row
                supports[u] = None
                changed = True
        return domains

    def _poll(self) -> None:
        if self.budget is None:
            return
        self.nodes += 1
        if self.nodes % _BUDGET_POLL_INTERVAL == 0:
            self.budget.check()
