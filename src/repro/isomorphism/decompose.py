"""STwig-style query decomposition for the single-graph regime.

"Efficient Subgraph Matching on Billion Node Graphs" (Sun et al.,
PVLDB 2012) answers subgraph queries over one massive graph by cutting
the query into **STwigs** — two-level trees, a root plus its leaves —
ordered so that rare, high-degree roots are matched first, and joining
the per-STwig matches.  This module reproduces the decomposition and
ordering as *domain machinery*: the harness here does not ship a join
engine, it feeds the existing Ullmann/VF2 verifiers per-vertex
candidate domains, and the STwig structure is what narrows and orders
those domains.

Three consumers:

* :meth:`repro.indexes.base.GraphIndex.filter_vertices` prunes every
  method's domains with :func:`prune_domains` (a root survives only if
  its data-graph neighborhood covers the STwig's leaf labels);
* :func:`embedding_root` picks the query vertex whose domain is
  enumerated as embedding roots (the first STwig root — the rarest
  anchor, exactly the paper's match-order head);
* the ``cni`` index narrows the same domains further with its
  neighborhood signatures before verification.

Everything is deterministic: selection breaks ties by vertex id, so
two processes decompose one query identically — the property sharded
sweeps rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph

__all__ = [
    "STwig",
    "decompose_query",
    "match_order",
    "embedding_root",
    "initial_domains",
    "prune_domains",
]


@dataclass(frozen=True, slots=True)
class STwig:
    """One two-level tree of the query: a root and its leaf fringe."""

    #: Query vertex anchoring this STwig.
    root: int
    #: Query neighbors of the root covered by this STwig, ascending.
    leaves: tuple[int, ...]


def _frequencies(data) -> dict:
    """Label → vertex count in the data graph (rarity ranking)."""
    return data.label_histogram()


def decompose_query(query: Graph, data) -> list[STwig]:
    """Cut *query* into an edge cover of STwigs, rarest-root first.

    Greedy, per the paper's ``STwig-order``: repeatedly pick the vertex
    minimizing ``freq(label) / uncovered-degree`` (rare labels and high
    degrees make selective roots), emit the STwig of its still-uncovered
    incident edges, and mark them covered.  Isolated query vertices get
    leafless STwigs at the end, so every query vertex appears in the
    decomposition.  Ties break by vertex id — the decomposition is a
    pure function of (query, data labels).
    """
    freq = _frequencies(data)
    uncovered: set[frozenset[int]] = {
        frozenset(edge) for edge in query.edges()
    }
    fringe = [
        sum(1 for w in query.neighbors(v)) for v in query.vertices()
    ]
    stwigs: list[STwig] = []
    seen_roots: set[int] = set()
    while uncovered:
        def selectivity(v: int) -> tuple:
            degree = fringe[v]
            return (freq.get(query.label(v), 0) / degree, v)

        root = min(
            (v for v in query.vertices() if fringe[v] > 0), key=selectivity
        )
        leaves = tuple(
            sorted(
                w
                for w in query.neighbors(root)
                if frozenset((root, w)) in uncovered
            )
        )
        for w in leaves:
            uncovered.discard(frozenset((root, w)))
            fringe[w] -= 1
        fringe[root] = 0
        seen_roots.add(root)
        stwigs.append(STwig(root=root, leaves=leaves))
    for v in query.vertices():
        if query.degree(v) == 0:
            stwigs.append(STwig(root=v, leaves=()))
    return stwigs


def match_order(query: Graph, data) -> tuple[int, ...]:
    """Every query vertex once, in STwig exploration order.

    Roots first within each STwig, then its leaves — the order the
    paper's join pipeline binds vertices, reused here to pick
    enumeration anchors deterministically.
    """
    order: list[int] = []
    placed: set[int] = set()
    for stwig in decompose_query(query, data):
        for v in (stwig.root, *stwig.leaves):
            if v not in placed:
                placed.add(v)
                order.append(v)
    return tuple(order)


def embedding_root(query: Graph, data) -> int:
    """The query vertex whose candidates are reported as embedding roots.

    The head of :func:`match_order` — the rarest, best-anchored vertex,
    so the reported root set is as selective as the decomposition can
    make it.  Requires a non-empty query.
    """
    if query.order == 0:
        raise ValueError("an empty query has no embedding root")
    return match_order(query, data)[0]


def initial_domains(query: Graph, data) -> list[set[int]]:
    """Label- and degree-feasible candidate domains per query vertex.

    The generic single-graph filter every index starts from (the twin
    of Ullmann's initial candidate matrix): ``domains[u]`` holds the
    data vertices with ``u``'s label and at least its degree.  Unlike
    the matcher-internal variant, an infeasible vertex yields an
    *empty set* rather than aborting — the caller reports empty
    domains as an empty answer.
    """
    pick = getattr(data, "candidate_vertices", None)
    if pick is not None:
        return [
            set(pick(query.label(u), query.degree(u)))
            for u in query.vertices()
        ]
    by_label = data.vertices_by_label()
    return [
        {
            d
            for d in by_label.get(query.label(u), ())
            if data.degree(d) >= query.degree(u)
        }
        for u in query.vertices()
    ]


def _neighbor_counts_of(data, vertex: int) -> dict:
    """Neighbor-label histogram of one data vertex (CSR cache or walk)."""
    cached = getattr(data, "neighbor_label_counts", None)
    if cached is not None:
        return cached()[vertex]
    counts: dict = {}
    for w in data.neighbors(vertex):
        label = data.label(w)
        counts[label] = counts.get(label, 0) + 1
    return counts


def prune_domains(
    query: Graph, data, domains: list[set[int]]
) -> list[set[int]]:
    """Narrow *domains* with the STwig edge cover, superset-preserving.

    A candidate for an STwig root survives only if its data-graph
    neighborhood carries at least as many vertices of each leaf label
    as the STwig demands — any embedding maps the leaves onto distinct
    same-labeled neighbors, so dropped candidates host no embedding.
    Returns fresh sets; the input domains are not mutated.
    """
    pruned = [set(domain) for domain in domains]
    for stwig in decompose_query(query, data):
        if not stwig.leaves:
            continue
        need: dict = {}
        for w in stwig.leaves:
            label = query.label(w)
            need[label] = need.get(label, 0) + 1
        keep = set()
        for v in pruned[stwig.root]:
            counts = _neighbor_counts_of(data, v)
            if all(counts.get(label, 0) >= k for label, k in need.items()):
                keep.add(v)
        pruned[stwig.root] = keep
    return pruned
