"""VF2 subgraph monomorphism (paper Definition 3).

Given a query graph ``q`` and a data graph ``g``, find injective
mappings ``I`` of query vertices to data vertices such that labels agree
and every query edge maps to a data edge (extra data edges permitted —
*monomorphism*, not induced isomorphism).

This is the verification stage of all six benchmarked methods.  The
implementation follows VF2's state-space search with its feasibility
rules adapted to monomorphism:

* **label rule** — ``L(v) == L(I(v))``;
* **core rule** — every already-mapped query neighbor of the next query
  vertex must map to a data neighbor of the candidate;
* **degree / lookahead rule** — the candidate must have at least as many
  *unused* neighbors as the query vertex has *unmapped* neighbors (each
  of which must eventually occupy a distinct data neighbor);
* **neighbor-label rule** — the candidate's neighbor-label multiset must
  dominate the query vertex's (a cheap static refinement that CT-Index's
  tweaked matcher exploits).

Matching generates candidates by intersecting the data-neighbor sets of
the images of mapped query neighbors, so the branching factor collapses
quickly on labeled graphs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.graphs.graph import Graph
from repro.isomorphism.heuristics import connectivity_order
from repro.utils.budget import Budget

__all__ = ["SubgraphMatcher", "is_subgraph", "find_embedding", "count_embeddings"]

#: How many search-tree nodes between budget polls.
_BUDGET_POLL_INTERVAL = 2048

VertexOrder = Callable[[Graph, Graph | None], list[int]]


class SubgraphMatcher:
    """Reusable matcher for one (query, data) pair.

    Parameters
    ----------
    query, data:
        The pattern and the host graph.
    ordering:
        Strategy producing the query-vertex exploration order; defaults
        to :func:`~repro.isomorphism.heuristics.connectivity_order`.
    budget:
        Optional :class:`~repro.utils.budget.Budget` polled during the
        search, so runaway verifications honour the experiment limit.
    """

    def __init__(
        self,
        query: Graph,
        data: Graph,
        ordering: VertexOrder = connectivity_order,
        budget: Budget | None = None,
    ) -> None:
        self.query = query
        self.data = data
        self._budget = budget
        self._nodes_visited = 0
        self._order = ordering(query, data)
        # Earlier-mapped neighbors per position, so candidate generation
        # can intersect image adjacencies without rescanning.
        position_of = {v: i for i, v in enumerate(self._order)}
        self._mapped_neighbors: list[list[int]] = [
            [w for w in query.neighbors(v) if position_of[w] < i]
            for i, v in enumerate(self._order)
        ]
        self._data_labels = data.vertices_by_label()
        self._query_neighbor_labels = [
            _label_counts(query, v) for v in query.vertices()
        ]
        # The CSR core amortizes the per-vertex neighbor-label counts
        # (and the label groups above) across every matcher built on
        # the same data graph; the dict core recomputes them per pair.
        data_counts = getattr(data, "neighbor_label_counts", None)
        self._data_neighbor_labels = (
            data_counts()
            if data_counts is not None
            else [_label_counts(data, v) for v in data.vertices()]
        )
        self._root_candidates = getattr(data, "candidate_vertices", None)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def exists(self) -> bool:
        """True iff at least one monomorphism exists (first-match mode).

        This mirrors the benchmarked configuration: the paper patched
        Grapes so that *all* systems stop at the first match (§4.1).
        """
        for _ in self.iter_embeddings():
            return True
        return False

    def first(self) -> dict[int, int] | None:
        """The first embedding found, or ``None``."""
        for embedding in self.iter_embeddings():
            return embedding
        return None

    def count(self, limit: int | None = None) -> int:
        """Number of embeddings, optionally stopping at *limit*."""
        found = 0
        for _ in self.iter_embeddings():
            found += 1
            if limit is not None and found >= limit:
                break
        return found

    def iter_embeddings(self) -> Iterator[dict[int, int]]:
        """Yield each embedding as a query-vertex → data-vertex dict."""
        if self.query.order == 0:
            yield {}
            return
        if self.query.order > self.data.order or self.query.size > self.data.size:
            return
        if not self._labels_compatible():
            return
        mapping: dict[int, int] = {}
        used: set[int] = set()
        yield from self._search(0, mapping, used)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def _search(
        self, position: int, mapping: dict[int, int], used: set[int]
    ) -> Iterator[dict[int, int]]:
        if position == len(self._order):
            yield dict(mapping)
            return
        self._poll_budget()

        q_vertex = self._order[position]
        for d_vertex in self._candidates(position, mapping):
            if d_vertex in used:
                continue
            if not self._feasible(q_vertex, d_vertex, mapping, used):
                continue
            mapping[q_vertex] = d_vertex
            used.add(d_vertex)
            yield from self._search(position + 1, mapping, used)
            del mapping[q_vertex]
            used.discard(d_vertex)

    def _candidates(self, position: int, mapping: dict[int, int]):
        q_vertex = self._order[position]
        anchors = self._mapped_neighbors[position]
        if not anchors:
            # New component root: any data vertex with the right label
            # (the CSR core also mask-filters by degree in one shot;
            # vertices dropped would fail _feasible's degree rule).
            if self._root_candidates is not None:
                return self._root_candidates(
                    self.query.label(q_vertex), self.query.degree(q_vertex)
                )
            return self._data_labels.get(self.query.label(q_vertex), ())
        # Intersect the data adjacencies of the mapped anchor images,
        # starting from the smallest to keep the working set tiny.
        neighbor_sets = sorted(
            (self.data.neighbor_set(mapping[w]) for w in anchors), key=len
        )
        candidates = set(neighbor_sets[0])
        for neighbor_set in neighbor_sets[1:]:
            candidates &= neighbor_set
            if not candidates:
                break
        return candidates

    def _feasible(
        self, q_vertex: int, d_vertex: int, mapping: dict[int, int], used: set[int]
    ) -> bool:
        if self.query.label(q_vertex) != self.data.label(d_vertex):
            return False
        if self.query.degree(q_vertex) > self.data.degree(d_vertex):
            return False
        # Lookahead: unmapped query neighbors need distinct unused slots.
        unmapped_q = sum(
            1 for w in self.query.neighbors(q_vertex) if w not in mapping
        )
        if unmapped_q:
            unused_d = sum(
                1 for x in self.data.neighbors(d_vertex) if x not in used
            )
            if unmapped_q > unused_d:
                return False
        # Neighbor-label dominance.
        q_counts = self._query_neighbor_labels[q_vertex]
        d_counts = self._data_neighbor_labels[d_vertex]
        for lbl, needed in q_counts.items():
            if d_counts.get(lbl, 0) < needed:
                return False
        return True

    def _labels_compatible(self) -> bool:
        """Global precheck: per-label vertex counts must dominate."""
        data_histogram = self.data.label_histogram()
        for lbl, needed in self.query.label_histogram().items():
            if data_histogram.get(lbl, 0) < needed:
                return False
        return True

    def _poll_budget(self) -> None:
        if self._budget is None:
            return
        self._nodes_visited += 1
        if self._nodes_visited % _BUDGET_POLL_INTERVAL == 0:
            self._budget.check()


def _label_counts(graph: Graph, vertex: int) -> dict[object, int]:
    counts: dict[object, int] = {}
    for w in graph.neighbors(vertex):
        lbl = graph.label(w)
        counts[lbl] = counts.get(lbl, 0) + 1
    return counts


# ----------------------------------------------------------------------
# module-level conveniences
# ----------------------------------------------------------------------


def is_subgraph(
    query: Graph,
    data: Graph,
    ordering: VertexOrder = connectivity_order,
    budget: Budget | None = None,
) -> bool:
    """True iff *query* is subgraph-monomorphic to *data* (Def. 3)."""
    return SubgraphMatcher(query, data, ordering=ordering, budget=budget).exists()


def find_embedding(
    query: Graph,
    data: Graph,
    ordering: VertexOrder = connectivity_order,
    budget: Budget | None = None,
) -> dict[int, int] | None:
    """First embedding of *query* in *data*, or ``None``."""
    return SubgraphMatcher(query, data, ordering=ordering, budget=budget).first()


def count_embeddings(
    query: Graph,
    data: Graph,
    limit: int | None = None,
    ordering: VertexOrder = connectivity_order,
    budget: Budget | None = None,
) -> int:
    """Number of embeddings (optionally capped at *limit*)."""
    return SubgraphMatcher(query, data, ordering=ordering, budget=budget).count(limit)
