"""AHU canonical encoding for labeled free trees.

Tree features (CT-Index, Tree+Δ) are identified by a canonical form.
For *rooted* labeled trees the classic Aho–Hopcroft–Ullman encoding is
``enc(v) = (label(v), sorted(enc(children)))``; two rooted trees are
isomorphic iff their encodings are equal.  A *free* (unrooted) tree is
canonicalized by rooting at its center — the 1- or 2-vertex set left by
repeatedly peeling leaves, which is an isomorphism invariant — and
taking the minimum encoding over the center vertices.

The functions here operate on a tree given as a host
:class:`~repro.graphs.graph.Graph` plus an edge subset, so feature
enumerators never have to materialize per-feature ``Graph`` objects.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.canonical.order import label_key
from repro.graphs.graph import Graph

__all__ = ["tree_canonical", "tree_canonical_rooted", "tree_centers"]

Edge = tuple[int, int]


def tree_canonical(host: Graph, edges: Iterable[Edge]) -> tuple:
    """Canonical label of the free tree formed by *edges* within *host*.

    Parameters
    ----------
    host:
        The graph the feature lives in (labels are read from it).
    edges:
        Edge subset forming a tree (connected, acyclic).  A single
        vertex can be encoded by passing no edges together with
        :func:`tree_canonical_rooted` instead.

    Raises
    ------
    ValueError
        If the edge set is empty or does not form a tree.
    """
    adjacency = _tree_adjacency(edges)
    centers = tree_centers(adjacency)
    encodings = [
        _encode(host, adjacency, root=center, parent=-1) for center in centers
    ]
    return min(encodings, key=_encoding_key)


def tree_canonical_rooted(host: Graph, edges: Iterable[Edge], root: int) -> tuple:
    """AHU encoding of the tree formed by *edges*, rooted at *root*.

    With an empty edge set this encodes the single-vertex tree
    ``(label(root),)`` — used for size-0 features.
    """
    adjacency = _tree_adjacency(edges, ensure_vertex=root)
    if root not in adjacency:
        raise ValueError(f"root {root} is not a vertex of the tree")
    return _encode(host, adjacency, root=root, parent=-1)


def tree_centers(adjacency: dict[int, set[int]]) -> list[int]:
    """The 1 or 2 center vertices of a tree, by iterative leaf peeling."""
    degrees = {v: len(neighbors) for v, neighbors in adjacency.items()}
    remaining = set(adjacency)
    leaves = [v for v, d in degrees.items() if d <= 1]
    while len(remaining) > 2:
        next_leaves = []
        for leaf in leaves:
            remaining.discard(leaf)
            for neighbor in adjacency[leaf]:
                if neighbor in remaining:
                    degrees[neighbor] -= 1
                    if degrees[neighbor] == 1:
                        next_leaves.append(neighbor)
        leaves = next_leaves
    return sorted(remaining)


def _tree_adjacency(edges: Iterable[Edge], ensure_vertex: int | None = None) -> dict[int, set[int]]:
    """Adjacency map of the edge set; validates tree shape."""
    adjacency: dict[int, set[int]] = {}
    num_edges = 0
    for u, v in edges:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
        num_edges += 1
    if ensure_vertex is not None:
        adjacency.setdefault(ensure_vertex, set())
    if not adjacency:
        raise ValueError("tree_canonical requires at least one edge or a root")
    if len(adjacency) != num_edges + 1:
        raise ValueError(
            f"edge set is not a tree: {num_edges} edges over {len(adjacency)} vertices"
        )
    _check_connected(adjacency)
    return adjacency


def _check_connected(adjacency: dict[int, set[int]]) -> None:
    start = next(iter(adjacency))
    seen = {start}
    stack = [start]
    while stack:
        v = stack.pop()
        for w in adjacency[v]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    if len(seen) != len(adjacency):
        raise ValueError("edge set is not connected")


def _encode(host: Graph, adjacency: dict[int, set[int]], root: int, parent: int) -> tuple:
    """Recursive AHU encoding: (label, sorted child encodings)."""
    children = [
        _encode(host, adjacency, root=child, parent=root)
        for child in adjacency[root]
        if child != parent
    ]
    children.sort(key=_encoding_key)
    return (host.label(root), tuple(children))


def _encoding_key(encoding: tuple):
    """Comparable view of an encoding: labels replaced by label_key."""
    label, children = encoding
    return (label_key(label), tuple(_encoding_key(child) for child in children))
