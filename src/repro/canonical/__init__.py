"""Canonical labels for graph features (paper §2.2).

Every index identifies features by a *canonical label*: a representation
that is identical for isomorphic features and distinct for
non-isomorphic ones.  Each feature structure has its own algorithm:

* **paths** — minimum of the label sequence and its reverse
  (:func:`~repro.canonical.paths.path_canonical`);
* **free trees** — AHU encoding rooted at the tree center(s)
  (:func:`~repro.canonical.trees.tree_canonical`);
* **simple cycles** — lexicographically minimal rotation over both
  traversal directions (:func:`~repro.canonical.cycles.cycle_canonical`);
* **general connected graphs** — gSpan minimum DFS code
  (:func:`~repro.canonical.dfscode.min_dfs_code`), also the backbone of
  the frequent-subgraph miner used by gIndex.

All orderings go through :func:`~repro.canonical.order.label_key`, so
mixed label types (e.g. ints and strings) never raise comparison errors.
"""

from repro.canonical.cycles import cycle_canonical
from repro.canonical.dfscode import (
    DfsCode,
    dfs_code_graph,
    is_min_dfs_code,
    min_dfs_code,
)
from repro.canonical.order import label_key
from repro.canonical.paths import path_canonical
from repro.canonical.trees import tree_canonical, tree_canonical_rooted

__all__ = [
    "label_key",
    "path_canonical",
    "tree_canonical",
    "tree_canonical_rooted",
    "cycle_canonical",
    "DfsCode",
    "min_dfs_code",
    "is_min_dfs_code",
    "dfs_code_graph",
]
