"""A total order over arbitrary hashable vertex labels.

Canonical-form algorithms need to *sort* labels.  Datasets in the wild
mix label types (our generators use strings, tests use ints), and Python
refuses to order unlike types.  ``label_key`` maps any hashable label to
a tuple ``(type_tag, comparable)`` that sorts consistently: first by
type name, then by natural order within the type (falling back to
``repr`` for exotic types).
"""

from __future__ import annotations

from functools import lru_cache

__all__ = ["label_key"]


@lru_cache(maxsize=65536)
def label_key(label: object) -> tuple[str, object]:
    """Return a sort key that totally orders any mix of labels.

    The key is deterministic across processes (no ``id``/``hash`` use),
    which canonical labels require.
    """
    if isinstance(label, bool):  # bool is an int subclass; keep it distinct
        return ("bool", label)
    if isinstance(label, int):
        return ("int", label)
    if isinstance(label, float):
        return ("float", label)
    if isinstance(label, str):
        return ("str", label)
    if isinstance(label, bytes):
        return ("bytes", label)
    return (type(label).__name__, repr(label))
