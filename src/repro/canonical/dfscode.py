"""Minimum DFS codes (gSpan) for connected labeled graphs.

gIndex identifies its graph-structured features by gSpan's *minimum DFS
code* canonical form (Yan & Han, SIGMOD 2004 [21] builds directly on
gSpan), and our frequent-subgraph miner (:mod:`repro.mining.gspan`) uses
the same machinery for duplicate elimination.

A DFS code is a sequence of edge tuples ``(i, j, l_i, l_j)`` where ``i``
and ``j`` are DFS discovery indexes and ``l_i``/``l_j`` vertex labels
(edge labels are not used; the benchmarked implementations all work on
vertex-labeled graphs).  A *forward* edge has ``j == max_index + 1``; a
*backward* edge has ``j < i`` with ``i`` the current rightmost vertex.
The canonical form of a graph is the lexicographically smallest code
over all DFS traversals, under gSpan's edge order:

* backward extensions precede forward extensions;
* among backward extensions (all from the rightmost vertex), smaller
  target index first;
* among forward extensions, deeper source on the rightmost path first,
  then smaller new-vertex label.

The computation below is the standard greedy embedding-set search: keep
every partial traversal realizing the minimal code prefix and extend all
of them by the minimal next edge.  Greedy per-step minimization is
exact here because, under the gSpan candidate order, the minimal
extension never strands an unexplored edge (backward edges are always
drained before forward ones, and deeper forward candidates precede
shallower ones, so vertices only leave the rightmost path once all
their incident edges are used).
"""

from __future__ import annotations

from repro.canonical.order import label_key
from repro.graphs.graph import Graph, GraphError

__all__ = [
    "DfsCode",
    "min_dfs_code",
    "is_min_dfs_code",
    "dfs_code_graph",
    "rightmost_path",
]

#: One DFS-code entry: (from_index, to_index, from_label, to_label).
CodeEdge = tuple[int, int, object, object]
DfsCode = tuple[CodeEdge, ...]


class _Embedding:
    """A partial DFS traversal realizing the current minimal code prefix."""

    __slots__ = ("vmap", "mapped", "rpath", "used")

    def __init__(self, vmap: tuple[int, ...], rpath: tuple[int, ...], used: frozenset) -> None:
        self.vmap = vmap                   # DFS index -> graph vertex
        self.mapped = set(vmap)            # graph vertices already visited
        self.rpath = rpath                 # DFS indexes on the rightmost path
        self.used = used                   # frozenset of frozenset edges


def min_dfs_code(graph: Graph) -> DfsCode:
    """Compute the minimum DFS code of a connected graph with ≥ 1 edge.

    Raises
    ------
    GraphError
        If the graph has no edges or is disconnected (patterns are
        always connected).
    """
    if graph.size == 0:
        raise GraphError("min_dfs_code requires at least one edge")
    if not graph.is_connected():
        raise GraphError("min_dfs_code requires a connected graph")

    code: list[CodeEdge] = []
    embeddings = _initial_embeddings(graph, code)
    for _ in range(graph.size - 1):
        embeddings = _extend_minimally(graph, code, embeddings)
    return tuple(code)


def is_min_dfs_code(code: DfsCode) -> bool:
    """True iff *code* is the minimum DFS code of the graph it describes."""
    return code == min_dfs_code(dfs_code_graph(code))


def dfs_code_graph(code: DfsCode) -> Graph:
    """Reconstruct the pattern graph described by a DFS code."""
    if not code:
        raise GraphError("empty DFS code")
    labels: dict[int, object] = {}
    for i, j, li, lj in code:
        labels.setdefault(i, li)
        labels.setdefault(j, lj)
        if labels[i] != li or labels[j] != lj:
            raise GraphError(f"inconsistent labels in DFS code at edge ({i}, {j})")
    n = max(labels) + 1
    if sorted(labels) != list(range(n)):
        raise GraphError("DFS code does not use dense vertex indexes")
    graph = Graph([labels[v] for v in range(n)])
    for i, j, _, _ in code:
        graph.add_edge(i, j)
    return graph


def rightmost_path(code: DfsCode) -> tuple[int, ...]:
    """DFS indexes on the rightmost path of *code*, root first.

    The rightmost vertex is the target of the last forward edge; the
    path follows forward-edge parents back to the root (index 0).
    """
    parent: dict[int, int] = {}
    rightmost = 0
    for i, j, _, _ in code:
        if j > i:  # forward edge
            parent[j] = i
            rightmost = max(rightmost, j)
    path = [rightmost]
    while path[-1] in parent:
        path.append(parent[path[-1]])
    path.reverse()
    return tuple(path)


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------


def _initial_embeddings(graph: Graph, code: list[CodeEdge]) -> list[_Embedding]:
    """Pick the minimal first edge and seed embeddings for it."""
    best_key = None
    best: list[tuple[int, int]] = []
    for u, v in graph.edges():
        for a, b in ((u, v), (v, u)):
            key = (label_key(graph.label(a)), label_key(graph.label(b)))
            if best_key is None or key < best_key:
                best_key, best = key, [(a, b)]
            elif key == best_key:
                best.append((a, b))
    a0, b0 = best[0]
    code.append((0, 1, graph.label(a0), graph.label(b0)))
    return [
        _Embedding(vmap=(a, b), rpath=(0, 1), used=frozenset((frozenset((a, b)),)))
        for a, b in best
    ]


def _extend_minimally(
    graph: Graph, code: list[CodeEdge], embeddings: list[_Embedding]
) -> list[_Embedding]:
    """Append the minimal next code edge; return the surviving embeddings."""
    best_key = None
    best: list[tuple[_Embedding, tuple]] = []

    for emb in embeddings:
        rm_index = emb.rpath[-1]
        rm_vertex = emb.vmap[rm_index]
        # Backward candidates: rightmost vertex -> rightmost-path ancestor.
        for j_index in emb.rpath[:-1]:
            target = emb.vmap[j_index]
            if graph.has_edge(rm_vertex, target):
                edge = frozenset((rm_vertex, target))
                if edge not in emb.used:
                    key = (0, j_index)
                    if best_key is None or key < best_key:
                        best_key, best = key, [(emb, ("b", j_index, target))]
                    elif key == best_key:
                        best.append((emb, ("b", j_index, target)))
        # Forward candidates: rightmost-path vertex -> unmapped neighbor.
        for i_index in emb.rpath:
            source = emb.vmap[i_index]
            for w in graph.neighbors(source):
                if w not in emb.mapped:
                    key = (1, -i_index, label_key(graph.label(w)))
                    if best_key is None or key < best_key:
                        best_key, best = key, [(emb, ("f", i_index, w))]
                    elif key == best_key:
                        best.append((emb, ("f", i_index, w)))

    if best_key is None:
        raise GraphError("no DFS extension found; graph must be connected")

    next_index = max(max(i, j) for i, j, _, _ in code) + 1
    survivors: list[_Embedding] = []
    seen_states: set[tuple] = set()
    first = True
    for emb, (kind, idx, w) in best:
        rm_index = emb.rpath[-1]
        if kind == "b":
            if first:
                code.append((rm_index, idx, graph.label(emb.vmap[rm_index]), graph.label(w)))
                first = False
            used = emb.used | {frozenset((emb.vmap[rm_index], w))}
            state = (emb.vmap, used)
            if state not in seen_states:
                seen_states.add(state)
                survivors.append(_Embedding(emb.vmap, emb.rpath, used))
        else:
            if first:
                code.append((idx, next_index, graph.label(emb.vmap[idx]), graph.label(w)))
                first = False
            vmap = emb.vmap + (w,)
            position = emb.rpath.index(idx)
            rpath = emb.rpath[: position + 1] + (next_index,)
            used = emb.used | {frozenset((emb.vmap[idx], w))}
            state = (vmap, used)
            if state not in seen_states:
                seen_states.add(state)
                survivors.append(_Embedding(vmap, rpath, used))
    return survivors
