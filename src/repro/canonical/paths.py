"""Canonical labels for labeled simple paths.

A path feature is fully described by the sequence of vertex labels along
it.  An undirected path can be read in two directions; the canonical
label is whichever reading sorts first, so both traversals of one path
(and any two isomorphic paths) share a label.  Used by GraphGrepSX and
Grapes (path features) and by gCode's path-based signatures.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.canonical.order import label_key

__all__ = ["path_canonical"]


def path_canonical(labels: Sequence[object]) -> tuple:
    """Canonical label of the path whose vertices carry *labels* in order.

    Returns a tuple of the original label objects, read in the direction
    that is lexicographically smaller under
    :func:`~repro.canonical.order.label_key`.

    Examples
    --------
    >>> path_canonical(["C", "O", "N"])
    ('C', 'O', 'N')
    >>> path_canonical(["N", "O", "C"])
    ('C', 'O', 'N')
    """
    forward = tuple(labels)
    backward = forward[::-1]
    forward_key = [label_key(label) for label in forward]
    backward_key = forward_key[::-1]
    return forward if forward_key <= backward_key else backward
