"""Canonical labels for labeled simple cycles.

A simple cycle feature is the cyclic sequence of vertex labels around
it.  Two cycles are isomorphic iff one label sequence is a rotation of
the other, possibly reversed.  The canonical label is the
lexicographically minimal sequence over all rotations of both
directions.  Used by CT-Index (cycle features) and Tree+Δ (Δ features
start from simple cycles).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.canonical.order import label_key

__all__ = ["cycle_canonical"]


def cycle_canonical(labels: Sequence[object]) -> tuple:
    """Canonical label of the cycle with vertex *labels* in cyclic order.

    The input lists each cycle vertex exactly once (the wrap-around edge
    back to the first vertex is implicit).

    Examples
    --------
    >>> cycle_canonical(["O", "C", "N"])
    ('C', 'N', 'O')
    >>> cycle_canonical(["N", "O", "C"])
    ('C', 'N', 'O')
    """
    ring = tuple(labels)
    if len(ring) < 3:
        raise ValueError(f"a simple cycle has at least 3 vertices, got {len(ring)}")
    best: tuple | None = None
    best_key: list | None = None
    for candidate in _rotations(ring):
        key = [label_key(label) for label in candidate]
        if best_key is None or key < best_key:
            best, best_key = candidate, key
    assert best is not None
    return best


def _rotations(ring: tuple):
    """Yield every rotation of *ring* in both directions."""
    n = len(ring)
    for direction in (ring, ring[::-1]):
        for start in range(n):
            yield direction[start:] + direction[:start]
