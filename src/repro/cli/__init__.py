"""Command-line interface: the benchmark study as a tool.

``python -m repro`` exposes the library's pipeline as subcommands::

    repro generate out.gfd --graphs 100 --nodes 24 --density 0.12 --labels 6
    repro generate out.gfd --real AIDS --scale 0.02
    repro stats out.gfd
    repro queries out.gfd queries.gfd --count 10 --edges 8
    repro build out.gfd --method grapes --save grapes.idx
    repro query out.gfd queries.gfd --method grapes --method ggsx
    repro sweep nodes --plot

All randomized commands accept ``--seed`` and are exactly reproducible.
"""

from repro.cli.main import build_parser, main

__all__ = ["main", "build_parser"]
