"""Implementations of the ``repro`` subcommands."""

from __future__ import annotations

import argparse
import inspect
from pathlib import Path

from repro.core.arena import ArenaHandle, DatasetArena, cached_dataset
from repro.core.knobs import passthrough_cli as knob_passthrough_cli
from repro.core.experiments import (
    density_sweep,
    graph_count_sweep,
    labels_sweep,
    massive_sweep,
    nodes_sweep,
    real_dataset_experiment,
)
from repro.core.metrics import summarize_results
from repro.core.parallel import persistent_pool
from repro.core.plots import ascii_plot
from repro.core.presets import active_profile
from repro.core.report import render_sweep, render_table1
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.generators.realsets import make_real_dataset
from repro.graphs.csr import as_core_dataset
from repro.graphs.dataset import dataset_fingerprint
from repro.graphs.graph import GraphError
from repro.graphs.io import read_dataset, write_dataset
from repro.graphs.statistics import dataset_statistics
from repro.indexes import ALL_INDEX_CLASSES
from repro.indexes.store import (
    IndexFileError,
    load_index,
    materialize_artifact,
    save_index,
    shared_store,
)
from repro.core.runner import make_method
from repro.utils.budget import Budget, BudgetExceeded

__all__ = ["CliError"]


class CliError(Exception):
    """User-facing command failure (bad input, missing file, timeout)."""


def _load_dataset(path: str):
    try:
        return read_dataset(path)
    except FileNotFoundError:
        raise CliError(f"dataset file not found: {path}")
    except GraphError as exc:
        raise CliError(f"malformed dataset {path}: {exc}")


def _require_known_method(name: str) -> None:
    if name not in ALL_INDEX_CLASSES:
        known = ", ".join(ALL_INDEX_CLASSES)
        raise CliError(f"unknown method {name!r}; expected one of {known}")


def _supported_options(method: str, options: dict) -> dict:
    """The subset of *options* the method's constructor accepts.

    ``repro query`` applies one ``--option`` list to several methods
    with different knobs; silently dropping inapplicable keys keeps the
    comparison runnable (e.g. ``max_path_edges`` means nothing to the
    naive baseline).
    """
    accepted = inspect.signature(ALL_INDEX_CLASSES[method].__init__).parameters
    return {key: value for key, value in options.items() if key in accepted}


def _parse_options(pairs: list[str]) -> dict:
    """Parse --option KEY=VALUE pairs with numeric coercion."""
    options: dict = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator:
            raise CliError(f"--option expects KEY=VALUE, got {pair!r}")
        value: object = raw
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                if raw.lower() in ("true", "false"):
                    value = raw.lower() == "true"
        options[key] = value
    return options


def _resolve_jobs(jobs: int) -> int | None:
    """CLI --jobs convention: 0 = all cores (None), otherwise N >= 1."""
    if jobs < 0:
        raise CliError(f"--jobs must be >= 0, got {jobs}")
    return jobs if jobs > 0 else None


def _apply_knobs(args: argparse.Namespace) -> None:
    """Export every knob flag (``--graph-core``, ``--feature-core``,
    ``--regime``) to the process and its future workers.

    One call per subcommand replaces the per-flag helpers this module
    used to copy-paste: the toggles travel as their ``REPRO_*``
    variables — like ``REPRO_SCALE``, worker processes inherit them at
    spawn, so one flag governs the whole invocation, and no flag leaves
    the environment (and thus the default) alone.  See
    :mod:`repro.core.knobs`.
    """
    from repro.core.knobs import apply_cli_args

    apply_cli_args(args)


def _shareable(dataset, jobs: int | None):
    """The dataset itself, or an arena handle when a pool will run.

    ``repro build``/``repro query`` batch per-method pipelines across
    workers; sharing the dataset through one arena segment keeps it from
    being pickled once per method.  Returns ``(payload_dataset, arena)``
    — the caller closes the arena (if any) when done.
    """
    if jobs is not None and jobs <= 1:
        return dataset, None
    arena = DatasetArena.create(dataset)
    return arena.handle, arena


def _resolve_payload_dataset(dataset):
    """Worker side of :func:`_shareable` (yields the active graph core)."""
    if isinstance(dataset, ArenaHandle):
        return cached_dataset(dataset)
    return as_core_dataset(dataset)


def _payload_digest(dataset) -> int:
    """Dataset content digest of a worker payload (free for arenas)."""
    if isinstance(dataset, ArenaHandle):
        return dataset.fingerprint
    return dataset_fingerprint(dataset)


def _built_via_store(
    method: str,
    options: dict,
    dataset,
    store_dir: str | None,
    materialize: bool = True,
):
    """Build one method, through the artifact store when configured.

    Returns ``(index, row, digest)`` — the queryable index, a printable
    build row (``None`` when the caller must build), and the dataset
    digest already computed for the lookup (to hand back to
    :func:`_store_built_index`, the O(dataset) fingerprint is paid
    once).  A store hit skips the build entirely and reports the
    artifact's provenance (the original measured build seconds);
    callers that only print the row (``repro build`` without ``--save``)
    pass ``materialize=False`` to skip the O(payload) import too, and
    get ``index=None`` on a hit.
    """
    index = make_method(method, options)
    store = shared_store(store_dir) if store_dir else None
    digest = _payload_digest(dataset) if store is not None else None
    if store is not None:
        artifact = store.get(method, index.index_params(), digest)
        if artifact is not None:
            provenance = artifact.provenance
            row = {
                "method": method,
                "status": "ok",
                "seconds": provenance.build_seconds,
                "size_bytes": provenance.size_bytes,
                "details": dict(provenance.details),
                "reused": True,
            }
            if not materialize:
                return None, row, digest
            resolved = _resolve_payload_dataset(dataset)
            return materialize_artifact(artifact, resolved), row, digest
    return index, None, digest  # caller builds (budgets are caller-specific)


def _store_built_index(index, store_dir: str | None, digest: int | None) -> None:
    """Write a freshly built index through to the artifact store."""
    if store_dir and digest is not None:
        from repro.indexes.store import artifact_from_index

        shared_store(store_dir).put(artifact_from_index(index, digest))


def _build_worker(payload: tuple) -> dict:
    """Build one method over the (possibly arena-shared) dataset.

    Top-level so worker processes can import it; budget overruns come
    back as a status, programming errors propagate like any other
    pool task.
    """
    dataset, method, options, budget_seconds, store_dir = payload
    index, row, digest = _built_via_store(
        method, options, dataset, store_dir, materialize=False
    )
    if row is not None:
        return row
    resolved = _resolve_payload_dataset(dataset)
    budget = (
        Budget(budget_seconds, phase=f"{method} build") if budget_seconds else None
    )
    try:
        report = index.build(resolved, budget=budget)
    except BudgetExceeded:
        return {"method": method, "status": "timeout"}
    _store_built_index(index, store_dir, digest)
    return {
        "method": method,
        "status": "ok",
        "seconds": report.seconds,
        "size_bytes": report.size_bytes,
        "details": dict(report.details),
    }


def _query_worker(payload: tuple) -> dict:
    """Build one method and run the workload through it (top-level for
    pool pickling).  Answer sets come back as sorted id tuples so the
    parent can check cross-method agreement without shipping sets."""
    dataset, queries, method, options, budget_seconds, store_dir = payload
    index, row, digest = _built_via_store(method, options, dataset, store_dir)
    if row is None:
        index.build(_resolve_payload_dataset(dataset))
        _store_built_index(index, store_dir, digest)
    return _run_query_rows(index, queries, budget_seconds)


def _run_query_rows(index, queries, budget_seconds) -> dict:
    """Query *index* and reduce the outcome to a printable row.

    The answer regime comes from the ``--regime`` knob (read from the
    environment here, so pool workers resolve it identically): graph
    ids by default, embedding roots under ``--regime single-graph``.
    """
    from repro.core.knobs import REGIME

    budget = (
        Budget(budget_seconds, phase=f"{index.name} queries")
        if budget_seconds
        else None
    )
    try:
        results = [
            index.query(query, budget=budget, regime=REGIME.active())
            for query in queries
        ]
    except BudgetExceeded:
        return {"method": index.name, "status": "timeout"}
    return {
        "method": index.name,
        "status": "ok",
        "stats": summarize_results(results),
        "answers": tuple(tuple(sorted(r.answers)) for r in results),
    }


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    if args.real:
        dataset = make_real_dataset(args.real, scale=args.scale, seed=args.seed)
    else:
        config = GraphGenConfig(
            num_graphs=args.graphs,
            mean_nodes=args.nodes,
            mean_density=args.density,
            num_labels=args.labels,
        )
        dataset = generate_dataset(config, seed=args.seed)
    write_dataset(dataset, args.output)
    stats = dataset_statistics(dataset)
    print(
        f"wrote {stats.num_graphs} graphs "
        f"(avg {stats.avg_vertices:.1f} nodes, {stats.avg_edges:.1f} edges, "
        f"{stats.num_labels} labels) to {args.output}"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset)
    stats = dataset_statistics(dataset, name=Path(args.dataset).stem)
    print(render_table1({stats.name: stats}))
    return 0


def cmd_queries(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset)
    try:
        queries = generate_queries(dataset, args.count, args.edges, seed=args.seed)
    except ValueError as exc:
        raise CliError(str(exc))
    from repro.graphs.dataset import GraphDataset

    workload = GraphDataset(queries, name="queries")
    write_dataset(workload, args.output)
    print(f"wrote {len(queries)} queries of {args.edges} edges to {args.output}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    _apply_knobs(args)
    dataset = _load_dataset(args.dataset)
    methods = list(args.method)
    for method in methods:
        _require_known_method(method)
    if args.save and len(methods) > 1:
        raise CliError("--save supports a single --method")
    jobs = _resolve_jobs(args.jobs)
    options = _parse_options(args.option)

    if len(methods) == 1:
        # The original single-build path — a pool buys nothing for one
        # build: options unfiltered (a typo'd key should fail loudly),
        # index kept in-process for --save.
        method = methods[0]
        # The index instance is only needed when persisting it.
        index, row, digest = _built_via_store(
            method, options, dataset, args.index_store,
            materialize=bool(args.save),
        )
        if row is None:
            budget = (
                Budget(args.budget, phase=f"{method} build") if args.budget else None
            )
            try:
                report = index.build(_resolve_payload_dataset(dataset), budget=budget)
            except BudgetExceeded:
                raise CliError(
                    f"{method} exceeded the {args.budget:.0f}s build budget "
                    "(the paper's 'failed to index')"
                )
            _store_built_index(index, args.index_store, digest)
            row = {
                "status": "ok",
                "seconds": report.seconds,
                "size_bytes": report.size_bytes,
                "details": dict(report.details),
            }
        _print_build_row(method, len(dataset), row)
        if args.save:
            save_index(index, args.save)
            print(f"saved index to {args.save}")
        return 0

    # Several methods: each gets the subset of options its constructor
    # accepts (like `repro query`), but a key NO selected method knows
    # is certainly a typo and must fail as loudly as the single-method
    # path does.
    for key in options:
        if all(key not in _supported_options(m, options) for m in methods):
            raise CliError(
                f"option {key!r} is not accepted by any selected method"
            )
    # Batch the builds through the shared pool, with the dataset in one
    # arena segment instead of pickled per method.
    payload_dataset, arena = _shareable(dataset, jobs)
    try:
        tasks = [
            (
                payload_dataset,
                method,
                _supported_options(method, options),
                args.budget,
                args.index_store,
            )
            for method in methods
        ]
        rows = persistent_pool().runner(jobs).map(_build_worker, tasks)
    finally:
        if arena is not None:
            arena.close()
        persistent_pool().close()
    timed_out = [row for row in rows if row["status"] == "timeout"]
    for row in rows:
        _print_build_row(row["method"], len(dataset), row)
    if timed_out:
        # Same contract as the single-method path: a timed-out build is
        # a failed command, even when other methods finished.
        names = ", ".join(row["method"] for row in timed_out)
        raise CliError(
            f"{names} exceeded the {args.budget:.0f}s build budget "
            "(the paper's 'failed to index')"
        )
    return 0


def _print_build_row(method: str, num_graphs: int, row: dict) -> None:
    if row["status"] == "timeout":
        print(f"{method} TIMED OUT (build budget)")
        return
    verb = "reused" if row.get("reused") else "built"
    suffix = " [from index store]" if row.get("reused") else ""
    print(
        f"{verb} {method} over {num_graphs} graphs in "
        f"{row['seconds']:.3f}s ({row['size_bytes'] / 1024:.1f} KiB){suffix}"
    )
    for key, value in row["details"].items():
        print(f"  {key}: {value}")


def cmd_query(args: argparse.Namespace) -> int:
    _apply_knobs(args)
    dataset = _load_dataset(args.dataset)
    from repro.core.knobs import REGIME
    from repro.indexes import SINGLE_GRAPH

    if REGIME.active() == SINGLE_GRAPH and len(dataset) != 1:
        raise CliError(
            f"--regime single-graph requires a one-graph dataset; "
            f"{args.dataset} has {len(dataset)} graphs"
        )
    workload = _load_dataset(args.queries)
    queries = list(workload)
    if not queries:
        raise CliError(f"no queries in {args.queries}")
    options = _parse_options(args.option)
    jobs = _resolve_jobs(args.jobs)

    rows: list[dict] = []
    loaded_name = None
    if args.load:
        try:
            loaded = load_index(args.load, expect_dataset=dataset)
        except (FileNotFoundError, IndexFileError) as exc:
            raise CliError(str(exc))
        loaded_name = loaded.name
        # A persisted index is already built; query it in-process.
        rows.append(_run_query_rows(loaded, queries, args.budget))
    methods = [
        method
        for method in (args.method or list(ALL_INDEX_CLASSES))
        if method != loaded_name
    ]
    for method in methods:
        _require_known_method(method)

    if len(methods) <= 1 or (jobs is not None and jobs <= 1):
        # One pipeline (or sequential mode): a pool and an arena would
        # only add overhead.
        for method in methods:
            method_options = _supported_options(method, options)
            index, row, digest = _built_via_store(
                method, method_options, dataset, args.index_store
            )
            if row is None:
                index.build(_resolve_payload_dataset(dataset))
                _store_built_index(index, args.index_store, digest)
            rows.append(_run_query_rows(index, queries, args.budget))
    else:
        # Batch the per-method build+query pipelines across the pool,
        # sharing the dataset through one arena segment (ROADMAP item:
        # `repro query` parallelizes like `repro sweep` does).
        payload_dataset, arena = _shareable(dataset, jobs)
        try:
            tasks = [
                (
                    payload_dataset,
                    tuple(queries),
                    method,
                    _supported_options(method, options),
                    args.budget,
                    args.index_store,
                )
                for method in methods
            ]
            rows.extend(persistent_pool().runner(jobs).map(_query_worker, tasks))
        finally:
            if arena is not None:
                arena.close()
            persistent_pool().close()

    print(f"{len(queries)} queries against {len(dataset)} graphs:")
    reference = None
    for row in rows:
        if row["status"] == "timeout":
            print(f"  {row['method']:11s} TIMED OUT")
            continue
        stats = row["stats"]
        if reference is None:
            reference = row["answers"]
        agreement = "" if row["answers"] == reference else "  !! DISAGREES"
        print(
            f"  {row['method']:11s} avg {stats.avg_query_seconds * 1e3:8.3f}ms  "
            f"candidates {stats.avg_candidates:7.1f}  "
            f"answers {stats.avg_answers:6.1f}  "
            f"fp {stats.false_positive_ratio:.3f}{agreement}"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    _apply_knobs(args)
    from repro.core.serve import (
        QueryService,
        ServeError,
        make_server,
        run_server,
    )

    dataset = _load_dataset(args.dataset)
    methods = list(args.method) or None
    for method in methods or []:
        _require_known_method(method)
    options = _parse_options(args.option)
    service = QueryService(
        dataset,
        methods=methods,
        method_options=options,
        index_store_dir=args.index_store,
        reuse_indexes=not args.no_index_reuse,
        name=Path(args.dataset).stem,
    )
    print(
        f"warming {len(service.methods)} method(s) over "
        f"{len(service.dataset)} graphs..."
    )
    try:
        states = service.warm(_resolve_jobs(args.jobs))
    except ServeError as exc:
        raise CliError(str(exc))
    for method, state in states.items():
        verb = "reused" if state.reused else "built"
        suffix = " [from index store]" if state.reused else ""
        print(
            f"  {verb} {method} in {state.build_seconds:.3f}s "
            f"({state.index_bytes / 1024:.1f} KiB){suffix}"
        )
    try:
        server = make_server(service, args.host, args.port)
    except OSError as exc:
        raise CliError(f"cannot bind {args.host}:{args.port}: {exc}")
    return run_server(server)


def cmd_bench_serve(args: argparse.Namespace) -> int:
    _apply_knobs(args)
    import dataclasses
    import json
    import threading

    from repro.core.loadgen import (
        ScenarioError,
        bench_record,
        evaluate_kpis,
        load_scenario,
        metrics_of,
        post_query,
        run_load,
    )
    from repro.core.serve import (
        QueryService,
        ServeError,
        answers_of,
        make_server,
    )
    from repro.graphs.dataset import DatasetDelta, GraphDataset, apply_delta
    from repro.graphs.io import dumps_dataset

    try:
        scenario = load_scenario(args.scenario)
    except ScenarioError as exc:
        raise CliError(str(exc))
    if not args.queries:
        raise CliError(
            "bench serve requires --queries (the workload the load draws from)"
        )
    queries = list(_load_dataset(args.queries))
    if not queries:
        raise CliError(f"no queries in {args.queries}")
    # One request = one single-query .gfd workload, so every answer in
    # the response maps back to exactly one workload query.
    query_texts = [dumps_dataset(GraphDataset([query])) for query in queries]

    update_graphs = list(_load_dataset(args.updates)) if args.updates else []
    if scenario.update_every > 0 and not update_graphs:
        raise CliError(
            "the scenario sets update_every but no --updates FILE "
            "supplies the graphs to insert"
        )
    if update_graphs and scenario.update_every <= 0:
        raise CliError(
            "--updates given but the scenario sets no update_every "
            "(add 'update_every: N' to interleave writes)"
        )
    # One update = insert one graph, so the applied prefix of the pool
    # reconstructs the daemon's final dataset exactly.
    update_texts = [
        dumps_dataset(GraphDataset([graph])) for graph in update_graphs
    ]

    method = args.method or scenario.method
    if not method:
        raise CliError(
            "no method selected: pass --method or add a 'method:' line "
            "to the scenario"
        )
    _require_known_method(method)
    if method != scenario.method:
        scenario = dataclasses.replace(scenario, method=method)
    options = _parse_options(args.option)

    dataset = _load_dataset(args.dataset) if args.dataset else None
    server = None
    acceptor = None
    if args.url:
        url = args.url.rstrip("/")
    else:
        # Self-host: an in-process daemon over --dataset, alive only for
        # this run — the zero-setup path the CI smoke leg and quick
        # local checks use.
        if dataset is None:
            raise CliError(
                "pass --url for a running daemon, or --dataset to "
                "self-host one"
            )
        service = QueryService(
            dataset,
            methods=[method],
            method_options=options,
            index_store_dir=args.index_store,
            name=Path(args.dataset).stem,
        )
        try:
            service.warm()
        except ServeError as exc:
            raise CliError(str(exc))
        server = make_server(service, port=0)
        acceptor = threading.Thread(
            target=server.serve_forever, name="bench-serve-accept"
        )
        acceptor.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        print(f"self-hosting {method} daemon at {url}")

    try:
        pace = (
            f" at {scenario.rps:g} req/s" if scenario.rps else " (unthrottled)"
        )
        print(
            f"scenario {scenario.name}: {scenario.clients} client(s) x "
            f"{scenario.requests} request(s) against {method}{pace}"
        )
        result = run_load(
            url, scenario, query_texts, update_texts=update_texts or None
        )
        post_answers = None
        if args.verify and result.updates:
            if result.update_errors:
                raise CliError(
                    f"{result.update_errors} update(s) failed — cannot "
                    "reconstruct the daemon's final dataset for --verify"
                )
            # The load's answers straddle update boundaries; only the
            # daemon's *post-update* answers are comparable to a cold
            # build, so re-ask each query once while it is still up.
            post_answers = []
            for query_index, text in enumerate(query_texts):
                status, document = post_query(url, method, text)
                if status != 200:
                    raise CliError(
                        f"post-update re-ask of workload query "
                        f"{query_index} failed ({status}): "
                        f"{document.get('error', '?')}"
                    )
                post_answers.append(document.get("answers"))
    finally:
        if server is not None:
            server.shutdown()
            acceptor.join()
            server.server_close()
            persistent_pool().close()

    metrics = metrics_of(result)
    print(
        f"{metrics['requests']} request(s) in {metrics['seconds']:.3f}s "
        f"({metrics['qps']:.1f} req/s, {metrics['errors']} error(s)); "
        f"latency q50 {metrics['q50_ms']:.3f} ms, "
        f"q90 {metrics['q90_ms']:.3f} ms, max {metrics['max_ms']:.3f} ms"
    )
    if result.updates or result.update_errors:
        print(
            f"{metrics['updates']} update(s) applied "
            f"({metrics['update_errors']} update error(s)); update "
            f"latency q50 {metrics['update_q50_ms']:.3f} ms, "
            f"mean {metrics['update_mean_ms']:.3f} ms"
        )
    divergent = result.divergent_queries()
    if divergent:
        if result.updates:
            # Answers legitimately change as deltas land mid-run; only
            # the post-update re-ask (below) is held to determinism.
            print(
                f"note: {len(divergent)} workload quer(y/ies) changed "
                "answers across updates (expected under mixed "
                "read/write)"
            )
        else:
            shown = ", ".join(str(index) for index in divergent[:10])
            raise CliError(
                f"daemon returned diverging answers for {len(divergent)} "
                f"workload quer(y/ies) (indexes {shown}) — concurrent "
                "requests must be deterministic"
            )
    verified = False
    if args.verify and result.updates:
        if dataset is None:
            raise CliError(
                "--verify needs --dataset (the batch engine answers "
                "locally for comparison)"
            )
        # The daemon's final dataset is base + the applied prefix of
        # the update pool; rebuild it cold, in process (deliberately
        # bypassing the store: the daemon dual-wrote the same content
        # address, so a store hit would not be an independent check).
        final_dataset = dataset
        for graph in update_graphs[: result.updates]:
            final_dataset = apply_delta(
                final_dataset, DatasetDelta(added=(graph,))
            )
        index = make_method(method, _supported_options(method, options))
        index.build(_resolve_payload_dataset(final_dataset))
        assert post_answers is not None
        expected = [answers_of([index.query(query)]) for query in queries]
        mismatched = [
            query_index
            for query_index in range(len(queries))
            if post_answers[query_index] != expected[query_index]
        ]
        if mismatched:
            shown = ", ".join(str(index) for index in mismatched[:10])
            raise CliError(
                f"post-update daemon answers differ from a cold batch "
                f"build on {len(mismatched)} workload quer(y/ies) "
                f"(indexes {shown})"
            )
        print(
            f"verified: post-update daemon answers identical to a cold "
            f"batch build over {len(final_dataset)} graph(s) "
            f"on {len(queries)} quer(y/ies)"
        )
        verified = True
    elif args.verify:
        if dataset is None:
            raise CliError(
                "--verify needs --dataset (the batch engine answers "
                "locally for comparison)"
            )
        index, row, digest = _built_via_store(
            method, _supported_options(method, options), dataset,
            args.index_store,
        )
        if row is None:
            index.build(_resolve_payload_dataset(dataset))
            _store_built_index(index, args.index_store, digest)
        # Each request carried one query, so the daemon's `answers`
        # payload is a one-element list — mirror that shape here.
        expected = [answers_of([index.query(query)]) for query in queries]
        mismatched = [
            query_index
            for query_index, seen in sorted(result.answers_by_query.items())
            if seen != [expected[query_index]]
        ]
        if mismatched:
            shown = ", ".join(str(index) for index in mismatched[:10])
            raise CliError(
                f"daemon answers differ from the batch engine on "
                f"{len(mismatched)} workload quer(y/ies) (indexes {shown})"
            )
        print(
            f"verified: daemon answers identical to the batch engine "
            f"on {len(result.answers_by_query)} quer(y/ies)"
        )
        verified = True
    if result.errors and not any(
        spec.metric == "errors" for spec in scenario.kpis
    ):
        raise CliError(
            f"{result.errors} request(s) failed and the scenario sets "
            "no 'errors' KPI budget"
        )
    if result.update_errors and not any(
        spec.metric == "update_errors" for spec in scenario.kpis
    ):
        raise CliError(
            f"{result.update_errors} update(s) failed and the scenario "
            "sets no 'update_errors' KPI budget"
        )
    outcomes = evaluate_kpis(scenario.kpis, metrics)
    for outcome in outcomes:
        print(outcome.render())
    if args.json:
        from repro.core.benchrecords import bench_seal

        record = bench_seal(
            bench_record(
                scenario,
                metrics,
                outcomes,
                extra={"url": url, "verified": verified},
            )
        )
        Path(args.json).write_text(
            json.dumps(record, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote benchmark record to {args.json}")
    failed = [outcome for outcome in outcomes if not outcome.passed]
    if failed:
        raise CliError(f"{len(failed)} KPI assertion(s) failed")
    return 0


def _sweep_json_path(base: str, experiment: str, multiple: bool) -> Path:
    """Per-experiment JSON path: the experiment name is appended when a
    single invocation runs several sweeps."""
    path = Path(base)
    if not multiple:
        return path
    return path.with_name(f"{path.stem}-{experiment}{path.suffix or '.json'}")


def cmd_sweep(args: argparse.Namespace) -> int:
    _apply_knobs(args)
    from repro.core.scheduling import CostHistory
    from repro.core.sharding import (
        ManifestError,
        SelectorError,
        SweepPlan,
        load_manifest,
        manifest_for,
        manifest_path_for,
        manifest_records,
        parse_cells,
        parse_only,
        parse_shard,
        save_manifest,
    )

    profile = active_profile()
    runners = {
        "nodes": (nodes_sweep, "2"),
        "density": (density_sweep, "3"),
        "labels": (labels_sweep, "5"),
        "graphs": (graph_count_sweep, "6"),
        "real": (real_dataset_experiment, "1"),
        "massive": (massive_sweep, "7"),
    }
    jobs = _resolve_jobs(args.jobs)
    workers = jobs if jobs is not None else "all cores"
    for method in args.method:
        _require_known_method(method)
    try:
        selector = parse_only(args.only)
        shard = parse_shard(args.shard)
        assignment = parse_cells(args.cells)
    except SelectorError as exc:
        raise CliError(str(exc))
    if shard is not None and assignment is not None:
        raise CliError(
            "--shard and --cells are mutually exclusive: a stride shard "
            "and an explicit cell assignment both pick which cells run"
        )
    if (shard is not None or assignment is not None or args.resume) and not args.json:
        flag = (
            "--shard"
            if shard is not None
            else "--cells"
            if assignment is not None
            else "--resume"
        )
        raise CliError(
            f"{flag} requires --json: the shard manifest lives beside it"
        )
    experiments = list(dict.fromkeys(args.experiment))
    engine = "".join(
        [
            ", shared-mem" if args.shared_mem else "",
            ", batched queries" if args.batch_queries else "",
            f", shard {shard}" if shard is not None else "",
            f", {len(assignment.entries)} assigned cell(s)"
            if assignment is not None
            else "",
            ", selected cells only" if selector is not None else "",
            f", index store {args.index_store}" if args.index_store else "",
            ", no index reuse" if args.no_index_reuse else "",
        ]
    )
    # One persistent pool serves every experiment of this invocation:
    # workers (and their arena/index caches) survive across sweeps.
    pool = persistent_pool()
    try:
        shared_runner = pool.runner(jobs)
        for experiment in experiments:
            run, figure = runners[experiment]
            json_path = (
                _sweep_json_path(args.json, experiment, len(experiments) > 1)
                if args.json
                else None
            )
            plan = None
            needs_plan = (
                selector is not None
                or shard is not None
                or assignment is not None
                or args.resume
                or args.history
            )
            if needs_plan:
                resume_manifest = None
                if args.resume:
                    manifest_path = manifest_path_for(json_path)
                    if manifest_path.exists():
                        try:
                            resume_manifest = load_manifest(manifest_path)
                        except ManifestError as exc:
                            raise CliError(str(exc))
                # The scheduler's calibration evidence, most recent
                # last (later records win on exact cells): the shared
                # --history file first, then this run's own resume
                # manifest.
                records: list = []
                if args.history:
                    from repro.core.driver import load_history_records

                    records.extend(
                        load_history_records(
                            args.history, experiment, profile.name
                        )
                    )
                if resume_manifest is not None:
                    records.extend(manifest_records(resume_manifest))
                plan = SweepPlan(
                    selector=selector,
                    shard=shard,
                    assignment=assignment,
                    resume=resume_manifest,
                    experiment=experiment,
                    seed=args.seed,
                    profile=profile.name,
                    history=CostHistory(records) if records else None,
                )
                if resume_manifest is not None:
                    print(
                        f"resuming {experiment} from "
                        f"{len(resume_manifest.cells)} completed cell(s)"
                    )
            print(
                f"running {experiment} sweep at scale '{profile.name}' "
                f"(jobs={workers}{engine})..."
            )
            try:
                sweep = run(
                    profile,
                    methods=args.method or None,
                    seed=args.seed,
                    progress=lambda m: print(f"  {m}", end="\r"),
                    jobs=jobs,
                    shared_mem=args.shared_mem,
                    batch_queries=args.batch_queries,
                    runner=shared_runner,
                    plan=plan,
                    index_store_dir=args.index_store,
                    reuse_indexes=not args.no_index_reuse,
                )
            except (SelectorError, ManifestError) as exc:
                raise CliError(str(exc))
            print()
            if args.index_store:
                resumed = sweep.resumed_cells()
                restored = (
                    f", {resumed} restored from manifest" if resumed else ""
                )
                print(
                    f"index store: {sweep.fresh_builds()} cell(s) built "
                    f"fresh, {sweep.reused_builds()} reused from "
                    f"{args.index_store}{restored}"
                )

            output = []
            if experiment == "real":
                output.append(render_table1(sweep.dataset_stats))
            output.append(render_sweep(sweep, figure))
            if args.plot and experiment != "real":
                output.append(
                    ascii_plot(
                        f"Figure {figure}(a): indexing time vs {sweep.x_name}",
                        sweep.indexing_time(),
                    )
                )
                output.append(
                    ascii_plot(
                        f"Figure {figure}(c): query time vs {sweep.x_name}",
                        sweep.query_time(),
                    )
                )
            text = "\n".join(part for part in output if part)
            print(text)
            if args.out:
                out_dir = Path(args.out)
                out_dir.mkdir(parents=True, exist_ok=True)
                (out_dir / f"fig{figure}_{experiment}.txt").write_text(
                    text, encoding="utf-8"
                )
                print(f"wrote {out_dir / f'fig{figure}_{experiment}.txt'}")
            if json_path is not None:
                from repro.core.serialization import save_sweep, sweep_digest

                save_sweep(sweep, json_path)
                manifest = manifest_for(
                    sweep,
                    experiment=experiment,
                    seed=args.seed,
                    profile=profile.name,
                    selector=selector,
                    shard=shard,
                    assignment=assignment,
                )
                manifest_path = manifest_path_for(json_path)
                save_manifest(manifest, manifest_path)
                print(f"wrote raw results to {json_path}")
                print(
                    f"wrote shard manifest ({len(manifest.cells)} cells, "
                    f"digest {sweep_digest(sweep)}) to {manifest_path}"
                )
                if args.history:
                    from repro.core.driver import append_history

                    # Only the cells this invocation executed: resumed
                    # cells were logged by the run that measured them.
                    executed = {
                        key
                        for key, cell in sweep.cells.items()
                        if not cell.provenance.get("resumed")
                    }
                    appended = append_history(
                        args.history, manifest, experiment, keys=executed
                    )
                    if appended:
                        print(
                            f"appended {appended} cell timing(s) to "
                            f"{args.history}"
                        )
    finally:
        pool.close()
    return 0


def cmd_launch(args: argparse.Namespace) -> int:
    """Plan, launch, merge, and verify a sharded sweep (the driver).

    The orchestration layer over PR 3/4's primitives: cells are
    partitioned across shards by estimated cost (greedy LPT, calibrated
    by ``--history`` evidence when available), shards run concurrently
    through a pluggable executor as ``repro sweep --cells ...``
    invocations, their manifests are auto-merged, and the merged digest
    is asserted — balanced assignment must never change a result byte.
    A driver run manifest makes the whole launch resumable."""
    _apply_knobs(args)
    from repro.core.driver import (
        DriverError,
        DriverRun,
        ShardCommand,
        append_history,
        assign_shards,
        driver_path_for,
        experiment_grid,
        load_driver_run,
        load_history,
        make_executor,
        plan_seconds,
        save_driver_run,
        shard_json_path,
    )
    from repro.core.serialization import save_sweep, sweep_digest
    from repro.core.sharding import (
        CellAssignment,
        ManifestError,
        MergeError,
        SelectorError,
        load_manifest,
        manifest_path_for,
        merge_manifests,
        parse_only,
        save_manifest,
    )

    profile = active_profile()
    for method in args.method:
        _require_known_method(method)
    if args.shards < 1:
        raise CliError(f"--shards must be >= 1, got {args.shards}")
    if args.jobs < 0:
        raise CliError(f"--jobs must be >= 0, got {args.jobs}")
    try:
        selector = parse_only(args.only)
        x_name, x_values, methods = experiment_grid(
            args.experiment, profile, args.method or None, selector
        )
    except (SelectorError, DriverError) as exc:
        raise CliError(str(exc))
    grid = [(x, method) for x in x_values for method in methods]
    json_path = Path(args.json)
    if json_path.parent and not json_path.parent.exists():
        json_path.parent.mkdir(parents=True, exist_ok=True)
    driver_path = driver_path_for(json_path)

    selector_dict = selector.as_dict() if selector is not None else {}
    previous = None
    if args.resume and driver_path.exists():
        try:
            previous = load_driver_run(driver_path)
        except DriverError as exc:
            raise CliError(str(exc))
        requested = DriverRun(
            experiment=args.experiment,
            profile=profile.name,
            seed=args.seed,
            x_name=x_name,
            x_values=x_values,
            methods=methods,
            selector=selector_dict,
            shards=args.shards,
            strategy=args.assign,
            jobs=args.jobs,
        )
        if previous.identity() != requested.identity():
            raise CliError(
                f"--resume driver run manifest {driver_path} does not "
                "match this launch (experiment, profile, seed, grid, "
                "selector, or --shards differ); point --json somewhere "
                "else or drop --resume"
            )
        # The recorded plan wins on resume — assignment *and* the
        # estimates it was balanced from: fresher history must not
        # shuffle cells between half-finished shards, so it is not even
        # loaded here (--history still appends afterwards).
        assignment = [
            [tuple(key) for key in cells] for cells in previous.assignment
        ]
        estimated = list(previous.estimated_seconds)
        if len(estimated) != len(assignment):  # hand-edited manifest
            estimated = [float(len(cells)) for cells in assignment]
    else:
        history = None
        if args.history:
            history = load_history(args.history, args.experiment, profile.name)
            if history is not None:
                print(
                    f"cost history: {len(history)} recorded cell(s) from "
                    f"{args.history} calibrate the shard assignment"
                )
        costs_by_key = {
            key: plan_seconds(args.experiment, profile, key, history)
            for key in grid
        }
        assignment = assign_shards(
            grid, [costs_by_key[key] for key in grid], args.shards, args.assign
        )
        estimated = [
            sum(costs_by_key[key] for key in cells) for cells in assignment
        ]

    run = DriverRun(
        experiment=args.experiment,
        profile=profile.name,
        seed=args.seed,
        x_name=x_name,
        x_values=x_values,
        methods=methods,
        selector=selector_dict,
        shards=args.shards,
        strategy=args.assign,
        jobs=args.jobs,
        assignment=assignment,
        estimated_seconds=estimated,
        merged_digest=previous.merged_digest if previous is not None else "",
    )
    # Persist the plan before anything runs: a crashed launch resumes
    # against exactly this assignment.
    save_driver_run(run, driver_path)

    live = [
        (index, cells)
        for index, cells in enumerate(assignment, start=1)
        if cells
    ]
    loads = [estimated[index - 1] for index, _ in live]
    print(
        f"planned {len(grid)} cell(s) across {len(live)} shard(s) "
        f"({args.assign} assignment; est. shard load "
        f"{min(loads):.4g}..{max(loads):.4g})"
    )
    commands_to_run: list[ShardCommand] = []
    missing_by_shard: dict[int, list[tuple]] = {}
    executed_cells = 0
    complete_cells = 0
    skipped_shards = 0
    for index, cells in live:
        shard_json = shard_json_path(json_path, index, args.shards)
        shard_manifest = manifest_path_for(shard_json)
        done: set = set()
        if args.resume and shard_manifest.exists():
            try:
                done = load_manifest(shard_manifest).completed_keys() & set(
                    cells
                )
            except ManifestError:
                # Unreadable manifest: relaunch the shard with --resume
                # and let the sweep's own loader fail loudly.
                done = set()
        missing = [key for key in cells if key not in done]
        if args.resume and not missing:
            skipped_shards += 1
            complete_cells += len(cells)
            print(
                f"shard {index}/{args.shards}: complete "
                f"({len(cells)} cell(s)), skipping launch"
            )
            continue
        executed_cells += len(missing)
        complete_cells += len(cells) - len(missing)
        missing_by_shard[index] = missing
        cli = [
            "sweep",
            args.experiment,
            "--json",
            str(shard_json),
            "--seed",
            str(args.seed),
            "--jobs",
            str(args.jobs),
            "--cells",
            CellAssignment.of(cells).spec(),
        ]
        for method in args.method:
            cli += ["--method", method]
        for only in args.only:
            cli += ["--only", only]
        if args.shared_mem:
            cli.append("--shared-mem")
        if args.batch_queries:
            cli.append("--batch-queries")
        if args.index_store:
            cli += ["--index-store", args.index_store]
        if args.no_index_reuse:
            cli.append("--no-index-reuse")
        cli += knob_passthrough_cli(args)
        if args.resume and shard_manifest.exists():
            cli.append("--resume")
        commands_to_run.append(
            ShardCommand(
                shard_index=index,
                cli_args=tuple(cli),
                log_path=shard_json.with_suffix(".log"),
            )
        )

    try:
        executor = make_executor(args.executor)
    except DriverError as exc:
        raise CliError(str(exc))
    if commands_to_run:
        print(
            f"launching {len(commands_to_run)} shard(s) via the "
            f"{executor.name} executor "
            f"({executed_cells} cell(s) to run, jobs={args.jobs} each)..."
        )
        try:
            codes = executor.run(commands_to_run)
        except DriverError as exc:
            raise CliError(str(exc))
        failed = [
            (command, code)
            for command, code in zip(commands_to_run, codes)
            if code != 0
        ]
        if failed:
            for command, code in failed:
                print(
                    f"shard {command.shard_index}/{args.shards} failed "
                    f"(exit {code}); last log lines from {command.log_path}:"
                )
                print(_log_tail(command.log_path))
            raise CliError(
                f"{len(failed)} shard(s) failed; completed shards kept "
                "their manifests — fix the cause and rerun with --resume"
            )

    manifests = []
    try:
        for index, cells in live:
            manifests.append(
                load_manifest(
                    manifest_path_for(
                        shard_json_path(json_path, index, args.shards)
                    )
                )
            )
        sweep, merged = merge_manifests(manifests)
    except (ManifestError, MergeError) as exc:
        raise CliError(str(exc))
    digest = sweep_digest(sweep)
    if run.merged_digest and run.merged_digest != digest:
        # Check before writing anything: a failed determinism check
        # must not replace the previously verified merged output with
        # the very bytes it is declaring untrustworthy.
        raise CliError(
            f"merged sweep digest {digest} does not match the digest "
            f"{run.merged_digest} this launch recorded earlier — the "
            "shards did not recompute the same bytes; the previous "
            f"merged output at {json_path} is untouched"
        )
    save_sweep(sweep, json_path)
    merged_manifest_path = manifest_path_for(json_path)
    save_manifest(merged, merged_manifest_path)
    run.merged_digest = digest
    save_driver_run(run, driver_path)
    if args.history and executed_cells:
        ran = {
            key
            for command in commands_to_run
            for key in missing_by_shard.get(command.shard_index, [])
        }
        appended = append_history(
            args.history, merged, args.experiment, keys=ran
        )
        print(f"appended {appended} cell timing(s) to {args.history}")
    print(
        f"driver: {executed_cells} cell(s) executed, "
        f"{complete_cells} already complete "
        f"({skipped_shards} shard(s) skipped); merged digest {digest}"
    )
    print(
        f"wrote merged sweep to {json_path} "
        f"(manifest {merged_manifest_path}, driver run {driver_path})"
    )
    return 0


def _log_tail(path: Path, lines: int = 10) -> str:
    """The last *lines* of a shard log, indented for the error report."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return "  (log unreadable)"
    tail = text.splitlines()[-lines:]
    return "\n".join(f"  {line}" for line in tail) if tail else "  (log empty)"


def cmd_merge(args: argparse.Namespace) -> int:
    """Stitch shard manifests back into one sweep result.

    The merged sweep's canonical JSON is byte-identical (same
    ``sweep_digest``) to an unsharded run of the same grid; overlapping
    shards must agree cell by cell, and divergence is a named-cell
    failure, never a silent pick."""
    from repro.core.serialization import save_sweep, sweep_digest
    from repro.core.sharding import (
        ManifestError,
        MergeError,
        load_manifest,
        manifest_path_for,
        merge_manifests,
        save_manifest,
    )

    try:
        manifests = [load_manifest(path) for path in args.manifest]
    except ManifestError as exc:
        raise CliError(str(exc))
    try:
        sweep, merged = merge_manifests(
            manifests, require_complete=not args.allow_partial
        )
    except MergeError as exc:
        raise CliError(str(exc))
    save_sweep(sweep, args.json)
    manifest_path = manifest_path_for(args.json)
    save_manifest(merged, manifest_path)
    grid = len(merged.grid_keys())
    print(
        f"merged {len(manifests)} manifest(s): {len(sweep.cells)}/{grid} "
        f"cells, sweep digest {sweep_digest(sweep)}"
    )
    print(f"wrote merged sweep to {args.json} (manifest {manifest_path})")
    return 0


def _require_store(args: argparse.Namespace):
    """The on-disk store a ``repro index`` subcommand operates on."""
    if not args.index_store:
        raise CliError("repro index requires --index-store DIR")
    return shared_store(args.index_store)


def cmd_index_ls(args: argparse.Namespace) -> int:
    """List the artifacts of an on-disk index store."""
    store = _require_store(args)
    entries = store.entries()
    if not entries:
        print(f"no artifacts in {args.index_store}")
        return 0
    print(f"{len(entries)} artifact(s) in {args.index_store}:")
    total = 0
    for path, header in entries:
        size = path.stat().st_size
        total += size
        if header is None:
            print(f"  {path.stem:56s} UNREADABLE (corrupt or stale; run gc)")
            continue
        params = ", ".join(f"{k}={v}" for k, v in header.index_params)
        print(
            f"  {path.stem:56s} {header.method:11s} "
            f"{size / 1024:9.1f} KiB  built in "
            f"{header.provenance.build_seconds:.3f}s  "
            f"[{params or 'defaults'}]"
        )
        if header.parent:
            print(
                f"    ^ incremental update of {header.parent} "
                f"(delta {header.delta_digest:016x})"
            )
    print(f"total {total / 1024:.1f} KiB")
    return 0


def cmd_index_rm(args: argparse.Namespace) -> int:
    """Remove artifacts from an on-disk index store by address."""
    store = _require_store(args)
    missing = []
    for address in args.address:
        if store.remove(address):
            print(f"removed {address}")
        else:
            missing.append(address)
    if missing:
        raise CliError(
            f"no such artifact(s): {', '.join(missing)} "
            f"(see 'repro index ls')"
        )
    return 0


def cmd_index_gc(args: argparse.Namespace) -> int:
    """Collect garbage: drop corrupt/stale artifacts, enforce a size cap."""
    store = _require_store(args)
    if args.max_bytes is not None and args.max_bytes < 0:
        raise CliError(f"--max-bytes must be >= 0, got {args.max_bytes}")
    report = store.gc(max_bytes=args.max_bytes)
    print(
        f"gc {args.index_store}: removed {report['removed_corrupt']} "
        f"unreadable, evicted {report['removed_evicted']} over budget; "
        f"kept {report['kept']} artifact(s), "
        f"{report['kept_bytes'] / 1024:.1f} KiB"
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.core.benchrecords import (
        BenchValidationError,
        bench_validate,
        is_bench_record,
        render_bench_summary,
    )
    from repro.core.serialization import sweep_from_json
    from repro.core.sharding import (
        MANIFEST_SCHEMA,
        ManifestError,
        MergeError,
        load_manifest,
        manifest_from_json,
        manifest_path_for,
        merge_manifests,
    )

    try:
        text = Path(args.results).read_text(encoding="utf-8")
    except FileNotFoundError:
        raise CliError(f"results file not found: {args.results}")
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CliError(f"{args.results}: not valid JSON: {exc}")
    if is_bench_record(document):
        # A BENCH_*.json trajectory record: validate (malformed or
        # hand-edited records are rejected, not rendered) and summarize.
        try:
            kind = bench_validate(document, source=args.results)
        except BenchValidationError as exc:
            raise CliError(str(exc))
        print(render_bench_summary(document, kind))
        return 0
    schema = document.get("schema") if isinstance(document, dict) else None
    manifest = None
    if schema == MANIFEST_SCHEMA:
        # A shard manifest renders directly as a partial grid — the
        # natural way to peek at a crashed or in-flight shard.
        try:
            manifest = manifest_from_json(text)
            sweep, _ = merge_manifests([manifest], require_complete=False)
        except (ManifestError, MergeError) as exc:
            raise CliError(f"{args.results}: {exc}")
    else:
        try:
            sweep = sweep_from_json(text)
        except ValueError as exc:
            raise CliError(f"{args.results}: {exc}")
        # A sweep saved beside a manifest (every --json sweep, every
        # merge, every launch) knows its full grid; use it to tell
        # "pending" (no shard produced the cell yet) from "—" (ran,
        # but no data point).
        manifest_path = manifest_path_for(args.results)
        if manifest_path.exists():
            try:
                manifest = load_manifest(manifest_path)
            except ManifestError:
                manifest = None
            if manifest is not None and (
                manifest.x_name != sweep.x_name
                or manifest.x_values != sweep.x_values
                or manifest.methods != sweep.methods
            ):
                manifest = None  # describes some other run
    pending: set | None = None
    if manifest is not None:
        done = manifest.completed_keys()
        pending = {key for key in manifest.grid_keys() if key not in done}
    figure = args.figure or "?"
    if pending:
        print(
            f"partial sweep: {len(pending)} of "
            f"{len(manifest.grid_keys())} cell(s) pending (no shard has "
            "produced them yet)"
        )
    if sweep.dataset_stats and sweep.x_name == "dataset":
        print(render_table1(sweep.dataset_stats))
    print(render_sweep(sweep, figure, pending=pending))
    if args.plot:
        print(
            ascii_plot(
                f"Figure {figure}(a): indexing time vs {sweep.x_name}",
                sweep.indexing_time(),
            )
        )
        print(
            ascii_plot(
                f"Figure {figure}(c): query time vs {sweep.x_name}",
                sweep.query_time(),
            )
        )
    return 0
