"""Implementations of the ``repro`` subcommands."""

from __future__ import annotations

import argparse
import inspect
from pathlib import Path

from repro.core.experiments import (
    density_sweep,
    graph_count_sweep,
    labels_sweep,
    nodes_sweep,
    real_dataset_experiment,
)
from repro.core.metrics import summarize_results
from repro.core.plots import ascii_plot
from repro.core.presets import active_profile
from repro.core.report import render_sweep, render_table1
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.generators.realsets import make_real_dataset
from repro.graphs.graph import GraphError
from repro.graphs.io import read_dataset, write_dataset
from repro.graphs.statistics import dataset_statistics
from repro.indexes import ALL_INDEX_CLASSES
from repro.indexes.persistence import IndexFileError, load_index, save_index
from repro.core.runner import make_method
from repro.utils.budget import Budget, BudgetExceeded

__all__ = ["CliError"]


class CliError(Exception):
    """User-facing command failure (bad input, missing file, timeout)."""


def _load_dataset(path: str):
    try:
        return read_dataset(path)
    except FileNotFoundError:
        raise CliError(f"dataset file not found: {path}")
    except GraphError as exc:
        raise CliError(f"malformed dataset {path}: {exc}")


def _require_known_method(name: str) -> None:
    if name not in ALL_INDEX_CLASSES:
        known = ", ".join(ALL_INDEX_CLASSES)
        raise CliError(f"unknown method {name!r}; expected one of {known}")


def _supported_options(method: str, options: dict) -> dict:
    """The subset of *options* the method's constructor accepts.

    ``repro query`` applies one ``--option`` list to several methods
    with different knobs; silently dropping inapplicable keys keeps the
    comparison runnable (e.g. ``max_path_edges`` means nothing to the
    naive baseline).
    """
    accepted = inspect.signature(ALL_INDEX_CLASSES[method].__init__).parameters
    return {key: value for key, value in options.items() if key in accepted}


def _parse_options(pairs: list[str]) -> dict:
    """Parse --option KEY=VALUE pairs with numeric coercion."""
    options: dict = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator:
            raise CliError(f"--option expects KEY=VALUE, got {pair!r}")
        value: object = raw
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                if raw.lower() in ("true", "false"):
                    value = raw.lower() == "true"
        options[key] = value
    return options


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    if args.real:
        dataset = make_real_dataset(args.real, scale=args.scale, seed=args.seed)
    else:
        config = GraphGenConfig(
            num_graphs=args.graphs,
            mean_nodes=args.nodes,
            mean_density=args.density,
            num_labels=args.labels,
        )
        dataset = generate_dataset(config, seed=args.seed)
    write_dataset(dataset, args.output)
    stats = dataset_statistics(dataset)
    print(
        f"wrote {stats.num_graphs} graphs "
        f"(avg {stats.avg_vertices:.1f} nodes, {stats.avg_edges:.1f} edges, "
        f"{stats.num_labels} labels) to {args.output}"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset)
    stats = dataset_statistics(dataset, name=Path(args.dataset).stem)
    print(render_table1({stats.name: stats}))
    return 0


def cmd_queries(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset)
    try:
        queries = generate_queries(dataset, args.count, args.edges, seed=args.seed)
    except ValueError as exc:
        raise CliError(str(exc))
    from repro.graphs.dataset import GraphDataset

    workload = GraphDataset(queries, name="queries")
    write_dataset(workload, args.output)
    print(f"wrote {len(queries)} queries of {args.edges} edges to {args.output}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset)
    _require_known_method(args.method)
    index = make_method(args.method, _parse_options(args.option))
    budget = Budget(args.budget, phase=f"{args.method} build") if args.budget else None
    try:
        report = index.build(dataset, budget=budget)
    except BudgetExceeded:
        raise CliError(
            f"{args.method} exceeded the {args.budget:.0f}s build budget "
            "(the paper's 'failed to index')"
        )
    print(
        f"built {args.method} over {len(dataset)} graphs in "
        f"{report.seconds:.3f}s ({report.size_bytes / 1024:.1f} KiB)"
    )
    for key, value in report.details.items():
        print(f"  {key}: {value}")
    if args.save:
        save_index(index, args.save)
        print(f"saved index to {args.save}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset)
    workload = _load_dataset(args.queries)
    queries = list(workload)
    if not queries:
        raise CliError(f"no queries in {args.queries}")
    options = _parse_options(args.option)

    indexes = []
    if args.load:
        try:
            index = load_index(args.load, expect_dataset=dataset)
        except (FileNotFoundError, IndexFileError) as exc:
            raise CliError(str(exc))
        indexes.append(index)
    methods = args.method or list(ALL_INDEX_CLASSES)
    for method in methods:
        if args.load and indexes and indexes[0].name == method:
            continue  # already covered by the loaded index
        _require_known_method(method)
        index = make_method(method, _supported_options(method, options))
        index.build(dataset)
        indexes.append(index)

    print(f"{len(queries)} queries against {len(dataset)} graphs:")
    reference = None
    for index in indexes:
        budget = (
            Budget(args.budget, phase=f"{index.name} queries")
            if args.budget
            else None
        )
        try:
            results = [index.query(q, budget=budget) for q in queries]
        except BudgetExceeded:
            print(f"  {index.name:11s} TIMED OUT")
            continue
        stats = summarize_results(results)
        answers = [r.answers for r in results]
        if reference is None:
            reference = answers
        agreement = "" if answers == reference else "  !! DISAGREES"
        print(
            f"  {index.name:11s} avg {stats.avg_query_seconds * 1e3:8.3f}ms  "
            f"candidates {stats.avg_candidates:7.1f}  "
            f"answers {stats.avg_answers:6.1f}  "
            f"fp {stats.false_positive_ratio:.3f}{agreement}"
        )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    profile = active_profile()
    runners = {
        "nodes": (nodes_sweep, "2"),
        "density": (density_sweep, "3"),
        "labels": (labels_sweep, "5"),
        "graphs": (graph_count_sweep, "6"),
        "real": (real_dataset_experiment, "1"),
    }
    run, figure = runners[args.experiment]
    if args.jobs < 0:
        raise CliError(f"--jobs must be >= 0, got {args.jobs}")
    jobs = args.jobs if args.jobs > 0 else None  # 0 = all cores
    workers = jobs if jobs is not None else "all cores"
    print(
        f"running {args.experiment} sweep at scale '{profile.name}' "
        f"(jobs={workers})..."
    )
    for method in args.method:
        _require_known_method(method)
    sweep = run(
        profile,
        methods=args.method or None,
        seed=args.seed,
        progress=lambda m: print(f"  {m}", end="\r"),
        jobs=jobs,
    )
    print()

    output = []
    if args.experiment == "real":
        output.append(render_table1(sweep.dataset_stats))
    output.append(render_sweep(sweep, figure))
    if args.plot and args.experiment != "real":
        output.append(
            ascii_plot(
                f"Figure {figure}(a): indexing time vs {sweep.x_name}",
                sweep.indexing_time(),
            )
        )
        output.append(
            ascii_plot(
                f"Figure {figure}(c): query time vs {sweep.x_name}",
                sweep.query_time(),
            )
        )
    text = "\n".join(part for part in output if part)
    print(text)
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"fig{figure}_{args.experiment}.txt").write_text(
            text, encoding="utf-8"
        )
        print(f"wrote {out_dir / f'fig{figure}_{args.experiment}.txt'}")
    if args.json:
        from repro.core.serialization import save_sweep

        save_sweep(sweep, args.json)
        print(f"wrote raw results to {args.json}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.core.serialization import load_sweep

    try:
        sweep = load_sweep(args.results)
    except FileNotFoundError:
        raise CliError(f"results file not found: {args.results}")
    except ValueError as exc:
        raise CliError(f"{args.results}: {exc}")
    figure = args.figure or "?"
    if sweep.dataset_stats and sweep.x_name == "dataset":
        print(render_table1(sweep.dataset_stats))
    print(render_sweep(sweep, figure))
    if args.plot:
        print(
            ascii_plot(
                f"Figure {figure}(a): indexing time vs {sweep.x_name}",
                sweep.indexing_time(),
            )
        )
        print(
            ascii_plot(
                f"Figure {figure}(c): query time vs {sweep.x_name}",
                sweep.query_time(),
            )
        )
    return 0
