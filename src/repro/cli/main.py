"""Argument parsing and dispatch for the ``repro`` CLI."""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.cli import commands

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Indexed subgraph query processing: six methods, one "
            "evaluation framework (PVLDB 8(12), 2015 reproduction)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic or stand-in dataset file"
    )
    generate.add_argument("output", help="output dataset file (.gfd)")
    generate.add_argument("--graphs", type=int, default=100)
    generate.add_argument("--nodes", type=int, default=24)
    generate.add_argument("--density", type=float, default=0.12)
    generate.add_argument("--labels", type=int, default=6)
    generate.add_argument(
        "--real",
        choices=["AIDS", "PDBS", "PCM", "PPI"],
        help="generate a Table 1 stand-in instead of GraphGen output",
    )
    generate.add_argument("--scale", type=float, default=1.0,
                          help="shrink factor for --real stand-ins")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=commands.cmd_generate)

    stats = subparsers.add_parser("stats", help="print a dataset's Table 1 row")
    stats.add_argument("dataset", help="dataset file (.gfd)")
    stats.set_defaults(handler=commands.cmd_stats)

    queries = subparsers.add_parser(
        "queries", help="generate a random-walk query workload"
    )
    queries.add_argument("dataset", help="dataset file (.gfd)")
    queries.add_argument("output", help="output query file (.gfd)")
    queries.add_argument("--count", type=int, default=10)
    queries.add_argument("--edges", type=int, default=8)
    queries.add_argument("--seed", type=int, default=0)
    queries.set_defaults(handler=commands.cmd_queries)

    build = subparsers.add_parser("build", help="build an index over a dataset")
    build.add_argument("dataset", help="dataset file (.gfd)")
    build.add_argument(
        "--method",
        action="append",
        required=True,
        help="index method name (repeatable: batch several builds)",
    )
    build.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="method constructor option (repeatable; applies to every "
        "--method that accepts it)",
    )
    build.add_argument("--budget", type=float, help="build time budget (s)")
    build.add_argument("--save", help="persist the built index to this file "
                       "(single --method only)")
    build.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to spread multiple --method builds over "
        "(default 1 = sequential; 0 = all cores)",
    )
    build.add_argument(
        "--index-store",
        metavar="DIR",
        help="content-addressed index artifact store: reuse a matching "
        "prebuilt index instead of building, and store fresh builds "
        "for later commands",
    )
    build.add_argument(
        "--graph-core",
        choices=["csr", "dict"],
        help="in-memory graph representation for the hot path: immutable "
        "flat-array CSR (default) or the legacy dict-of-sets core; "
        "both produce byte-identical results",
    )
    build.add_argument(
        "--feature-core",
        choices=["csr", "dict"],
        help="feature-enumeration kernels: vectorized CSR array walks "
        "(default) or the legacy dict-walk recursion; features are "
        "byte-identical across cores",
    )
    build.set_defaults(handler=commands.cmd_build)

    query = subparsers.add_parser(
        "query", help="run a query workload through one or more methods"
    )
    query.add_argument("dataset", help="dataset file (.gfd)")
    query.add_argument("queries", help="query file (.gfd)")
    query.add_argument(
        "--method",
        action="append",
        default=[],
        help="method name (repeatable; default: all)",
    )
    query.add_argument("--load", help="load a persisted index instead of building")
    query.add_argument("--budget", type=float, help="per-workload budget (s)")
    query.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="method constructor option (repeatable; applies to every "
        "--method that accepts it)",
    )
    query.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to spread the per-method build+query "
        "pipelines over (default 1 = sequential; 0 = all cores)",
    )
    query.add_argument(
        "--index-store",
        metavar="DIR",
        help="content-addressed index artifact store: reuse matching "
        "prebuilt indexes instead of building, and store fresh builds "
        "for later commands",
    )
    query.add_argument(
        "--graph-core",
        choices=["csr", "dict"],
        help="in-memory graph representation for the hot path: immutable "
        "flat-array CSR (default) or the legacy dict-of-sets core; "
        "both produce byte-identical results",
    )
    query.add_argument(
        "--feature-core",
        choices=["csr", "dict"],
        help="feature-enumeration kernels: vectorized CSR array walks "
        "(default) or the legacy dict-walk recursion; features are "
        "byte-identical across cores",
    )
    query.add_argument(
        "--regime",
        choices=["transactional", "single-graph"],
        help="query answer form: transactional graph ids (default) or "
        "single-graph embedding roots over a one-graph dataset",
    )
    query.set_defaults(handler=commands.cmd_query)

    sweep = subparsers.add_parser(
        "sweep", help="run one or more of the paper's sweeps (Figures 1-6)"
    )
    sweep.add_argument(
        "experiment",
        nargs="+",
        choices=["nodes", "density", "labels", "graphs", "real", "massive"],
        help="which parameter sweep(s) to run; several experiments share "
        "one persistent worker pool (massive = single-graph R-MAT "
        "regime, answers are embedding roots)",
    )
    sweep.add_argument(
        "--method",
        action="append",
        default=[],
        help="restrict every selected sweep to this method (repeatable; "
        "default: the profile's full roster)",
    )
    sweep.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="KEY=VALUE[,KEY=VALUE...]",
        help="run only the matching cells (keys: method, x, or the "
        "sweep's axis name — nodes/density/labels/graphs/dataset/scale; "
        "repeatable, values of one key OR together, keys AND)",
    )
    sweep.add_argument(
        "--shard",
        metavar="I/N",
        help="run only the I-th of N deterministic shards of each "
        "sweep's cell grid (1-based; requires --json for the manifest)",
    )
    sweep.add_argument(
        "--cells",
        action="append",
        default=[],
        metavar="X:METHOD[,X:METHOD...]",
        help="run only these exact grid cells (the driver's cost-"
        "balanced shard assignments; repeatable; requires --json; "
        "mutually exclusive with --shard; the manifest still records "
        "the full grid so driver shards merge like stride shards)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="skip cells recorded in the manifest beside --json and run "
        "only the missing ones (their measured seconds recalibrate the "
        "scheduler's cost estimates)",
    )
    sweep.add_argument(
        "--history",
        metavar="FILE",
        help="cross-invocation cost history (JSONL): load measured "
        "per-cell seconds from FILE to calibrate the scheduler without "
        "--resume, and append the cells this run executes afterwards "
        "(appending needs --json, since the timings come from the "
        "manifest; without it the flag only calibrates)",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for (method x dataset) cells "
        "(default 1 = sequential; 0 = all cores)",
    )
    sweep.add_argument(
        "--shared-mem",
        action="store_true",
        help="pack each dataset once into a shared-memory arena instead "
        "of pickling it per task",
    )
    sweep.add_argument(
        "--batch-queries",
        action="store_true",
        help="split each cell's query workload into per-worker batches "
        "(deterministic merge)",
    )
    sweep.add_argument(
        "--index-store",
        metavar="DIR",
        help="content-addressed index artifact store shared by cells, "
        "workers, and invocations: a cell whose (method, params, "
        "dataset) artifact exists skips its build and reports the "
        "original build's provenance; fresh builds are stored",
    )
    sweep.add_argument(
        "--no-index-reuse",
        action="store_true",
        help="force paper-faithful rebuilds (fresh measured build "
        "timings) even when --index-store holds a matching artifact; "
        "fresh builds are still written to the store",
    )
    sweep.add_argument(
        "--graph-core",
        choices=["csr", "dict"],
        help="in-memory graph representation for the hot path: immutable "
        "flat-array CSR (default) or the legacy dict-of-sets core; "
        "sweeps are byte-identical across cores",
    )
    sweep.add_argument(
        "--feature-core",
        choices=["csr", "dict"],
        help="feature-enumeration kernels: vectorized CSR array walks "
        "(default) or the legacy dict-walk recursion; sweeps are "
        "byte-identical across cores",
    )
    sweep.add_argument("--out", help="directory for rendered outputs")
    sweep.add_argument("--plot", action="store_true", help="ASCII plots too")
    sweep.add_argument(
        "--json",
        help="also save raw results as JSON plus a resumable/mergeable "
        "shard manifest beside it (with several experiments, the "
        "experiment name is appended to both file names)",
    )
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(handler=commands.cmd_sweep)

    launch = subparsers.add_parser(
        "launch",
        help="orchestrate a sharded sweep: cost-balanced shard "
        "assignment, concurrent shard execution, automatic merge with "
        "a digest check, all resumable via a driver run manifest",
    )
    launch.add_argument(
        "experiment",
        choices=["nodes", "density", "labels", "graphs", "real", "massive"],
        help="which parameter sweep to orchestrate",
    )
    launch.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="number of shards to partition the cell grid into "
        "(default 2; shards left empty by the partition are skipped)",
    )
    launch.add_argument(
        "--assign",
        choices=["balanced", "stride"],
        default="balanced",
        help="shard assignment strategy: greedy longest-processing-time "
        "over estimated per-cell seconds (calibrated by --history "
        "when given), or the cost-blind stride partition --shard uses; "
        "both merge to byte-identical sweeps",
    )
    launch.add_argument(
        "--executor",
        choices=["local", "inprocess", "ssh", "k8s"],
        default="local",
        help="how shards run: concurrent local subprocesses (default), "
        "sequential in-process calls (debugging), or the documented "
        "ssh/k8s stubs",
    )
    launch.add_argument(
        "--method",
        action="append",
        default=[],
        help="restrict the sweep to this method (repeatable; default: "
        "the profile's full roster)",
    )
    launch.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="KEY=VALUE[,KEY=VALUE...]",
        help="orchestrate only the matching cells (same selector "
        "language as 'repro sweep --only'; passed through to every "
        "shard)",
    )
    launch.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per shard sweep (default 1 = sequential; "
        "0 = all cores)",
    )
    launch.add_argument(
        "--history",
        metavar="FILE",
        help="cross-invocation cost history (JSONL): calibrate the "
        "cost-balanced assignment with measured per-cell seconds from "
        "FILE, and append the merged run's executed cells afterwards",
    )
    launch.add_argument(
        "--resume",
        action="store_true",
        help="resume a previous launch: reuse its recorded shard "
        "assignment, skip shards whose manifests are complete, pass "
        "--resume to incomplete ones, and verify the merged digest "
        "matches the recorded one",
    )
    launch.add_argument(
        "--shared-mem",
        action="store_true",
        help="pass --shared-mem through to every shard sweep",
    )
    launch.add_argument(
        "--batch-queries",
        action="store_true",
        help="pass --batch-queries through to every shard sweep",
    )
    launch.add_argument(
        "--index-store",
        metavar="DIR",
        help="content-addressed index artifact store shared by every "
        "shard (passed through to the shard sweeps; 'repro merge' "
        "cross-checks the recorded artifact addresses)",
    )
    launch.add_argument(
        "--no-index-reuse",
        action="store_true",
        help="pass --no-index-reuse through to every shard sweep",
    )
    launch.add_argument(
        "--graph-core",
        choices=["csr", "dict"],
        help="pass --graph-core through to every shard sweep",
    )
    launch.add_argument(
        "--feature-core",
        choices=["csr", "dict"],
        help="pass --feature-core through to every shard sweep",
    )
    launch.add_argument(
        "--json",
        required=True,
        help="merged sweep output file; shard JSONs, shard manifests, "
        "per-shard logs, and the resumable .driver.json run manifest "
        "are written beside it",
    )
    launch.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed passed to every shard sweep",
    )
    launch.set_defaults(handler=commands.cmd_launch)

    merge = subparsers.add_parser(
        "merge",
        help="stitch shard manifests from 'sweep --shard' back into one "
        "sweep result",
    )
    merge.add_argument(
        "manifest",
        nargs="+",
        help="shard manifest files (the .manifest.json written beside "
        "each shard's --json output)",
    )
    merge.add_argument(
        "--json",
        required=True,
        help="output file for the merged sweep JSON (a merged manifest "
        "is written beside it)",
    )
    merge.add_argument(
        "--allow-partial",
        action="store_true",
        help="merge even when some grid cells are missing (the output "
        "stays mergeable and resumable)",
    )
    merge.set_defaults(handler=commands.cmd_merge)

    index = subparsers.add_parser(
        "index",
        help="inspect and manage a content-addressed index artifact "
        "store (ls, rm, gc)",
    )
    # --index-store and --max-bytes are declared on this parser (so the
    # docs audit and `repro index --help` see them) AND on the
    # subcommands below with SUPPRESS defaults, so both argument orders
    # parse: `repro index --index-store DIR ls` and
    # `repro index ls --index-store DIR`.
    index.add_argument(
        "--index-store",
        metavar="DIR",
        help="the artifact store directory to operate on (required)",
    )
    index.add_argument(
        "--max-bytes",
        type=int,
        metavar="N",
        help="gc only: evict oldest artifacts until the store fits N "
        "bytes",
    )
    index_sub = index.add_subparsers(dest="index_command", required=True)
    index_ls = index_sub.add_parser(
        "ls", help="list the store's artifacts with provenance"
    )
    index_ls.add_argument(
        "--index-store", metavar="DIR", default=argparse.SUPPRESS
    )
    index_ls.set_defaults(handler=commands.cmd_index_ls)
    index_rm = index_sub.add_parser(
        "rm", help="remove artifacts by content address"
    )
    index_rm.add_argument(
        "address", nargs="+", help="artifact address(es) from 'repro index ls'"
    )
    index_rm.add_argument(
        "--index-store", metavar="DIR", default=argparse.SUPPRESS
    )
    index_rm.set_defaults(handler=commands.cmd_index_rm)
    index_gc = index_sub.add_parser(
        "gc",
        help="drop corrupt/stale artifacts and optionally enforce a "
        "size cap",
    )
    index_gc.add_argument(
        "--index-store", metavar="DIR", default=argparse.SUPPRESS
    )
    index_gc.add_argument(
        "--max-bytes", type=int, metavar="N", default=argparse.SUPPRESS
    )
    index_gc.set_defaults(handler=commands.cmd_index_gc)

    serve = subparsers.add_parser(
        "serve",
        help="run the online query daemon: load a dataset, warm one "
        "index per method (from the artifact store when possible), and "
        "answer subgraph queries over HTTP until SIGTERM/SIGINT drains "
        "it",
    )
    serve.add_argument("dataset", help="dataset file (.gfd) to serve")
    serve.add_argument(
        "--method",
        action="append",
        default=[],
        help="method to warm and serve (repeatable; default: all)",
    )
    serve.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="method constructor option (repeatable; applies to every "
        "--method that accepts it)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; 0.0.0.0 exposes "
        "the daemon beyond localhost)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8572,
        metavar="N",
        help="TCP port to bind (default 8572; 0 picks an ephemeral "
        "port, announced on stdout)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the warm-up builds (default 1 = "
        "sequential; 0 = all cores); queries are answered by request "
        "threads either way",
    )
    serve.add_argument(
        "--index-store",
        metavar="DIR",
        help="content-addressed index artifact store: serve matching "
        "prebuilt indexes instead of building at startup, and store "
        "fresh builds for later daemons and sweeps",
    )
    serve.add_argument(
        "--no-index-reuse",
        action="store_true",
        help="build fresh at startup even when --index-store holds a "
        "matching artifact (fresh builds are still written through)",
    )
    serve.add_argument(
        "--graph-core",
        choices=["csr", "dict"],
        help="in-memory graph representation for the hot path: immutable "
        "flat-array CSR (default) or the legacy dict-of-sets core; "
        "answers are identical",
    )
    serve.add_argument(
        "--feature-core",
        choices=["csr", "dict"],
        help="feature-enumeration kernels for index builds: vectorized "
        "CSR array walks (default) or the legacy dict-walk recursion; "
        "answers are identical",
    )
    serve.set_defaults(handler=commands.cmd_serve)

    bench = subparsers.add_parser(
        "bench",
        help="drive performance benchmarks against the serving tier "
        "(bench serve: declarative load scenarios with KPI assertions)",
    )
    # Like `repro index`, the shared flags are declared on this parser
    # (docs audit + `repro bench --help`) AND on the subcommand with
    # SUPPRESS defaults, so both argument orders parse.
    bench.add_argument(
        "--dataset",
        metavar="FILE",
        help="dataset file (.gfd) — required to self-host a daemon or "
        "to --verify answers against the batch engine",
    )
    bench.add_argument(
        "--queries",
        metavar="FILE",
        help="query workload file (.gfd) the load is drawn from "
        "(required)",
    )
    bench.add_argument(
        "--url",
        metavar="URL",
        help="target a running 'repro serve' daemon (e.g. "
        "http://127.0.0.1:8572); omitted = self-host an in-process "
        "daemon over --dataset for the duration of the run",
    )
    bench.add_argument(
        "--method",
        metavar="NAME",
        help="method the requests target (overrides the scenario's "
        "'method:' line)",
    )
    bench.add_argument(
        "--option",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="method constructor option for self-hosted/--verify "
        "builds (repeatable)",
    )
    bench.add_argument(
        "--index-store",
        metavar="DIR",
        help="artifact store for self-hosted/--verify builds (warm "
        "startups, like 'repro serve --index-store')",
    )
    bench.add_argument(
        "--updates",
        metavar="FILE",
        help="graph pool (.gfd) for mixed read/write scenarios: when the "
        "scenario sets 'update_every: N', every Nth request slot posts "
        "the next pooled graph to the daemon's /update endpoint instead "
        "of querying",
    )
    bench.add_argument(
        "--verify",
        action="store_true",
        help="after the load run, answer every workload query through "
        "the batch engine in-process and fail unless the daemon's "
        "answers are identical (with --updates, the comparison engine "
        "is built cold over the post-update dataset)",
    )
    bench.add_argument(
        "--json",
        metavar="FILE",
        help="write the run's metrics + KPI outcomes as a benchmark "
        "trajectory point (e.g. BENCH_pr7.json)",
    )
    bench.add_argument(
        "--graph-core",
        choices=["csr", "dict"],
        help="graph core for self-hosted/--verify builds",
    )
    bench.add_argument(
        "--feature-core",
        choices=["csr", "dict"],
        help="feature core for self-hosted/--verify builds",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_serve = bench_sub.add_parser(
        "serve",
        help="run a declarative load scenario against the query daemon "
        "and assert its KPIs",
    )
    bench_serve.add_argument(
        "scenario",
        help="scenario file: 'key: value' lines (name, method, clients, "
        "requests, rps, timeout_seconds, update_every) plus repeatable "
        "'kpi: METRIC <= N' / 'kpi: METRIC >= N' assertions",
    )
    for flag, kwargs in (
        ("--dataset", {"metavar": "FILE"}),
        ("--queries", {"metavar": "FILE"}),
        ("--url", {"metavar": "URL"}),
        ("--method", {"metavar": "NAME"}),
        ("--option", {"action": "append", "metavar": "KEY=VALUE"}),
        ("--index-store", {"metavar": "DIR"}),
        ("--updates", {"metavar": "FILE"}),
        ("--verify", {"action": "store_true"}),
        ("--json", {"metavar": "FILE"}),
        ("--graph-core", {"choices": ["csr", "dict"]}),
        ("--feature-core", {"choices": ["csr", "dict"]}),
    ):
        bench_serve.add_argument(flag, default=argparse.SUPPRESS, **kwargs)
    bench_serve.set_defaults(handler=commands.cmd_bench_serve)

    report = subparsers.add_parser(
        "report",
        help="re-render a sweep saved with 'sweep --json' or 'merge' "
        "(partial sharded runs render with explicit 'pending' cells)",
    )
    report.add_argument(
        "results",
        help="JSON file from 'sweep --json', 'launch', or 'merge' — or "
        "a shard .manifest.json, rendered as a partial grid with "
        "'pending' markers for cells no shard has produced yet",
    )
    report.add_argument("--plot", action="store_true", help="ASCII plots too")
    report.add_argument(
        "--figure", default="", help="figure number label (e.g. 2)"
    )
    report.set_defaults(handler=commands.cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except commands.CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
