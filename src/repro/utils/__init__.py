"""Shared low-level utilities.

This package hosts the small, dependency-free building blocks used across
the library: a fixed-width :class:`~repro.utils.bitset.Bitset` (CT-Index
fingerprints, gCode label strings), deep memory accounting
(:func:`~repro.utils.sizeof.deep_sizeof`, used for the paper's "index
size" metric), wall-clock timers, and seeded random-number helpers.
"""

from repro.utils.bitset import Bitset
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.sizeof import deep_sizeof
from repro.utils.timing import Timer

__all__ = ["Bitset", "Timer", "deep_sizeof", "make_rng", "spawn_rngs"]
