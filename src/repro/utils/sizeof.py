"""Deep memory-size estimation.

The paper reports *index size* (Figures 1(b), 2(b), 3(b), 5(b), 6(b)) as
the on-disk/in-memory footprint of each method's index structure.  Our
indexes are Python object graphs, so we estimate their footprint by a
recursive :func:`sys.getsizeof` walk that follows containers, instance
dicts and ``__slots__`` while counting shared objects once.
"""

from __future__ import annotations

import sys
import types
from collections import deque

__all__ = ["deep_sizeof"]

#: Containers whose elements we recurse into.
_CONTAINER_TYPES = (list, tuple, set, frozenset, dict, deque)

#: Objects that are code rather than index payload.
_SKIP_TYPES = (type, types.ModuleType, types.FunctionType, types.BuiltinFunctionType)


def deep_sizeof(root: object, *, _seen: set | None = None) -> int:
    """Return the total size in bytes of *root* and everything it owns.

    Objects reachable more than once (interned strings, shared label
    objects, graph-id lists referenced from several trie nodes) are
    counted exactly once, which matches how a serialized index would
    deduplicate them.

    Notes
    -----
    * ``numpy`` arrays report their buffer via ``nbytes``.
    * Class objects, modules and functions are skipped — they are code,
      not index payload.
    """
    seen: set[int] = set() if _seen is None else _seen
    total = 0
    stack = [root]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, _SKIP_TYPES) or callable(obj):
            continue
        try:
            total += sys.getsizeof(obj)
        except TypeError:  # pragma: no cover - exotic objects
            continue
        nbytes = getattr(obj, "nbytes", None)
        if nbytes is not None and not isinstance(obj, _CONTAINER_TYPES):
            if isinstance(nbytes, int):
                # numpy arrays: getsizeof already covers the header only.
                total += int(nbytes)
                continue
            if callable(nbytes):  # e.g. repro.utils.Bitset
                total += int(nbytes())
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset, deque)):
            stack.extend(obj)
        else:
            instance_dict = getattr(obj, "__dict__", None)
            if instance_dict is not None:
                stack.append(instance_dict)
            for slot in _iter_slots(type(obj)):
                try:
                    stack.append(getattr(obj, slot))
                except AttributeError:
                    continue
    return total


def _iter_slots(cls: type):
    """Yield all slot names declared anywhere in *cls*'s MRO."""
    for base in cls.__mro__:
        slots = getattr(base, "__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        yield from slots
