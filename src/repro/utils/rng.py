"""Seeded random-number helpers.

Every randomized component (GraphGen, dataset stand-ins, query walks)
accepts either a seed or a :class:`random.Random`; these helpers
normalize the two and derive independent child streams so that parallel
generators stay reproducible.
"""

from __future__ import annotations

import random

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return a :class:`random.Random` for *seed*.

    Accepts an existing ``Random`` (returned unchanged), an integer seed,
    or ``None`` (fresh OS-seeded generator).
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn_rngs(rng: random.Random, count: int) -> list[random.Random]:
    """Derive *count* independent, reproducible child generators.

    Children are seeded from the parent stream, so two runs with the same
    parent seed produce identical children regardless of interleaving.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [random.Random(rng.getrandbits(64)) for _ in range(count)]
