"""Fixed-width bit sets backed by a single Python integer.

Both CT-Index (4096-bit graph fingerprints) and gCode (32-bit vertex
label/neighbor counter strings) need compact bit arrays supporting fast
bitwise containment tests.  Python's arbitrary-precision integers make an
ideal backing store: bitwise AND/OR over an ``int`` is a single C-level
operation regardless of width, which is exactly the "fingerprint
comparison is cheap" property the paper credits CT-Index for.
"""

from __future__ import annotations

__all__ = ["Bitset"]


class Bitset:
    """A fixed-width array of bits.

    Bits are addressed ``0 .. width - 1``.  Instances are mutable via
    :meth:`set` / :meth:`clear`, and support the bitwise operators
    ``& | ^`` (returning new instances of the same width).

    Parameters
    ----------
    width:
        Number of addressable bits; must be positive.
    value:
        Optional initial backing integer (must fit in *width* bits).
    """

    __slots__ = ("_width", "_bits")

    def __init__(self, width: int, value: int = 0) -> None:
        if width <= 0:
            raise ValueError(f"Bitset width must be positive, got {width}")
        if value < 0 or value >> width:
            raise ValueError(f"value does not fit in {width} bits")
        self._width = width
        self._bits = value

    @property
    def width(self) -> int:
        """Number of addressable bits."""
        return self._width

    @property
    def value(self) -> int:
        """The backing integer (read-only view)."""
        return self._bits

    def set(self, index: int) -> None:
        """Set bit *index* to 1."""
        self._check_index(index)
        self._bits |= 1 << index

    def clear(self, index: int) -> None:
        """Set bit *index* to 0."""
        self._check_index(index)
        self._bits &= ~(1 << index)

    def test(self, index: int) -> bool:
        """Return True iff bit *index* is 1."""
        self._check_index(index)
        return bool((self._bits >> index) & 1)

    def popcount(self) -> int:
        """Number of set bits."""
        return self._bits.bit_count()

    def contains(self, other: "Bitset") -> bool:
        """Return True iff every set bit of *other* is also set here.

        This is the CT-Index filtering test: a data graph survives iff its
        fingerprint contains the query fingerprint.
        """
        self._check_width(other)
        return other._bits & ~self._bits == 0

    def saturation(self) -> float:
        """Fraction of bits set, in ``[0, 1]`` (fingerprint fullness)."""
        return self.popcount() / self._width

    def copy(self) -> "Bitset":
        return Bitset(self._width, self._bits)

    def nbytes(self) -> int:
        """Storage size of the bit payload in bytes (width / 8, rounded up)."""
        return (self._width + 7) // 8

    def to_bytes(self) -> bytes:
        """Serialize to little-endian bytes of :meth:`nbytes` length."""
        return self._bits.to_bytes(self.nbytes(), "little")

    @classmethod
    def from_bytes(cls, width: int, data: bytes) -> "Bitset":
        """Inverse of :meth:`to_bytes`."""
        return cls(width, int.from_bytes(data, "little"))

    @classmethod
    def from_indices(cls, width: int, indices) -> "Bitset":
        """Build a bitset with the given bit positions set."""
        bits = 0
        for index in indices:
            if not 0 <= index < width:
                raise IndexError(f"bit index {index} out of range [0, {width})")
            bits |= 1 << index
        return cls(width, bits)

    def indices(self):
        """Yield the positions of set bits in increasing order."""
        bits = self._bits
        position = 0
        while bits:
            if bits & 1:
                yield position
            bits >>= 1
            position += 1

    def __and__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        return Bitset(self._width, self._bits & other._bits)

    def __or__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        return Bitset(self._width, self._bits | other._bits)

    def __xor__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        return Bitset(self._width, self._bits ^ other._bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self._width == other._width and self._bits == other._bits

    def __hash__(self) -> int:
        return hash((self._width, self._bits))

    def __len__(self) -> int:
        return self._width

    def __repr__(self) -> str:
        return f"Bitset(width={self._width}, popcount={self.popcount()})"

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self._width:
            raise IndexError(f"bit index {index} out of range [0, {self._width})")

    def _check_width(self, other: "Bitset") -> None:
        if self._width != other._width:
            raise ValueError(
                f"width mismatch: {self._width} vs {other._width}"
            )
