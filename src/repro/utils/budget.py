"""Cooperative time and memory budgets — the paper's experiment limits.

The paper terminated any index build or query batch exceeding 8 hours
and reported the method as failed for that configuration (its
"breaking point").  Grapes additionally failed on very large datasets
by *memory* — "excessive memory usage ... leading to thrashing even in
our 128GB RAM host" (§5.2.4).  We reproduce both failure modes
cooperatively: long loops poll a shared :class:`Budget`, which raises
:class:`BudgetExceeded` once the wall-clock allowance is spent, and
index builds report their running size through :meth:`Budget.check_memory`,
which raises :class:`MemoryBudgetExceeded` past the byte allowance.
The experiment runner catches either and records a missing data point,
exactly as the paper's figures show truncated curves.
"""

from __future__ import annotations

import time

__all__ = ["Budget", "BudgetExceeded", "MemoryBudgetExceeded"]


class BudgetExceeded(RuntimeError):
    """Raised when an operation overruns its time budget."""

    def __init__(self, limit_seconds: float, phase: str = "") -> None:
        where = f" during {phase}" if phase else ""
        super().__init__(f"time budget of {limit_seconds:.3f}s exceeded{where}")
        self.limit_seconds = limit_seconds
        self.phase = phase

    def __reduce__(self):
        # Default exception pickling replays ``cls(*args)`` with the
        # formatted message as the sole argument, which does not match
        # this constructor; rebuild from the structured fields instead
        # so the exception survives a worker-process boundary.
        return (type(self), (self.limit_seconds, self.phase))


class MemoryBudgetExceeded(BudgetExceeded):
    """Raised when an index grows past its memory allowance."""

    def __init__(self, limit_bytes: int, observed_bytes: int, phase: str = "") -> None:
        where = f" during {phase}" if phase else ""
        RuntimeError.__init__(
            self,
            f"memory budget of {limit_bytes} bytes exceeded"
            f" ({observed_bytes} bytes estimated){where}",
        )
        self.limit_bytes = limit_bytes
        self.observed_bytes = observed_bytes
        self.phase = phase

    def __reduce__(self):
        return (type(self), (self.limit_bytes, self.observed_bytes, self.phase))


class Budget:
    """Wall-clock (and optional memory) allowances, polled cooperatively.

    Parameters
    ----------
    seconds:
        The time allowance.  ``None`` or ``float('inf')`` means
        unlimited (polling becomes a no-op).
    max_bytes:
        Optional memory allowance for index construction; checked only
        where builders call :meth:`check_memory` with their running
        size estimate.
    phase:
        Optional description included in the exception message.

    Examples
    --------
    >>> budget = Budget(seconds=None)
    >>> budget.check()          # unlimited: never raises
    >>> budget.exceeded
    False
    """

    __slots__ = ("seconds", "max_bytes", "phase", "_deadline", "_start")

    def __init__(
        self,
        seconds: float | None = None,
        max_bytes: int | None = None,
        phase: str = "",
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError(f"budget must be non-negative, got {seconds}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        self.seconds = seconds
        self.max_bytes = max_bytes
        self.phase = phase
        self._start = time.perf_counter()
        self._deadline = None if seconds is None else self._start + seconds

    def check(self) -> None:
        """Raise :class:`BudgetExceeded` if the time allowance is spent."""
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise BudgetExceeded(self.seconds or 0.0, self.phase)

    def check_memory(self, estimated_bytes: int) -> None:
        """Raise :class:`MemoryBudgetExceeded` past the byte allowance.

        Builders call this with a *cheap running estimate* of their
        index payload (exact deep sizing on every poll would dominate
        build time); the estimate only needs to track growth.
        """
        if self.max_bytes is not None and estimated_bytes > self.max_bytes:
            raise MemoryBudgetExceeded(self.max_bytes, estimated_bytes, self.phase)

    @property
    def exceeded(self) -> bool:
        """True iff the allowance is spent (without raising)."""
        return self._deadline is not None and time.perf_counter() > self._deadline

    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited, never below zero)."""
        if self._deadline is None:
            return float("inf")
        return max(0.0, self._deadline - time.perf_counter())

    def elapsed(self) -> float:
        """Seconds since the budget started."""
        return time.perf_counter() - self._start

    def restarted(self, phase: str | None = None) -> "Budget":
        """A fresh budget with the same allowances (new deadline)."""
        return Budget(
            self.seconds,
            max_bytes=self.max_bytes,
            phase=self.phase if phase is None else phase,
        )
