"""Deterministic hashing of feature canonical labels.

CT-Index maps canonical feature labels to fingerprint bit positions and
gCode maps vertex/neighbor labels to counter buckets.  Python's built-in
``hash`` is randomized per process for strings, so indexes built in one
process would not match queries hashed in another.  We therefore hash
through BLAKE2b, which is stable, fast, and lets us derive as many
independent bit positions as needed from one digest.
"""

from __future__ import annotations

import hashlib

__all__ = ["stable_hash", "stable_digest", "dedup_structure", "hash_positions"]


def stable_hash(obj: object, *, salt: bytes = b"") -> int:
    """A process-independent 64-bit hash of ``repr(obj)``.

    The representation of canonical labels (tuples of strings/ints) is
    unambiguous, so hashing the ``repr`` is collision-safe up to the
    64-bit output width.
    """
    digest = hashlib.blake2b(repr(obj).encode("utf-8"), digest_size=8, salt=salt)
    return int.from_bytes(digest.digest(), "little")


def stable_digest(data: bytes) -> int:
    """A process-independent 64-bit content hash of raw bytes.

    Used to key shared-memory dataset arenas and the worker-side
    dataset/index caches (:mod:`repro.core.arena`): two identical packed
    payloads always hash alike, in every process of an invocation.
    """
    digest = hashlib.blake2b(data, digest_size=8)
    return int.from_bytes(digest.digest(), "little")


def dedup_structure(obj: object, _memo: dict | None = None) -> object:
    """Rebuild nested tuples so equal leaves share one object.

    ``pickle`` memoizes by object *identity*: two equal structures
    serialize to different bytes when one reuses a leaf object (an
    interned label string, a cached int) where the other holds a fresh
    equal copy.  Canonical index payloads route through this before
    export, so "equal payload" and "equal pickle bytes" coincide — the
    property the incremental-update harness asserts.  Leaves are keyed
    by ``(type, value)`` (``1``, ``1.0`` and ``True`` must not unify);
    unhashable leaves pass through untouched.
    """
    if _memo is None:
        _memo = {}
    if type(obj) is tuple:
        return tuple(dedup_structure(item, _memo) for item in obj)
    if obj is None or isinstance(obj, bool):
        return obj
    try:
        return _memo.setdefault((type(obj), obj), obj)
    except TypeError:
        return obj


def hash_positions(obj: object, width: int, count: int) -> list[int]:
    """Derive *count* bit positions in ``[0, width)`` for *obj*.

    Used by CT-Index to set ``count`` fingerprint bits per feature
    (a Bloom-filter-style encoding).  Positions are derived from
    independent BLAKE2b salts, so they are uncorrelated across ``i``.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    payload = repr(obj).encode("utf-8")
    positions = []
    for i in range(count):
        digest = hashlib.blake2b(payload, digest_size=8, salt=i.to_bytes(2, "little") + b"ct")
        positions.append(int.from_bytes(digest.digest(), "little") % width)
    return positions
