"""Wall-clock timing helpers used by the evaluation harness."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the stopwatch and start timing again."""
        self.elapsed = 0.0
        self._start = time.perf_counter()

    def lap(self) -> float:
        """Seconds since the timer was (re)started, without stopping it."""
        if self._start is None:
            raise RuntimeError("Timer has not been started")
        return time.perf_counter() - self._start
