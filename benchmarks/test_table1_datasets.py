"""Table 1: characteristics of the (stand-in) real datasets.

Regenerates the paper's Table 1 from the synthesized AIDS/PDBS/PCM/PPI
stand-ins and checks the row-level relationships the paper highlights:
AIDS = many small sparse graphs, PDBS = moderate count of large sparse
graphs, PCM = medium graphs with high degree, PPI = few huge graphs of
medium degree.
"""

import pytest

from repro.generators.realsets import REAL_DATASET_SPECS, make_real_dataset
from repro.graphs.statistics import dataset_statistics
from repro.core.report import render_table1

from benchkit import save_and_print


def _collect(profile):
    stats = {}
    for name in profile.real_dataset_names:
        dataset = make_real_dataset(name, scale=profile.real_dataset_scale, seed=0)
        stats[name] = dataset_statistics(dataset, name=name)
    return stats


def test_table1(benchmark, profile, results_dir):
    stats = benchmark.pedantic(_collect, args=(profile,), rounds=1, iterations=1)
    save_and_print(results_dir, "table1.txt", render_table1(stats))

    # Relative relationships of Table 1 that survive any uniform scale
    # (>= where the 5-graph floor can make tiny scales clamp equal).
    assert stats["AIDS"].num_graphs > stats["PDBS"].num_graphs >= stats["PCM"].num_graphs >= stats["PPI"].num_graphs
    assert stats["PCM"].avg_degree > stats["PPI"].avg_degree > stats["AIDS"].avg_degree
    assert stats["PPI"].avg_vertices > stats["PCM"].avg_vertices >= stats["AIDS"].avg_vertices
    # PCM and PPI are entirely disconnected graphs (Table 1).
    assert stats["PCM"].num_disconnected == stats["PCM"].num_graphs
    assert stats["PPI"].num_disconnected == stats["PPI"].num_graphs
    # Label alphabet sizes are scale-independent.
    for name, stat in stats.items():
        assert stat.num_labels <= REAL_DATASET_SPECS[name].num_labels


def test_full_scale_spec_fidelity(benchmark):
    """Per-graph statistics at full scale (sampled), vs Table 1."""

    def sample():
        return dataset_statistics(make_real_dataset("AIDS", num_graphs=150, seed=1))

    stats = benchmark.pedantic(sample, rounds=1, iterations=1)
    spec = REAL_DATASET_SPECS["AIDS"]
    assert stats.avg_vertices == pytest.approx(spec.avg_nodes, rel=0.2)
    assert stats.avg_degree == pytest.approx(spec.avg_degree, rel=0.2)
