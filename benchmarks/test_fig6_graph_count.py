"""Figure 6: performance and scalability vs number of graphs.

Shape claims checked (from §5.2.4):

* all metrics scale roughly linearly in the number of graphs — for
  methods completing the sweep, indexing time grows by no more than
  ~3x the growth of the dataset;
* the false positive ratio is comparatively unaffected by dataset
  count (path methods: bounded drift across the sweep);
* GGSX completes the whole sweep (it was the only method to index
  100,000 graphs in the paper).
"""

from repro.core.experiments import graph_count_sweep
from repro.core.report import render_sweep, series_values

from benchkit import save_and_print


def test_fig6(benchmark, profile, engine, results_dir):
    sweep = benchmark.pedantic(
        graph_count_sweep, kwargs={"profile": profile, **engine}, rounds=1, iterations=1
    )
    save_and_print(results_dir, "fig6_graph_count.txt", render_sweep(sweep, "6"))

    indexing = sweep.indexing_time()

    # GGSX completes the whole sweep.
    assert len(series_values(indexing, "ggsx")) == len(sweep.x_values)

    # Near-linear scaling for completing exhaustive methods.
    growth = sweep.x_values[-1] / sweep.x_values[0]
    for method in ("ggsx", "grapes", "ctindex"):
        values = series_values(indexing, method)
        if len(values) == len(sweep.x_values):
            assert values[-1] / max(values[0], 1e-9) < 3.0 * growth, (
                f"{method} indexing grew superlinearly in graph count"
            )

    # Index size also tracks the dataset linearly for trie methods.
    sizes = sweep.index_size_mb()
    for method in ("ggsx", "grapes"):
        values = series_values(sizes, method)
        if len(values) == len(sweep.x_values):
            assert values[-1] / max(values[0], 1e-9) < 3.0 * growth

    # FP ratio roughly unaffected by dataset count for path methods.
    fp = sweep.fp_ratio()
    for method in ("ggsx", "grapes"):
        values = series_values(fp, method)
        if len(values) >= 2:
            assert abs(values[-1] - values[0]) < 0.35
