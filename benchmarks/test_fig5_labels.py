"""Figure 5: performance and scalability vs number of distinct labels.

Shape claims checked (from §5.2.3):

* exhaustive-enumeration methods' indexing time is relatively
  unaffected by the label count (bounded ratio across the sweep);
* frequent-mining methods fail (or are slowest) at the *lowest* label
  counts — few labels make every feature frequent, exploding the
  mining search space;
* filtering power generally improves (FP ratio does not increase) as
  labels increase, comparing the sweep's ends for the path methods.
"""

from repro.core.experiments import labels_sweep
from repro.core.report import render_sweep, series_values

from benchkit import save_and_print


def test_fig5(benchmark, profile, engine, results_dir):
    sweep = benchmark.pedantic(
        labels_sweep, kwargs={"profile": profile, **engine}, rounds=1, iterations=1
    )
    save_and_print(results_dir, "fig5_labels.txt", render_sweep(sweep, "5"))

    indexing = sweep.indexing_time()

    # Exhaustive methods complete the whole sweep and stay flat-ish.
    for method in ("ggsx", "grapes", "ctindex", "gcode"):
        values = series_values(indexing, method)
        assert len(values) == len(sweep.x_values), f"{method} broke on labels sweep"
        assert max(values) / max(min(values), 1e-9) < 100.0

    # Mining methods struggle at the low-label end: either missing data
    # there, or their worst (slowest) point sits in the lower half of
    # the sweep.
    for method in ("gindex", "tree+delta"):
        points = indexing[method]
        low_half = [v for x, v in points[: len(points) // 2 + 1]]
        if any(v is None for v in low_half):
            continue  # broke at the low end: exactly the paper's story
        values = series_values(indexing, method)
        worst_x = max(
            (v, x) for (x, v) in points if v is not None
        )[1]
        assert worst_x <= sweep.x_values[len(sweep.x_values) // 2], (
            f"{method} should be slowest at few labels, worst at {worst_x}"
        )

    # More labels -> no worse filtering for the path methods (compare
    # first vs last completed points).
    fp = sweep.fp_ratio()
    for method in ("ggsx", "grapes"):
        values = series_values(fp, method)
        if len(values) >= 2:
            assert values[-1] <= values[0] + 0.15
