"""Ablations on the design choices the paper calls out.

Three controlled experiments behind §3/§6 statements:

1. **CT-Index feature size** — [9] showed features of size 4 trade a
   little filtering power for much cheaper indexing than the original
   6/8 configuration.  We sweep the feature-size knob and assert the
   trade-off's direction: bigger features => not-faster indexing and
   not-worse filtering.
2. **Grapes location information** — Grapes vs GGSX on identical path
   length isolates the cost (index size) and benefit (candidate-set
   size) of storing locations.
3. **Path length** — GGSX with longer paths filters no worse and costs
   monotonically more index.
"""

from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.indexes import CTIndex, GrapesIndex, GraphGrepSXIndex
from repro.isomorphism.heuristics import connectivity_order, frequency_degree_order
from repro.isomorphism.ullmann import ullmann_is_subgraph
from repro.isomorphism.vf2 import is_subgraph
from repro.utils.timing import Timer

from benchkit import save_and_print


def _make_workbench(profile):
    config = GraphGenConfig(
        num_graphs=profile.default_num_graphs,
        mean_nodes=profile.default_nodes,
        mean_density=profile.default_density,
        num_labels=profile.default_labels,
    )
    dataset = generate_dataset(config, seed=1)
    queries = []
    for size in profile.query_sizes[:2]:
        queries.extend(
            generate_queries(dataset, profile.queries_per_size, size, seed=size)
        )
    return dataset, queries


def test_ctindex_feature_size_ablation(benchmark, profile, results_dir):
    """Feature size vs fingerprint width: the §6 compression trade-off.

    With an effectively collision-free (very wide) fingerprint, larger
    features can only tighten filtering.  At a *fixed* realistic width,
    larger features saturate the fingerprint and filtering can degrade
    — "the expressive power gained by the more complex features is
    offset by ... the introduction of yet more false positives" (§6).
    """
    dataset, queries = _make_workbench(profile)

    def run():
        rows = []
        for feature_edges in (2, 3, 4):
            wide = CTIndex(fingerprint_bits=1 << 16, feature_edges=feature_edges)
            narrow = CTIndex(fingerprint_bits=512, feature_edges=feature_edges)
            wide_report = wide.build(dataset)
            narrow.build(dataset)
            rows.append(
                (
                    feature_edges,
                    wide_report.seconds,
                    sum(len(wide.filter(q)) for q in queries),
                    sum(len(narrow.filter(q)) for q in queries),
                    narrow.build_report.details["avg_saturation"],
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "CT-Index feature-size ablation\n"
        "(edges, build s, candidates @64Kbit, candidates @512bit, 512bit saturation)\n"
    )
    text += "\n".join(
        f"  {k}  {t:8.3f}  {cw:5d}  {cn:5d}  {sat:.3f}" for k, t, cw, cn, sat in rows
    ) + "\n"
    save_and_print(results_dir, "ablation_ctindex.txt", text)

    # Collision-free regime: larger features filter no worse.
    wide_candidates = [cw for _, _, cw, _, _ in rows]
    assert wide_candidates == sorted(wide_candidates, reverse=True) or all(
        wide_candidates[i] >= wide_candidates[i + 1]
        for i in range(len(wide_candidates) - 1)
    )
    # Narrow fingerprints saturate as features grow.
    saturations = [sat for *_, sat in rows]
    assert saturations == sorted(saturations)
    # Narrow never filters better than wide at the same feature size.
    for _, _, cw, cn, _ in rows:
        assert cn >= cw
    # Larger features cost more indexing time.
    assert rows[-1][1] >= rows[0][1] * 0.5


def test_grapes_location_information_ablation(benchmark, profile, results_dir):
    dataset, queries = _make_workbench(profile)

    def run():
        grapes = GrapesIndex(max_path_edges=3, workers=2)
        ggsx = GraphGrepSXIndex(max_path_edges=3)
        grapes_report = grapes.build(dataset)
        ggsx_report = ggsx.build(dataset)
        grapes_candidates = sum(len(grapes.filter(q)) for q in queries)
        ggsx_candidates = sum(len(ggsx.filter(q)) for q in queries)
        return {
            "grapes_bytes": grapes_report.size_bytes,
            "ggsx_bytes": ggsx_report.size_bytes,
            "grapes_candidates": grapes_candidates,
            "ggsx_candidates": ggsx_candidates,
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Grapes location-information ablation (vs GGSX, same paths)\n"
        f"  index bytes:  grapes={out['grapes_bytes']}  ggsx={out['ggsx_bytes']}\n"
        f"  candidates:   grapes={out['grapes_candidates']}  ggsx={out['ggsx_candidates']}\n"
    )
    save_and_print(results_dir, "ablation_grapes_locations.txt", text)

    # Locations cost space and buy (not-worse) filtering.
    assert out["grapes_bytes"] > out["ggsx_bytes"]
    assert out["grapes_candidates"] <= out["ggsx_candidates"]


def test_path_length_ablation(benchmark, profile, results_dir):
    dataset, queries = _make_workbench(profile)

    def run():
        rows = []
        for length in (1, 2, 3, 4):
            index = GraphGrepSXIndex(max_path_edges=length)
            report = index.build(dataset)
            candidates = sum(len(index.filter(q)) for q in queries)
            rows.append((length, report.size_bytes, candidates))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "GGSX path-length ablation (length, index bytes, total candidates)\n"
    text += "\n".join(f"  {k}  {b:10d}  {c}" for k, b, c in rows) + "\n"
    save_and_print(results_dir, "ablation_path_length.txt", text)

    sizes = [b for _, b, _ in rows]
    candidates = [c for _, _, c in rows]
    assert sizes == sorted(sizes), "index must grow with path length"
    assert candidates == sorted(candidates, reverse=True) or all(
        candidates[i] >= candidates[i + 1] - 1 for i in range(len(candidates) - 1)
    ), "filtering must not weaken with longer paths"


def test_verification_algorithm_ablation(benchmark, profile, results_dir):
    """VF2 (stock order) vs VF2 (CT-Index's rare-label order) vs Ullmann.

    Every benchmarked system verifies with VF2 except CT-Index, which
    ships "a modified VF2 algorithm with additional heuristics" (§3).
    This ablation isolates the verifier choice on one workload: all
    three must agree on every (query, graph) pair, and their total
    times quantify what the heuristic buys.
    """
    dataset, queries = _make_workbench(profile)
    graphs = list(dataset)

    def run():
        timings = {}
        verdicts = {}
        for name, check in (
            ("vf2", lambda q, g: is_subgraph(q, g, ordering=connectivity_order)),
            ("vf2+heuristics", lambda q, g: is_subgraph(q, g, ordering=frequency_degree_order)),
            ("ullmann", ullmann_is_subgraph),
        ):
            with Timer() as timer:
                verdicts[name] = [
                    check(query, graph) for query in queries for graph in graphs
                ]
            timings[name] = timer.elapsed
        return timings, verdicts

    timings, verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "Verification-algorithm ablation (same workload, total seconds)\n"
    text += "\n".join(f"  {name:15s} {seconds:8.3f}s" for name, seconds in timings.items())
    text += f"\n  pairs checked: {len(next(iter(verdicts.values())))}\n"
    save_and_print(results_dir, "ablation_verification.txt", text)

    # Correctness: all three verifiers agree on every pair.
    reference = verdicts["vf2"]
    assert verdicts["vf2+heuristics"] == reference
    assert verdicts["ullmann"] == reference
    assert any(reference), "workload should contain positive pairs"
    assert not all(reference), "workload should contain negative pairs"
