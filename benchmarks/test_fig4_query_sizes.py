"""Figure 4: query processing time per query size, vs density.

The paper's Figure 4 splits the density sweep's query times by query
size (4, 8, 16, 32 edges).  Shape claims checked (from §5.2.2):

* exhaustive-enumeration methods are "rather insensitive" to query
  size — their time ratio between the largest and smallest query size
  stays within an order of magnitude where both complete;
* larger query sizes never make the *breaking point* later: methods
  drop out at the same density or earlier as queries grow.
"""

from repro.core.report import render_series_table, series_values

from benchkit import save_and_print
from test_fig3_density import shared_density_sweep


def test_fig4(benchmark, profile, engine, results_dir):
    sweep = benchmark.pedantic(
        shared_density_sweep, args=(profile, engine), rounds=1, iterations=1
    )
    panels = []
    for size in sweep.query_sizes:
        panels.append(
            render_series_table(
                f"Figure 4 (query size {size}): query time (s) vs density",
                sweep.query_time_for_size(size),
                "density",
            )
        )
    save_and_print(results_dir, "fig4_query_sizes.txt", "\n".join(panels))

    smallest, largest = sweep.query_sizes[0], sweep.query_sizes[-1]

    # Path methods: insensitivity to query size (both series complete
    # and stay within ~10x of each other pointwise).
    for method in ("ggsx", "grapes"):
        small_series = dict(
            (x, v) for x, v in sweep.query_time_for_size(smallest)[method]
        )
        large_series = dict(
            (x, v) for x, v in sweep.query_time_for_size(largest)[method]
        )
        for x, small_value in small_series.items():
            large_value = large_series.get(x)
            if small_value is None or large_value is None or small_value == 0:
                continue
            assert large_value / small_value < 50.0, (
                f"{method} too sensitive to query size at density {x}"
            )

    # Every method produces at least as many data points for small
    # queries as for large ones (budgets bind harder on big queries).
    for method in sweep.methods:
        small_count = len(series_values(sweep.query_time_for_size(smallest), method))
        large_count = len(series_values(sweep.query_time_for_size(largest), method))
        assert small_count >= large_count
