"""Micro-benchmarks of the substrates (proper pytest-benchmark timing).

Unlike the figure benches (one-shot sweeps), these measure the hot
kernels with statistical repetition: VF2 matching, path/tree/cycle
enumeration, canonical forms, fingerprint filtering.  They put numbers
on the per-operation costs that the figure-level results aggregate.
"""

import pytest

from repro.canonical.dfscode import min_dfs_code
from repro.canonical.trees import tree_canonical
from repro.features.cycles import enumerate_simple_cycles
from repro.features.paths import path_features
from repro.features.trees import enumerate_trees
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.indexes import CTIndex, GCodeIndex
from repro.isomorphism.vf2 import SubgraphMatcher, is_subgraph
from repro.mining.gspan import mine_frequent_patterns


@pytest.fixture(scope="module")
def workbench():
    config = GraphGenConfig(
        num_graphs=20, mean_nodes=30, mean_density=0.1, num_labels=6
    )
    dataset = generate_dataset(config, seed=2)
    queries = generate_queries(dataset, 10, 8, seed=3)
    return dataset, queries


def test_vf2_positive_matches(benchmark, workbench):
    dataset, queries = workbench
    graphs = list(dataset)

    def run():
        hits = 0
        for query in queries:
            for graph in graphs:
                hits += is_subgraph(query, graph)
        return hits

    hits = benchmark(run)
    assert hits > 0


def test_vf2_embedding_enumeration(benchmark, workbench):
    dataset, queries = workbench
    query, graph = queries[0], dataset[0]

    def run():
        return SubgraphMatcher(query, graph).count(limit=100)

    benchmark(run)


def test_path_enumeration(benchmark, workbench):
    dataset, _ = workbench
    graph = dataset[0]
    features = benchmark(path_features, graph, 4)
    assert features


def test_tree_enumeration(benchmark, workbench):
    dataset, _ = workbench
    graph = dataset[0]
    trees = benchmark(lambda: sum(1 for _ in enumerate_trees(graph, 3)))
    assert trees > 0


def test_cycle_enumeration(benchmark, workbench):
    dataset, _ = workbench
    graph = dataset[0]
    benchmark(lambda: sum(1 for _ in enumerate_simple_cycles(graph, 4)))


def test_min_dfs_code_on_queries(benchmark, workbench):
    _, queries = workbench

    def run():
        return [min_dfs_code(q) for q in queries if q.size]

    codes = benchmark(run)
    assert len(codes) == len(queries)


def test_tree_canonical_labels(benchmark, workbench):
    dataset, _ = workbench
    graph = dataset[0]
    subtrees = list(enumerate_trees(graph, 3))[:200]

    def run():
        return [tree_canonical(graph, edges) for edges in subtrees]

    labels = benchmark(run)
    assert len(labels) == len(subtrees)


def test_ctindex_fingerprint(benchmark, workbench):
    dataset, _ = workbench
    index = CTIndex(fingerprint_bits=1024, feature_edges=3)
    fingerprint = benchmark(index.fingerprint, dataset[0])
    assert fingerprint.popcount() > 0


def test_ctindex_filter_throughput(benchmark, workbench):
    dataset, queries = workbench
    index = CTIndex(fingerprint_bits=1024, feature_edges=3)
    index.build(dataset)

    def run():
        return [len(index.filter(q)) for q in queries]

    benchmark(run)


def test_gcode_signature(benchmark, workbench):
    dataset, _ = workbench
    index = GCodeIndex()
    graph = dataset[0]
    benchmark(lambda: [index.vertex_signature(graph, v) for v in range(5)])


def test_tree_mining(benchmark, workbench):
    dataset, _ = workbench
    graphs = list(dataset)

    def run():
        return mine_frequent_patterns(
            graphs, min_support=max(2, len(graphs) // 5), max_edges=3, trees_only=True
        )

    patterns = benchmark.pedantic(run, rounds=1, iterations=1)
    assert patterns
