"""Shared fixtures for the figure-reproduction benchmarks.

Every ``test_fig*.py`` file regenerates one figure (or table) of the
paper: it runs the corresponding sweep once under ``benchmark.pedantic``
(so pytest-benchmark records the harness cost), renders the same series
the paper plots, writes them to ``benchmarks/results/``, and asserts the
qualitative *shape* claims of §5/§6 that are stable at the active scale.

Scale selection: ``REPRO_SCALE=paper`` runs the full §4 configuration
(expect extremely long runtimes in pure Python); the default is a
trimmed CI profile sized for minutes, not hours.  EXPERIMENTS.md records
the outputs of both the shipped CI runs and the paper's own numbers.
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.presets import CI_PROFILE, PAPER_PROFILE

RESULTS_DIR = Path(__file__).parent / "results"


def bench_profile():
    """The profile benchmarks run under (env-selectable)."""
    if os.environ.get("REPRO_SCALE", "").lower() == "paper":
        return PAPER_PROFILE
    # Trim the CI profile further: benches favour wall-clock over grid
    # resolution, and the shape claims survive the smaller grid.
    return replace(
        CI_PROFILE,
        nodes_values=(10, 14, 18, 24, 32, 44),
        density_values=(0.05, 0.08, 0.12, 0.18, 0.26),
        label_values=(2, 3, 4, 8, 12),
        graph_count_values=(30, 60, 120, 240),
        default_num_graphs=40,
        queries_per_size=5,
        build_budget_seconds=10.0,
        query_budget_seconds=10.0,
        real_dataset_scale=0.02,
    )


@pytest.fixture(scope="session")
def profile():
    return bench_profile()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered figure and echo it into the bench log."""
    (results_dir / name).write_text(text, encoding="utf-8")
    print()
    print(text)
