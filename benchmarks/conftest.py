"""Shared fixtures for the figure-reproduction benchmarks.

Every ``test_fig*.py`` file regenerates one figure (or table) of the
paper: it runs the corresponding sweep once under ``benchmark.pedantic``
(so pytest-benchmark records the harness cost), renders the same series
the paper plots, writes them to ``benchmarks/results/``, and asserts the
qualitative *shape* claims of §5/§6 that are stable at the active scale.

Scale selection: ``REPRO_SCALE=paper`` runs the full §4 configuration
(expect extremely long runtimes in pure Python); the default is a
trimmed CI profile sized for minutes, not hours.  ``REPRO_JOBS=N``
opts the sweeps into the parallel engine with N worker processes.
EXPERIMENTS.md records the outputs of both the shipped CI runs and the
paper's own numbers.

Helper functions live in :mod:`benchkit` (``benchmarks/benchkit.py``);
only fixtures live here.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from benchkit import RESULTS_DIR, bench_engine, bench_jobs, bench_profile


@pytest.fixture(scope="session")
def profile():
    return bench_profile()


@pytest.fixture(scope="session")
def jobs() -> int:
    return bench_jobs()


@pytest.fixture(scope="session")
def engine() -> dict:
    """Engine kwargs (jobs / shared_mem / batch_queries) for sweeps."""
    return bench_engine()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
