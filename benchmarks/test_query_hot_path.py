"""PR 9 benchmark: the CSR-native query hot path vs the dict walks.

Three legs, same honesty rules as the PR 6 bench:

1. **Enumeration microbenchmark** — the index-build path harvest (the
   Grapes/GGSX hot loop: every labeled path up to ``MAX_PATH_EDGES``
   edges) over every dataset graph, timed under the dict-walk feature
   core and under the CSR kernels *on identical CSR hosts*.  Feature
   totals must agree exactly before the timing means anything, and the
   cycle/subset kernels are parity-checked (untimed — they share the
   ESU recursion with the dict walk, so their wins are marginal and
   would only dilute the path-kernel measurement).
2. **Verification microbenchmark** — an Ullmann workload (every query
   against every data graph) timed with set domains and with packed
   uint64 bitset domains, on a *wide-domain* dataset (few labels,
   hundreds of vertices) where refinement dominates — the regime the
   bitset engine exists for.  Hit counts must agree exactly.
3. **Sweep digest equality** — a small sweep run once per feature
   core; canonical digests must be byte-identical, so the speedups are
   a faster walk over the same computation, not a different one.

Both measured speedups land in ``BENCH_pr9.json`` at the repo root,
*sealed* with a content digest (`repro.core.benchrecords`): CI
re-validates the record, so a hand-edited trajectory point fails the
build.  ``REPRO_SCALE=paper`` scales the workload up as usual.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchkit import bench_profile
from repro.core.benchrecords import bench_seal
from repro.core.experiments import nodes_sweep
from repro.core.serialization import sweep_digest
from repro.features.cycles import enumerate_simple_cycles
from repro.features.kernels import FEATURE_CORE_ENV
from repro.features.paths import path_features
from repro.features.trees import connected_edge_subsets
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.graphs.csr import CSRDataset, CSRGraph
from repro.isomorphism.ullmann import ullmann_is_subgraph

REPO_ROOT = Path(__file__).parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_pr9.json"

#: Loop repetitions; the reported seconds are the per-pass best.
PASSES = 3

MAX_PATH_EDGES = 4
MAX_CYCLE_EDGES = 5
MAX_SUBSET_EDGES = 3


def _paper_scale() -> bool:
    return os.environ.get("REPRO_SCALE", "").lower() == "paper"


@pytest.fixture(scope="module")
def enum_workbench():
    """Index-build regime: moderately dense, label-rich graphs."""
    paper = _paper_scale()
    config = GraphGenConfig(
        num_graphs=8 if paper else 6,
        mean_nodes=150 if paper else 70,
        mean_density=0.04 if paper else 0.08,
        num_labels=5,
    )
    dataset = generate_dataset(config, seed=9)
    return list(CSRDataset.from_dataset(dataset))


@pytest.fixture(scope="module")
def verify_workbench():
    """Verification regime: wide domains — few labels, many vertices.

    Label-filtered candidate sets here span hundreds of data vertices,
    so Ullmann refinement (not candidate generation) dominates; that is
    the workload the packed-uint64 domains accelerate.
    """
    paper = _paper_scale()
    config = GraphGenConfig(
        num_graphs=10 if paper else 6,
        mean_nodes=400,
        mean_density=0.025,
        num_labels=2,
    )
    dataset = generate_dataset(config, seed=9)
    queries = generate_queries(dataset, 8, 7, seed=10)
    csr_graphs = list(CSRDataset.from_dataset(dataset))
    csr_queries = [CSRGraph.from_graph(query) for query in queries]
    return csr_graphs, csr_queries


def _enumeration_pass(graphs) -> tuple[int, int]:
    """The timed leg: harvest every labeled path feature."""
    distinct = traversals = 0
    for graph in graphs:
        features = path_features(graph, MAX_PATH_EDGES)
        distinct += len(features)
        traversals += sum(entry.count for entry in features.values())
    return distinct, traversals


def _side_feature_totals(graphs) -> tuple[int, int]:
    """Untimed parity aggregate for the cycle and subset kernels."""
    cycles = subsets = 0
    for graph in graphs:
        cycles += sum(1 for _ in enumerate_simple_cycles(graph, MAX_CYCLE_EDGES))
        subsets += sum(1 for _ in connected_edge_subsets(graph, MAX_SUBSET_EDGES))
    return cycles, subsets


def _best_enumeration_seconds(graphs) -> tuple[float, tuple[int, int]]:
    best = float("inf")
    totals = (0, 0)
    for _ in range(PASSES):
        start = time.perf_counter()
        totals = _enumeration_pass(graphs)
        best = min(best, time.perf_counter() - start)
    return best, totals


def _verify_pass(graphs, queries, engine) -> int:
    hits = 0
    for query in queries:
        for graph in graphs:
            hits += ullmann_is_subgraph(query, graph, engine=engine)
    return hits


def _best_verify_seconds(graphs, queries, engine) -> tuple[float, int]:
    best = float("inf")
    hits = 0
    for _ in range(PASSES):
        start = time.perf_counter()
        hits = _verify_pass(graphs, queries, engine)
        best = min(best, time.perf_counter() - start)
    return best, hits


def test_hot_path_speedups_are_exact(
    enum_workbench, verify_workbench, monkeypatch, benchmark
):
    graphs = enum_workbench
    verify_graphs, verify_queries = verify_workbench

    monkeypatch.setenv(FEATURE_CORE_ENV, "dict")
    dict_seconds, dict_totals = _best_enumeration_seconds(graphs)
    dict_sides = _side_feature_totals(graphs)
    monkeypatch.setenv(FEATURE_CORE_ENV, "csr")
    csr_seconds, csr_totals = _best_enumeration_seconds(graphs)
    csr_sides = _side_feature_totals(graphs)

    # Identity first: the kernels must harvest exactly the dict walk's
    # features (the parity suite pins per-feature byte-identity; the
    # bench re-checks the aggregates on its own workload).
    assert csr_totals == dict_totals
    assert csr_sides == dict_sides
    features, _ = dict_totals
    assert features > 0

    set_seconds, set_hits = _best_verify_seconds(
        verify_graphs, verify_queries, "set"
    )
    bitset_seconds, bitset_hits = _best_verify_seconds(
        verify_graphs, verify_queries, "bitset"
    )
    assert bitset_hits == set_hits
    assert set_hits > 0

    enumeration_speedup = dict_seconds / csr_seconds
    verify_speedup = set_seconds / bitset_seconds
    record = bench_seal(
        {
            "bench": "csr-query-hot-path",
            "pr": 9,
            "enum_graphs": len(graphs),
            "features": features,
            "verify_graphs": len(verify_graphs),
            "verify_queries": len(verify_queries),
            "hits": set_hits,
            "enumeration_dict_seconds": round(dict_seconds, 6),
            "enumeration_csr_seconds": round(csr_seconds, 6),
            "enumeration_speedup": round(enumeration_speedup, 3),
            "verify_set_seconds": round(set_seconds, 6),
            "verify_bitset_seconds": round(bitset_seconds, 6),
            "verify_speedup": round(verify_speedup, 3),
        }
    )
    BENCH_FILE.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(
        f"\nenumeration speedup over dict walk: {enumeration_speedup:.2f}x "
        f"({dict_seconds * 1e3:.1f} ms -> {csr_seconds * 1e3:.1f} ms)"
    )
    print(
        f"verification speedup over set domains: {verify_speedup:.2f}x "
        f"({set_seconds * 1e3:.1f} ms -> {bitset_seconds * 1e3:.1f} ms)"
    )

    # One statistically repeated pass in the pytest-benchmark log too.
    assert benchmark(_enumeration_pass, graphs) == dict_totals


def test_sweep_digest_identical_across_feature_cores(monkeypatch):
    from dataclasses import replace

    profile = replace(
        bench_profile(),
        nodes_values=(10, 14),
        default_num_graphs=12,
        query_sizes=(3, 4),
        queries_per_size=3,
        method_configs={
            "grapes": {"max_path_edges": 3},
            "ctindex": {"feature_edges": 3},
        },
    )
    monkeypatch.setenv(FEATURE_CORE_ENV, "dict")
    dict_digest = sweep_digest(nodes_sweep(profile, seed=11))
    monkeypatch.setenv(FEATURE_CORE_ENV, "csr")
    csr_digest = sweep_digest(nodes_sweep(profile, seed=11))
    assert csr_digest == dict_digest
