"""Figure 1: indexing and query processing over the real datasets.

Panels: (a) indexing time, (b) index size, (c) query processing time,
(d) false positive ratio — six methods over the AIDS/PDBS/PCM/PPI
stand-ins.  Shape claims checked (from §5.1):

* Grapes and GGSX complete indexing on every dataset within the budget;
* Grapes/GGSX query at least as fast as the frequent-mining methods
  wherever both produce data;
* path-based exhaustive methods index faster than frequent-mining
  methods on every dataset where the latter complete.
"""

from repro.core.experiments import real_dataset_experiment
from repro.core.report import ordering_fraction, render_sweep, series_values

from benchkit import save_and_print


def test_fig1(benchmark, profile, engine, results_dir):
    result = benchmark.pedantic(
        real_dataset_experiment,
        kwargs={"profile": profile, **engine},
        rounds=1,
        iterations=1,
    )
    save_and_print(results_dir, "fig1_real_datasets.txt", render_sweep(result, "1"))

    indexing = result.indexing_time()
    # Grapes and GGSX index every dataset within the budget (§5.1).
    assert len(series_values(indexing, "grapes")) == len(result.x_values)
    assert len(series_values(indexing, "ggsx")) == len(result.x_values)

    # Path methods vs frequent mining on indexing time, where comparable.
    assert (
        ordering_fraction(indexing, ["grapes", "ggsx"], ["gindex", "tree+delta"])
        >= 0.5
    )

    # Query time: the paper's recurring ordering, allowing noise at
    # small scale — exhaustive path methods lead the mining methods.
    query = result.query_time()
    assert (
        ordering_fraction(query, ["ggsx", "grapes"], ["gindex", "tree+delta"]) >= 0.5
    )
