"""PR 6 benchmark: the CSR graph core vs the dict builder.

Two legs, both honest about what they claim:

1. **Matcher microbenchmark** — the same VF2 workload (every query
   against every data graph, first-match mode, the paper's benchmarked
   configuration) timed with ``perf_counter`` on dict hosts and on CSR
   hosts.  Hit counts must agree exactly; the measured speedup is
   written to ``BENCH_pr6.json`` at the repo root, the first point of
   the repo's benchmark trajectory.
2. **Sweep digest equality** — a small two-method sweep run once per
   core; the canonical digests must be byte-identical, so the speedup
   above is a free lunch, not a different computation.

``REPRO_SCALE=paper`` scales the workload up like every other bench.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchkit import bench_profile
from repro.core.experiments import nodes_sweep
from repro.core.serialization import sweep_digest
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.graphs.csr import GRAPH_CORE_ENV, CSRDataset
from repro.isomorphism import SubgraphMatcher

REPO_ROOT = Path(__file__).parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_pr6.json"

#: Matcher-loop repetitions; the reported seconds are the per-pass best.
PASSES = 3


@pytest.fixture(scope="module")
def workbench():
    paper = os.environ.get("REPRO_SCALE", "").lower() == "paper"
    config = GraphGenConfig(
        num_graphs=60 if paper else 25,
        mean_nodes=40 if paper else 24,
        mean_density=0.1,
        num_labels=6,
    )
    dataset = generate_dataset(config, seed=6)
    queries = generate_queries(dataset, 12 if paper else 8, 6, seed=7)
    return dataset, queries


def _matcher_pass(graphs, queries) -> int:
    hits = 0
    for query in queries:
        for graph in graphs:
            hits += SubgraphMatcher(query, graph).exists()
    return hits


def _best_seconds(graphs, queries) -> tuple[float, int]:
    best = float("inf")
    hits = 0
    for _ in range(PASSES):
        start = time.perf_counter()
        hits = _matcher_pass(graphs, queries)
        best = min(best, time.perf_counter() - start)
    return best, hits


def test_csr_matcher_is_faster_and_exact(workbench, benchmark):
    dataset, queries = workbench
    dict_graphs = list(dataset)
    csr_graphs = list(CSRDataset.from_dataset(dataset))

    dict_seconds, dict_hits = _best_seconds(dict_graphs, queries)
    csr_seconds, csr_hits = _best_seconds(csr_graphs, queries)

    # Identity first: the fast path must answer exactly like the dict
    # path on every (query, graph) pair before its timing means anything.
    assert csr_hits == dict_hits
    assert dict_hits > 0

    speedup = dict_seconds / csr_seconds
    record = {
        "bench": "graph-core-matcher",
        "pr": 6,
        "graphs": len(dict_graphs),
        "queries": len(queries),
        "hits": dict_hits,
        "dict_seconds": round(dict_seconds, 6),
        "csr_seconds": round(csr_seconds, 6),
        "speedup": round(speedup, 3),
    }
    BENCH_FILE.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"\ncsr matcher speedup over dict: {speedup:.2f}x "
          f"({dict_seconds * 1e3:.1f} ms -> {csr_seconds * 1e3:.1f} ms)")

    # Record one pass under pytest-benchmark too, so the bench log keeps
    # a statistically repeated number alongside the JSON snapshot.
    assert benchmark(_matcher_pass, csr_graphs, queries) == dict_hits


def test_sweep_digest_identical_across_cores(monkeypatch):
    from dataclasses import replace

    profile = replace(
        bench_profile(),
        nodes_values=(10, 14),
        default_num_graphs=12,
        query_sizes=(3, 4),
        queries_per_size=3,
        method_configs={"naive": {}, "ggsx": {"max_path_edges": 3}},
    )
    monkeypatch.setenv(GRAPH_CORE_ENV, "dict")
    dict_digest = sweep_digest(nodes_sweep(profile, seed=9))
    monkeypatch.setenv(GRAPH_CORE_ENV, "csr")
    csr_digest = sweep_digest(nodes_sweep(profile, seed=9))
    assert csr_digest == dict_digest
