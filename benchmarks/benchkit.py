"""Shared helpers for the figure-reproduction benchmarks.

Importable by name from every ``test_fig*.py`` file (conftest modules
are not importable under pytest's importlib import mode).
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path

from repro.core.presets import CI_PROFILE, PAPER_PROFILE

RESULTS_DIR = Path(__file__).parent / "results"


def bench_profile():
    """The profile benchmarks run under (env-selectable)."""
    if os.environ.get("REPRO_SCALE", "").lower() == "paper":
        return PAPER_PROFILE
    # Trim the CI profile further: benches favour wall-clock over grid
    # resolution, and the shape claims survive the smaller grid.
    return replace(
        CI_PROFILE,
        nodes_values=(10, 14, 18, 24, 32, 44),
        density_values=(0.05, 0.08, 0.12, 0.18, 0.26),
        label_values=(2, 3, 4, 8, 12),
        graph_count_values=(30, 60, 120, 240),
        default_num_graphs=40,
        queries_per_size=5,
        build_budget_seconds=10.0,
        query_budget_seconds=10.0,
        real_dataset_scale=0.02,
    )


def bench_jobs() -> int | None:
    """Worker count for the sweeps (opt-in parallel mode).

    ``REPRO_JOBS=N`` fans every sweep's (method × dataset) cells out to
    N processes via :class:`repro.core.parallel.ParallelRunner`; unset
    (or 1) keeps the sequential path, whose cells are equivalent by the
    engine's ordered-merge guarantee.  ``REPRO_JOBS=0`` means all
    cores, matching ``repro sweep --jobs 0``.
    """
    value = int(os.environ.get("REPRO_JOBS", "1"))
    return None if value == 0 else max(1, value)


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").lower() not in ("", "0", "false", "no")


def bench_engine() -> dict:
    """Engine kwargs for every benchmark sweep call.

    ``REPRO_JOBS`` picks the worker count (above);
    ``REPRO_SHARED_MEM=1`` packs each dataset into a shared-memory
    arena, and ``REPRO_BATCH_QUERIES=1`` splits cells into per-query
    batches — the CLI's ``--shared-mem`` / ``--batch-queries``, exposed
    to CI so the full engine path runs on every push.  All modes are
    result-equivalent; only wall-clock changes.
    """
    return {
        "jobs": bench_jobs(),
        "shared_mem": _env_flag("REPRO_SHARED_MEM"),
        "batch_queries": _env_flag("REPRO_BATCH_QUERIES"),
    }


def save_and_print(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered figure and echo it into the bench log."""
    (results_dir / name).write_text(text, encoding="utf-8")
    print()
    print(text)
