"""Figure 2: performance and scalability vs number of nodes per graph.

Shape claims checked (from §5.2.1):

* frequent-mining methods (gIndex, Tree+Δ) break first as graphs grow —
  their breaking point precedes the path methods', which index every
  point in the sweep;
* Grapes/GGSX indexing time beats the mining methods wherever both
  have data;
* CT-Index's index size stays (near-)flat while trie/mining index sizes
  grow with graph size.
"""

from repro.core.experiments import nodes_sweep
from repro.core.report import (
    breaking_point,
    ordering_fraction,
    render_sweep,
    series_values,
)

from benchkit import save_and_print


def test_fig2(benchmark, profile, engine, results_dir):
    sweep = benchmark.pedantic(
        nodes_sweep, kwargs={"profile": profile, **engine}, rounds=1, iterations=1
    )
    save_and_print(results_dir, "fig2_nodes.txt", render_sweep(sweep, "2"))

    indexing = sweep.indexing_time()

    # The simple exhaustive methods index the whole sweep.
    assert len(series_values(indexing, "ggsx")) == len(sweep.x_values)
    assert len(series_values(indexing, "grapes")) == len(sweep.x_values)

    # Frequent mining hits its breaking point inside the sweep (§5.2.1:
    # "gIndex and Tree+Delta fail to produce an index even for as few
    # as 250-300 nodes").
    gindex_break = breaking_point(indexing, "gindex")
    assert gindex_break is not None, "gindex should break within the sweep"
    # ...and the path methods keep going past that point.
    assert breaking_point(indexing, "ggsx") is None

    # Indexing-time ordering: exhaustive paths beat frequent mining.
    assert ordering_fraction(indexing, ["grapes", "ggsx"], ["gindex"]) >= 0.5

    # CT-Index fingerprints: index size growth from the smallest to the
    # largest completed point is bounded, while GGSX's trie grows more.
    sizes = sweep.index_size_mb()
    ct = series_values(sizes, "ctindex")
    ggsx = series_values(sizes, "ggsx")
    assert ct[-1] / ct[0] < ggsx[-1] / ggsx[0]

    # FP ratio is a ratio.
    for method, points in sweep.fp_ratio().items():
        for _, value in points:
            assert value is None or 0.0 <= value <= 1.0
