"""Figure 3: performance and scalability vs graph density.

Shape claims checked (from §5.2.2):

* only the path-based exhaustive methods (Grapes, GGSX) index the
  densest configurations — frequent mining breaks earlier in the sweep;
* indexing time grows with density for every method (monotone trend up
  to noise: last completed point slower than first);
* query-time ordering (Grapes, GGSX) ahead of (gIndex, Tree+Δ) holds on
  at least half the comparable points.
"""

from repro.core.experiments import density_sweep
from repro.core.report import (
    breaking_point,
    ordering_fraction,
    render_sweep,
    series_values,
)

from benchkit import save_and_print

# The density sweep is shared by Figures 3 and 4; run it once per
# session and let both bench files consume it.
_SWEEP_CACHE: dict = {}


def shared_density_sweep(profile, engine=None):
    key = id(profile)
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = density_sweep(profile=profile, **(engine or {}))
    return _SWEEP_CACHE[key]


def test_fig3(benchmark, profile, engine, results_dir):
    sweep = benchmark.pedantic(
        shared_density_sweep, args=(profile, engine), rounds=1, iterations=1
    )
    save_and_print(results_dir, "fig3_density.txt", render_sweep(sweep, "3"))

    indexing = sweep.indexing_time()

    # Path methods survive the full density sweep.
    assert len(series_values(indexing, "ggsx")) == len(sweep.x_values)
    assert len(series_values(indexing, "grapes")) == len(sweep.x_values)

    # Mining methods break strictly inside the sweep.
    assert breaking_point(indexing, "gindex") is not None

    # Indexing cost increases with density for the methods that finish.
    for method in ("ggsx", "grapes", "ctindex"):
        values = series_values(indexing, method)
        if len(values) >= 2:
            assert values[-1] >= values[0]

    # Query-time ordering (where data exists on both sides).
    query = sweep.query_time()
    assert (
        ordering_fraction(query, ["ggsx", "grapes"], ["gindex", "tree+delta"]) >= 0.5
    )
