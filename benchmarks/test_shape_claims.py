"""§6 "Lessons learned": the paper's headline qualitative claims.

One dedicated bench builds all six methods on the sane-defaults dataset
and asserts the §6 conclusions that survive CI scale:

* query-time ordering (Grapes, GGSX) ≤ CT-Index ≤ (Tree+Δ, gIndex)
  on the majority of workloads ("Sancta Simplicitas");
* index-size ordering: fixed-width encodings (CT-Index) smallest,
  exhaustive path tries (Grapes) largest — "techniques using exhaustive
  enumeration and no encoding of features have by far the largest
  indexes";
* Grapes' location information makes its index strictly larger than
  GGSX's on the same data, and its candidate sets no larger.
"""

from repro.core.runner import evaluate_method
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries

from benchkit import save_and_print


def _evaluate_all(profile):
    config = GraphGenConfig(
        num_graphs=profile.default_num_graphs,
        mean_nodes=profile.default_nodes,
        mean_density=profile.default_density,
        num_labels=profile.default_labels,
    )
    dataset = generate_dataset(config, seed=0)
    workloads = {
        size: generate_queries(dataset, profile.queries_per_size, size, seed=size)
        for size in profile.query_sizes
    }
    cells = {}
    for method in profile.method_names():
        cells[method] = evaluate_method(
            method,
            dataset,
            workloads,
            method_config=profile.method_configs.get(method),
            build_budget_seconds=profile.build_budget_seconds,
            query_budget_seconds=profile.query_budget_seconds,
        )
    return cells


def test_section6_claims(benchmark, profile, results_dir):
    cells = benchmark.pedantic(_evaluate_all, args=(profile,), rounds=1, iterations=1)

    lines = ["§6 shape checks on the sane-defaults dataset", ""]
    for method, cell in cells.items():
        lines.append(
            f"{method:11s} build={cell.build_status:8s} "
            f"t_idx={cell.build_seconds if cell.build_seconds is not None else float('nan'):8.3f}s "
            f"size={(cell.index_bytes or 0) / 1e6:8.3f}MB "
            f"t_q={cell.query_seconds() if cell.query_seconds() is not None else float('nan'):9.5f}s "
            f"fp={cell.fp_ratio() if cell.fp_ratio() is not None else float('nan'):.3f}"
        )
    save_and_print(results_dir, "section6_shapes.txt", "\n".join(lines) + "\n")

    query_time = {
        m: cells[m].query_seconds() for m in cells if cells[m].query_seconds() is not None
    }
    index_size = {
        m: cells[m].index_bytes for m in cells if cells[m].index_bytes is not None
    }

    # Query time: the simple path methods lead the mining methods.
    path_best = min(query_time.get(m, float("inf")) for m in ("grapes", "ggsx"))
    for mining_method in ("gindex", "tree+delta"):
        if mining_method in query_time:
            assert path_best <= query_time[mining_method] * 1.5, (
                f"path methods should lead {mining_method}"
            )

    # Index size: CT-Index's fingerprints are the smallest index;
    # Grapes' location-bearing trie is the largest.
    real_methods = [m for m in index_size if m != "naive"]
    assert min(real_methods, key=index_size.__getitem__) == "ctindex"
    assert max(real_methods, key=index_size.__getitem__) == "grapes"

    # Grapes stores strictly more than GGSX (locations), same features.
    assert index_size["grapes"] > index_size["ggsx"]
