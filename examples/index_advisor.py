#!/usr/bin/env python
"""An index advisor built from the paper's §6 decision guidance.

"Choosing the right index method for user needs" (§6) reads as a
decision procedure; this example turns it into code.  Given a dataset
and an optimization criterion — index size, indexing time, or query
time — the advisor measures every method at a small calibration scale
and recommends one, annotated with the paper's reasoning.

Run:  python examples/index_advisor.py
"""

from dataclasses import dataclass

from repro import GraphGenConfig, generate_dataset, generate_queries
from repro.core.presets import CI_PROFILE
from repro.core.runner import STATUS_OK, evaluate_method

#: §6's qualitative expectations, quoted with each recommendation.
PAPER_NOTES = {
    "index size": (
        "§6: 'If index size is of importance, algorithms utilizing "
        "fixed-width encodings (CT-Index, gCode) should be chosen first.'"
    ),
    "indexing time": (
        "§6: 'For the lowest indexing time, one should first look at "
        "techniques exhaustively enumerating their features ... with "
        "approaches utilizing simpler features (paths; i.e., Grapes, "
        "GGSX) being considerably faster.'"
    ),
    "query time": (
        "§6: 'For query processing time, again the approaches using "
        "exhaustive enumeration (Grapes, GGSX, CT-Index) are the clear "
        "winners.'"
    ),
}


@dataclass
class Recommendation:
    criterion: str
    method: str
    measurement: float
    note: str


def advise(dataset, queries, criterion: str) -> Recommendation:
    """Measure all methods on the dataset and pick the best by *criterion*."""
    workloads = {queries[0].size: queries}
    cells = {}
    for method, config in CI_PROFILE.method_configs.items():
        cells[method] = evaluate_method(
            method,
            dataset,
            workloads,
            method_config=config,
            build_budget_seconds=20.0,
            query_budget_seconds=20.0,
        )
    usable = {
        name: cell for name, cell in cells.items() if cell.build_status == STATUS_OK
    }
    if criterion == "index size":
        best = min(usable, key=lambda m: usable[m].index_bytes)
        value = usable[best].index_bytes / 1024.0
    elif criterion == "indexing time":
        best = min(usable, key=lambda m: usable[m].build_seconds)
        value = usable[best].build_seconds
    elif criterion == "query time":
        with_queries = {
            m: cell.query_seconds()
            for m, cell in usable.items()
            if cell.query_seconds() is not None
        }
        best = min(with_queries, key=with_queries.__getitem__)
        value = with_queries[best]
    else:
        raise ValueError(f"unknown criterion {criterion!r}")
    return Recommendation(criterion, best, value, PAPER_NOTES[criterion])


def main() -> None:
    config = GraphGenConfig(
        num_graphs=50, mean_nodes=22, mean_density=0.12, num_labels=6
    )
    dataset = generate_dataset(config, seed=5)
    queries = generate_queries(dataset, 6, 8, seed=6)
    print(f"calibration dataset: {dataset}\n")

    units = {"index size": "KiB", "indexing time": "s", "query time": "s"}
    for criterion in ("index size", "indexing time", "query time"):
        recommendation = advise(dataset, queries, criterion)
        print(f"optimize for {criterion}:")
        print(
            f"  -> {recommendation.method}  "
            f"({recommendation.measurement:.4g} {units[criterion]})"
        )
        print(f"  {recommendation.note}\n")


if __name__ == "__main__":
    main()
