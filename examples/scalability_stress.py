#!/usr/bin/env python
"""Stress-test: find each method's breaking point, like §5.2 does.

The paper's scalability methodology in miniature: fix the sane
defaults, grow one parameter (here: nodes per graph), give every method
a fixed budget per experiment, and report the largest configuration
each method survives — the "breaking point".  The output is the
reproduction of §6's scalability-limits discussion.

Run:  python examples/scalability_stress.py          (a few minutes)
      REPRO_SCALE=paper python examples/scalability_stress.py  (days!)
"""

from dataclasses import replace

from repro.core.experiments import nodes_sweep
from repro.core.presets import active_profile
from repro.core.report import breaking_point, render_sweep


def main() -> None:
    profile = active_profile()
    if profile.name == "ci":
        # Push a little further than the CI default so breaking points
        # are visible for more methods.
        profile = replace(
            profile,
            nodes_values=(10, 16, 24, 36, 52),
            default_num_graphs=30,
            queries_per_size=4,
            build_budget_seconds=12.0,
            query_budget_seconds=12.0,
        )
    print(f"profile: {profile.name}; sweeping nodes {profile.nodes_values}")
    print("(each method gets "
          f"{profile.build_budget_seconds:.0f}s to build, "
          f"{profile.query_budget_seconds:.0f}s per query workload)\n")

    sweep = nodes_sweep(profile, progress=lambda msg: print(f"  running {msg}"))

    print()
    print(render_sweep(sweep, "2"))

    print("breaking points (first x where the method produced no data):")
    indexing = sweep.indexing_time()
    for method in sweep.methods:
        broke_at = breaking_point(indexing, method)
        if broke_at is None:
            print(f"  {method:11s} survived the whole sweep")
        else:
            print(f"  {method:11s} broke at {broke_at} nodes")

    print(
        "\nExpected shape (paper §5.2.1): the frequent-mining methods"
        " (gIndex, Tree+Δ) break first; the exhaustive path methods"
        " (Grapes, GGSX) go furthest."
    )


if __name__ == "__main__":
    main()
