#!/usr/bin/env python
"""Chemical-compound screening: substructure search over an AIDS-like set.

The motivating workload of the paper's introduction: a database of
small molecules (the AIDS antiviral screen), queried for functional
groups — "find every compound containing this substructure".  We
synthesize an AIDS-like dataset (Table 1 statistics, skewed element
alphabet), build the two best query-time methods (Grapes, GGSX) plus
CT-Index, and screen for hand-built functional-group-style patterns as
well as random-walk queries.

Run:  python examples/chemical_screening.py
"""

from repro import (
    CTIndex,
    Graph,
    GraphGrepSXIndex,
    GrapesIndex,
    generate_queries,
    make_real_dataset,
)
from repro.core.metrics import summarize_results


def chain_pattern(dataset, length: int) -> Graph:
    """A chain of the dataset's most common label — the analog of a
    carbon-backbone query."""
    histogram: dict = {}
    for graph in dataset:
        for label, count in graph.label_histogram().items():
            histogram[label] = histogram.get(label, 0) + count
    backbone = max(histogram, key=histogram.__getitem__)
    return Graph([backbone] * length, [(i, i + 1) for i in range(length - 1)])


def main() -> None:
    # An AIDS-like screen: 300 molecules at full per-graph scale
    # (45-node molecules, 62-label skewed alphabet, ~8% disconnected).
    dataset = make_real_dataset("AIDS", num_graphs=300, seed=11)
    print(f"screening database: {dataset}")

    indexes = [
        GrapesIndex(max_path_edges=4, workers=2),
        GraphGrepSXIndex(max_path_edges=4),
        CTIndex(fingerprint_bits=4096, feature_edges=4),
    ]
    for index in indexes:
        report = index.build(dataset)
        print(
            f"  {index.name:8s} indexed in {report.seconds:6.2f}s "
            f"({report.size_bytes / 1024:9.1f} KiB)"
        )

    # --- screen 1: backbone chains of increasing length --------------
    print("\nbackbone-chain screens:")
    for length in (3, 5, 7):
        pattern = chain_pattern(dataset, length)
        hits = {index.name: index.query(pattern) for index in indexes}
        reference = next(iter(hits.values())).answers
        assert all(result.answers == reference for result in hits.values())
        print(f"  chain x{length}: {len(reference):4d} compounds match")
        for name, result in hits.items():
            print(
                f"    {name:8s} candidates={len(result.candidates):4d} "
                f"fp={result.false_positive_ratio:.2f} "
                f"t={result.total_seconds * 1e3:7.2f}ms"
            )

    # --- screen 2: realistic substructure workload --------------------
    print("\nrandom substructure workload (20 queries x 8 edges):")
    queries = generate_queries(dataset, 20, 8, seed=2)
    for index in indexes:
        stats = summarize_results([index.query(q) for q in queries])
        print(
            f"  {index.name:8s} avg time {stats.avg_query_seconds * 1e3:7.2f}ms  "
            f"avg candidates {stats.avg_candidates:6.1f}  "
            f"avg answers {stats.avg_answers:6.1f}  "
            f"FP ratio {stats.false_positive_ratio:.3f}"
        )

    print(
        "\nNote the paper's §5.1 shape: Grapes/GGSX give the tightest"
        " candidate sets and fastest queries; CT-Index trades filtering"
        " power for a tiny, fixed-size index."
    )


if __name__ == "__main__":
    main()
