#!/usr/bin/env python
"""Protein-interaction motif search: the paper's stress case.

PPI-style datasets — a handful of very large, denser graphs — are where
indexed methods start breaking (paper §5.1: only Grapes and GGSX index
every real dataset within the limit; frequent-mining methods fail).
This example reproduces that experience end to end:

* build a PPI-like dataset (few large graphs, medium degree);
* try all six methods under a per-method time budget and report who
  finishes, mirroring the paper's 8-hour-limit methodology;
* run motif queries through the survivors.

Run:  python examples/protein_interaction.py
"""

from repro import (
    Budget,
    BudgetExceeded,
    generate_queries,
    make_real_dataset,
)
from repro.core.presets import CI_PROFILE
from repro.core.runner import make_method


BUILD_BUDGET_SECONDS = 15.0


def main() -> None:
    # Few large-ish graphs (scaled PPI; scale up if you have minutes).
    dataset = make_real_dataset("PPI", scale=0.02, seed=3)
    print(f"motif database: {dataset}")
    for graph in dataset:
        print(
            f"  network {graph.graph_id}: {graph.order} proteins, "
            f"{graph.size} interactions, avg degree {graph.average_degree():.1f}"
        )

    survivors = []
    print(f"\nindex construction under a {BUILD_BUDGET_SECONDS:.0f}s budget:")
    for method, config in CI_PROFILE.method_configs.items():
        index = make_method(method, config)
        budget = Budget(BUILD_BUDGET_SECONDS, phase=f"{method} build")
        try:
            report = index.build(dataset, budget=budget)
        except BudgetExceeded:
            print(f"  {method:11s} TIMED OUT (the paper's 'failed to index')")
            continue
        except (MemoryError, RuntimeError, ValueError) as exc:
            print(f"  {method:11s} FAILED ({type(exc).__name__})")
            continue
        survivors.append(index)
        print(
            f"  {method:11s} ok in {report.seconds:6.2f}s, "
            f"{report.size_bytes / 1024:9.1f} KiB"
        )

    print("\nmotif queries (12 edges) through the surviving indexes:")
    queries = generate_queries(dataset, 5, 12, seed=4)
    reference = None
    for index in survivors:
        results = [index.query(q) for q in queries]
        answers = [r.answers for r in results]
        if reference is None:
            reference = answers
        assert answers == reference, "all methods must agree on answers"
        total_ms = sum(r.total_seconds for r in results) * 1e3
        print(
            f"  {index.name:11s} total {total_ms:8.2f}ms over {len(queries)} queries"
        )

    print(
        "\nAs in the paper, exhaustive-enumeration methods survive the"
        " large-graph regime that defeats frequent mining."
    )


if __name__ == "__main__":
    main()
