#!/usr/bin/env python
"""Quickstart: build an index, run a subgraph query, read the metrics.

This walks the full filter-and-verify pipeline of the paper on a small
synthetic dataset: generate graphs (GraphGen-style), build two indexes
with opposite design philosophies (Grapes: exhaustive paths + location
info; CT-Index: hashed fingerprints), pose random-walk queries, and
compare candidate sets, answers, timings and false positive ratios.

Run:  python examples/quickstart.py
"""

from repro import (
    CTIndex,
    GraphGenConfig,
    GrapesIndex,
    NaiveIndex,
    generate_dataset,
    generate_queries,
)


def main() -> None:
    # 1. A dataset of 60 connected, labeled graphs (~24 nodes each).
    config = GraphGenConfig(
        num_graphs=60, mean_nodes=24, mean_density=0.12, num_labels=6
    )
    dataset = generate_dataset(config, seed=7)
    print(f"dataset: {dataset}")
    print(f"  total vertices: {dataset.total_vertices()}")
    print(f"  total edges:    {dataset.total_edges()}")

    # 2. Build three indexes over it.
    indexes = [
        GrapesIndex(max_path_edges=4, workers=2),
        CTIndex(fingerprint_bits=1024, feature_edges=3),
        NaiveIndex(),  # the no-index baseline
    ]
    for index in indexes:
        report = index.build(dataset)
        print(
            f"built {index.name:8s} in {report.seconds:6.2f}s, "
            f"index size {report.size_bytes / 1024:8.1f} KiB"
        )

    # 3. Random-walk queries of 8 edges (guaranteed to have answers).
    queries = generate_queries(dataset, num_queries=5, num_edges=8, seed=1)

    # 4. Query each index and compare.
    print("\nper-query results (candidates -> answers, time, FP ratio):")
    for i, query in enumerate(queries):
        print(f"  query {i} ({query.order} vertices, {query.size} edges):")
        for index in indexes:
            result = index.query(query)
            print(
                f"    {index.name:8s} |C|={len(result.candidates):3d} "
                f"|A|={len(result.answers):3d}  "
                f"t={result.total_seconds * 1e3:7.2f}ms  "
                f"fp={result.false_positive_ratio:.2f}"
            )

    # 5. The filter-and-verify contract, visibly.
    index = indexes[0]
    result = index.query(queries[0])
    assert result.answers <= result.candidates
    print("\nanswers are always a subset of candidates — filtering is lossless.")


if __name__ == "__main__":
    main()
