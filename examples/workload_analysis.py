#!/usr/bin/env python
"""Workload analysis: understand *why* a method wins on your data.

The paper reports aggregate numbers; in practice you want to know how
your own workload behaves — how selective the queries are, where the
candidate sets bloat, which queries each index filters perfectly.
This example profiles two contrasting workloads (small vs large
queries, per §5.2.2's query-size analysis) over one dataset and three
indexes, using :mod:`repro.core.workloads`.

Run:  python examples/workload_analysis.py
"""

from repro import GraphGenConfig, generate_dataset, generate_queries
from repro.core.workloads import (
    characterize_queries,
    filtering_profile,
    selectivity_profile,
)
from repro.indexes import CTIndex, GraphGrepSXIndex, GrapesIndex


def main() -> None:
    config = GraphGenConfig(
        num_graphs=60, mean_nodes=24, mean_density=0.12, num_labels=5
    )
    dataset = generate_dataset(config, seed=13)
    print(f"dataset: {dataset}\n")

    indexes = [
        GrapesIndex(max_path_edges=3, workers=2),
        GraphGrepSXIndex(max_path_edges=3),
        CTIndex(fingerprint_bits=1024, feature_edges=3),
    ]
    for index in indexes:
        index.build(dataset)

    for size in (4, 16):
        queries = generate_queries(dataset, 12, size, seed=size)
        shape = characterize_queries(queries)
        selectivity = selectivity_profile(dataset, queries)
        print(f"workload: {shape.num_queries} queries x {size} edges")
        print(
            f"  structure:   avg {shape.avg_vertices:.1f} vertices, "
            f"density {shape.avg_density:.3f}, "
            f"{shape.num_distinct_labels} labels used"
        )
        print(
            f"  selectivity: avg {selectivity.avg_selectivity:.1%} of the dataset, "
            f"median {selectivity.percentile(0.5)} answers, "
            f"p90 {selectivity.percentile(0.9)}, "
            f"{selectivity.num_empty} empty"
        )
        for index in indexes:
            profile = filtering_profile(index, queries)
            print(
                f"  {index.name:8s} avg candidates {profile.avg_candidates:6.1f}  "
                f"fp {profile.false_positive_ratio:.3f}  "
                f"perfect on {profile.perfect_queries}/{profile.num_queries} queries"
            )
        print()

    print(
        "Expected shape (§5.2.2): larger queries are more selective, and\n"
        "the paths-based filters stay near-perfect on them, while hashed\n"
        "fingerprints admit more false positives."
    )


if __name__ == "__main__":
    main()
