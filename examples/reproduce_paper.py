#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Produces Table 1 and Figures 1–6 at the active scale (CI by default,
``REPRO_SCALE=paper`` for the full configuration) and writes each as a
text table under ``results/``.  This is the example to start from when
extending the study with new methods or parameters.

Run:  python examples/reproduce_paper.py [output_dir]
"""

import sys
import time
from pathlib import Path

from repro.core.experiments import (
    density_sweep,
    graph_count_sweep,
    labels_sweep,
    nodes_sweep,
    real_dataset_experiment,
)
from repro.core.presets import active_profile
from repro.core.report import render_series_table, render_sweep, render_table1


def main() -> None:
    output_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    output_dir.mkdir(parents=True, exist_ok=True)
    profile = active_profile()
    print(f"reproducing all figures at scale '{profile.name}' into {output_dir}/")

    def emit(name: str, text: str) -> None:
        (output_dir / name).write_text(text, encoding="utf-8")
        print(f"  wrote {output_dir / name}")

    progress = lambda msg: print(f"    {msg}", end="\r")

    started = time.time()

    real = real_dataset_experiment(profile, progress=progress)
    emit("table1.txt", render_table1(real.dataset_stats))
    emit("fig1_real_datasets.txt", render_sweep(real, "1"))

    nodes = nodes_sweep(profile, progress=progress)
    emit("fig2_nodes.txt", render_sweep(nodes, "2"))

    density = density_sweep(profile, progress=progress)
    emit("fig3_density.txt", render_sweep(density, "3"))
    fig4_panels = [
        render_series_table(
            f"Figure 4 (query size {size}): query time (s) vs density",
            density.query_time_for_size(size),
            "density",
        )
        for size in density.query_sizes
    ]
    emit("fig4_query_sizes.txt", "\n".join(fig4_panels))

    labels = labels_sweep(profile, progress=progress)
    emit("fig5_labels.txt", render_sweep(labels, "5"))

    counts = graph_count_sweep(profile, progress=progress)
    emit("fig6_graph_count.txt", render_sweep(counts, "6"))

    print(f"\ndone in {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
