"""Unit tests for canonical labels: order, paths, cycles, trees."""

import pytest

from repro.canonical.cycles import cycle_canonical
from repro.canonical.order import label_key
from repro.canonical.paths import path_canonical
from repro.canonical.trees import tree_canonical, tree_canonical_rooted, tree_centers
from repro.graphs.graph import Graph

from testkit import path_graph, star_graph


class TestLabelKey:
    def test_orders_strings(self):
        assert label_key("A") < label_key("B")

    def test_orders_ints(self):
        assert label_key(2) < label_key(10)

    def test_mixed_types_do_not_raise(self):
        assert sorted([3, "a", 1, "b"], key=label_key)

    def test_bool_distinct_from_int(self):
        assert label_key(True) != label_key(1)

    def test_deterministic(self):
        assert label_key(("t", 1)) == label_key(("t", 1))


class TestPathCanonical:
    def test_direction_invariance(self):
        assert path_canonical("CON") == path_canonical("NOC")

    def test_picks_smaller_reading(self):
        assert path_canonical(["N", "O", "C"]) == ("C", "O", "N")

    def test_palindrome(self):
        assert path_canonical("ABA") == ("A", "B", "A")

    def test_single_label(self):
        assert path_canonical(["X"]) == ("X",)

    def test_distinct_paths_distinct_labels(self):
        assert path_canonical("AAB") != path_canonical("ABA")

    def test_int_labels(self):
        assert path_canonical([3, 1, 2]) == (2, 1, 3)


class TestCycleCanonical:
    def test_rotation_invariance(self):
        assert cycle_canonical("ABC") == cycle_canonical("BCA") == cycle_canonical("CAB")

    def test_reflection_invariance(self):
        assert cycle_canonical("ABC") == cycle_canonical("CBA")

    def test_canonical_is_minimal_rotation(self):
        assert cycle_canonical("CAB") == ("A", "B", "C")

    def test_distinct_necklaces_differ(self):
        # AABB vs ABAB are different cyclic sequences.
        assert cycle_canonical("AABB") != cycle_canonical("ABAB")

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            cycle_canonical("AB")

    def test_uniform_cycle(self):
        assert cycle_canonical("AAAA") == ("A", "A", "A", "A")


class TestTreeCenters:
    def test_path_even_has_two_centers(self):
        adjacency = {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
        assert tree_centers(adjacency) == [1, 2]

    def test_path_odd_has_one_center(self):
        adjacency = {0: {1}, 1: {0, 2}, 2: {1}}
        assert tree_centers(adjacency) == [1]

    def test_star_center(self):
        adjacency = {0: {1, 2, 3}, 1: {0}, 2: {0}, 3: {0}}
        assert tree_centers(adjacency) == [0]

    def test_single_edge(self):
        assert tree_centers({0: {1}, 1: {0}}) == [0, 1]


class TestTreeCanonical:
    def test_invariant_under_vertex_renumbering(self):
        host = star_graph("C", "HHO")
        edges = list(host.edges())
        permuted = host.relabeled([3, 0, 1, 2])
        assert tree_canonical(host, edges) == tree_canonical(
            permuted, list(permuted.edges())
        )

    def test_distinguishes_star_from_path(self):
        star = star_graph("A", "AAA")
        path = path_graph("AAAA")
        assert tree_canonical(star, list(star.edges())) != tree_canonical(
            path, list(path.edges())
        )

    def test_distinguishes_labelings(self):
        a = path_graph("AAB")
        b = path_graph("ABA")
        assert tree_canonical(a, list(a.edges())) != tree_canonical(
            b, list(b.edges())
        )

    def test_same_tree_from_either_direction(self):
        path = path_graph("ABC")
        assert tree_canonical(path, [(0, 1), (1, 2)]) == tree_canonical(
            path.relabeled([2, 1, 0]), [(2, 1), (1, 0)]
        )

    def test_subset_of_host_edges(self):
        host = Graph("ABCD", [(0, 1), (1, 2), (2, 3), (0, 3)])
        canonical = tree_canonical(host, [(0, 1), (1, 2)])
        path = path_graph("ABC")
        assert canonical == tree_canonical(path, [(0, 1), (1, 2)])

    def test_cyclic_edge_set_rejected(self):
        host = Graph("AAA", [(0, 1), (1, 2), (0, 2)])
        with pytest.raises(ValueError):
            tree_canonical(host, list(host.edges()))

    def test_disconnected_edge_set_rejected(self):
        host = Graph("AAAA", [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            tree_canonical(host, [(0, 1), (2, 3)])

    def test_empty_edge_set_rejected(self):
        with pytest.raises(ValueError):
            tree_canonical(Graph(["A"]), [])

    def test_rooted_single_vertex(self):
        host = Graph(["Q"])
        assert tree_canonical_rooted(host, [], root=0) == ("Q", ())

    def test_rooted_differs_by_root(self):
        # Rooting A-B at A vs at B gives different rooted encodings.
        host = path_graph("AB")
        at_a = tree_canonical_rooted(host, [(0, 1)], root=0)
        at_b = tree_canonical_rooted(host, [(0, 1)], root=1)
        assert at_a != at_b

    def test_rooted_invalid_root_rejected(self):
        with pytest.raises(ValueError):
            tree_canonical_rooted(path_graph("AB"), [(0, 1)], root=7)
