"""Run the doctests embedded in public docstrings.

The examples in module/class docstrings are part of the documented
API; this keeps them honest.
"""

import doctest

import pytest

import repro
import repro.canonical.cycles
import repro.core.parallel
import repro.canonical.paths
import repro.core.validation
import repro.graphs.graph
import repro.utils.budget
import repro.utils.timing

MODULES = [
    repro,
    repro.graphs.graph,
    repro.canonical.paths,
    repro.canonical.cycles,
    repro.core.validation,
    repro.core.parallel,
    repro.utils.timing,
    repro.utils.budget,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
