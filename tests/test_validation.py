"""Tests for the contract-validation harness itself."""

import pytest

from repro.core.validation import validate_index
from repro.graphs.graph import Graph
from repro.indexes import GraphGrepSXIndex, NaiveIndex
from repro.indexes.base import GraphIndex


class TestValidateCorrectIndexes:
    def test_ggsx_passes(self):
        report = validate_index(
            lambda: GraphGrepSXIndex(max_path_edges=2), trials=2, seed=3
        )
        assert report.ok
        assert report.queries_checked > 0
        assert "OK" in report.summary()

    def test_naive_passes(self):
        assert validate_index(NaiveIndex, trials=2, seed=4).ok

    def test_deterministic_given_seed(self):
        a = validate_index(NaiveIndex, trials=2, seed=9)
        b = validate_index(NaiveIndex, trials=2, seed=9)
        assert a.queries_checked == b.queries_checked


class _LossyIndex(GraphIndex):
    """Deliberately broken: drops a candidate it should keep."""

    name = "lossy"

    def _build(self, dataset, budget):
        return {}

    def _filter(self, query, budget):
        ids = self._dataset.all_ids()
        if len(ids) > 1 and query.size == 0 and query.order == 1:
            ids.discard(0)  # false negative for single-vertex queries
        return ids

    def _size_payload(self):
        return ()


class _OvereagerIndex(GraphIndex):
    """Deliberately broken: claims answers without verification."""

    name = "overeager"

    def _build(self, dataset, budget):
        return {}

    def _filter(self, query, budget):
        return self._dataset.all_ids()

    def verify(self, query, candidates, budget=None):
        return set(candidates)  # skips the isomorphism test entirely

    def _size_payload(self):
        return ()


class TestValidateCatchesBrokenIndexes:
    def test_false_negatives_detected(self):
        report = validate_index(_LossyIndex, trials=2, seed=5)
        assert not report.ok
        assert any(v.kind == "false_negative" for v in report.violations)

    def test_wrong_answers_detected(self):
        report = validate_index(_OvereagerIndex, trials=1, seed=6)
        assert not report.ok
        assert any(v.kind == "wrong_answers" for v in report.violations)

    def test_fail_fast_stops_early(self):
        report = validate_index(_OvereagerIndex, trials=3, seed=6, fail_fast=True)
        assert len(report.violations) == 1

    def test_violations_carry_context(self):
        report = validate_index(_OvereagerIndex, trials=1, seed=6)
        violation = report.violations[0]
        assert violation.query_repr
        assert "expected" in violation.detail
        assert "VIOLATIONS" in report.summary()


class TestAllMethodsPassValidation:
    """The six real methods each clear the fuzzing harness."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: GraphGrepSXIndex(max_path_edges=3),
            NaiveIndex,
        ],
        ids=["ggsx-len3", "naive"],
    )
    def test_fast_methods_two_rounds(self, factory):
        assert validate_index(factory, trials=2, seed=11).ok

    def test_remaining_methods_one_round(self):
        from repro.indexes import (
            CTIndex,
            GCodeIndex,
            GIndex,
            GrapesIndex,
            TreeDeltaIndex,
        )

        factories = [
            lambda: GrapesIndex(max_path_edges=2, workers=2),
            lambda: CTIndex(fingerprint_bits=256, feature_edges=2),
            lambda: GCodeIndex(path_depth=1, counter_buckets=8),
            lambda: GIndex(max_fragment_edges=3, support_ratio=0.3),
            lambda: TreeDeltaIndex(max_feature_edges=3, support_ratio=0.3),
        ]
        for factory in factories:
            report = validate_index(factory, trials=1, queries_per_trial=4, seed=12)
            assert report.ok, report.violations
