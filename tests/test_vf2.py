"""Unit and randomized tests for VF2 subgraph monomorphism (Def. 3)."""

import pytest

from repro.graphs.graph import Graph
from repro.isomorphism.heuristics import connectivity_order, frequency_degree_order
from repro.isomorphism.vf2 import (
    SubgraphMatcher,
    count_embeddings,
    find_embedding,
    is_subgraph,
)
from repro.utils.budget import Budget, BudgetExceeded

from testkit import (
    cycle_graph,
    nx_is_monomorphic,
    path_graph,
    random_graph,
    star_graph,
    triangle,
)


class TestBasicMatching:
    def test_single_vertex_in_anything(self):
        assert is_subgraph(Graph(["A"]), path_graph("AB"))

    def test_label_mismatch_fails(self):
        assert not is_subgraph(Graph(["Z"]), path_graph("AB"))

    def test_edge_in_triangle(self):
        assert is_subgraph(path_graph("AA"), triangle("AAA"))

    def test_monomorphism_not_induced(self):
        """Def. 3: extra data edges are allowed — a 3-path maps into a
        triangle even though the triangle has a chord w.r.t. the path."""
        assert is_subgraph(path_graph("AAA"), triangle("AAA"))

    def test_triangle_not_in_path(self):
        assert not is_subgraph(triangle("AAA"), path_graph("AAA"))

    def test_query_larger_than_data_fails_fast(self):
        assert not is_subgraph(path_graph("AAAA"), path_graph("AA"))

    def test_identity(self):
        graph = cycle_graph("ABCA")
        assert is_subgraph(graph, graph)

    def test_empty_query_matches(self):
        assert is_subgraph(Graph([]), path_graph("AB"))

    def test_disconnected_query(self):
        query = Graph("AB")  # two isolated vertices
        assert is_subgraph(query, path_graph("AB"))
        assert not is_subgraph(query, Graph(["A"]))

    def test_injectivity_enforced(self):
        # Two A-vertices in the query need two distinct A's in the data.
        query = Graph("AA")
        assert not is_subgraph(query, Graph(["A"]))


class TestEmbeddings:
    def test_find_embedding_valid(self):
        query = path_graph("AB")
        data = Graph("BAB", [(0, 1), (1, 2)])
        embedding = find_embedding(query, data)
        assert embedding is not None
        for u, v in query.edges():
            assert data.has_edge(embedding[u], embedding[v])
        for v in query.vertices():
            assert query.label(v) == data.label(embedding[v])

    def test_find_embedding_none_when_absent(self):
        assert find_embedding(triangle(), path_graph("AAA")) is None

    def test_count_embeddings_triangle_in_triangle(self):
        # 3 rotations x 2 reflections.
        assert count_embeddings(triangle("AAA"), triangle("AAA")) == 6

    def test_count_embeddings_edge_in_star(self):
        star = star_graph("C", "HHH")
        assert count_embeddings(path_graph("CH"), star) == 3

    def test_count_with_limit(self):
        assert count_embeddings(triangle("AAA"), triangle("AAA"), limit=2) == 2

    def test_all_embeddings_distinct(self):
        query = path_graph("AA")
        data = cycle_graph("AAAA")
        seen = set()
        for embedding in SubgraphMatcher(query, data).iter_embeddings():
            key = tuple(sorted(embedding.items()))
            assert key not in seen
            seen.add(key)
        assert len(seen) == 8  # 4 edges x 2 directions


class TestAgainstNetworkx:
    def test_randomized_agreement(self, rng):
        positives = negatives = 0
        for _ in range(250):
            query = random_graph(rng, 1, 4)
            data = random_graph(rng, 1, 6)
            expected = nx_is_monomorphic(query, data)
            assert is_subgraph(query, data) == expected
            positives += expected
            negatives += not expected
        # The random mix must actually exercise both outcomes.
        assert positives > 20 and negatives > 20

    def test_randomized_agreement_with_ctindex_ordering(self, rng):
        for _ in range(120):
            query = random_graph(rng, 1, 4)
            data = random_graph(rng, 1, 6)
            got = is_subgraph(query, data, ordering=frequency_degree_order)
            assert got == nx_is_monomorphic(query, data)

    def test_queries_extracted_from_data_always_match(self, rng):
        for _ in range(60):
            data = random_graph(rng, 3, 7, connected=True)
            vertices = sorted(
                rng.sample(range(data.order), rng.randint(1, data.order))
            )
            query, _ = data.induced_subgraph(vertices)
            assert is_subgraph(query, data)


class TestOrderings:
    def test_connectivity_order_is_permutation(self, rng):
        for _ in range(30):
            graph = random_graph(rng, 1, 7)
            order = connectivity_order(graph)
            assert sorted(order) == list(graph.vertices())

    def test_connectivity_order_stays_connected(self, rng):
        for _ in range(30):
            graph = random_graph(rng, 2, 7, connected=True)
            order = connectivity_order(graph)
            for position in range(1, len(order)):
                prefix = set(order[:position])
                assert any(w in prefix for w in graph.neighbors(order[position]))

    def test_frequency_degree_order_is_permutation(self, rng):
        for _ in range(30):
            graph = random_graph(rng, 1, 7)
            order = frequency_degree_order(graph)
            assert sorted(order) == list(graph.vertices())

    def test_frequency_degree_prefers_rare_labels(self):
        data = Graph(["R"] + ["C"] * 5)
        query = Graph(["C", "R"], [(0, 1)])
        order = frequency_degree_order(query, data)
        assert order[0] == 1  # 'R' is rarer in the data graph

    def test_both_orderings_give_same_answers(self, rng):
        for _ in range(60):
            query = random_graph(rng, 1, 4)
            data = random_graph(rng, 1, 6)
            assert is_subgraph(query, data, ordering=connectivity_order) == \
                is_subgraph(query, data, ordering=frequency_degree_order)


class TestBudget:
    def test_expired_budget_aborts_search(self):
        # A pathological all-same-label instance with many branches.
        query = Graph(["X"] * 8, [(i, j) for i in range(8) for j in range(i + 1, 8)])
        data = Graph(["X"] * 14, [(i, j) for i in range(14) for j in range(i + 1, 14)])
        budget = Budget(0.0)
        import time

        time.sleep(0.002)
        with pytest.raises(BudgetExceeded):
            count_embeddings(query, data, budget=budget)

    def test_fresh_budget_allows_search(self):
        assert is_subgraph(path_graph("AA"), triangle("AAA"), budget=Budget(30.0))
