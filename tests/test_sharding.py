"""Grid sharding: selectors, shard specs, manifests, merge, resume.

The contracts under test are the ones fleet-style reproduction rests
on: selectors reject garbage loudly instead of silently selecting
nothing, shards partition the grid deterministically, manifests
round-trip through canonical JSON, merge refuses divergent overlaps by
naming the guilty cell, and a resumed run is byte-identical to a fresh
one.
"""

from dataclasses import replace

import pytest

from repro.core.experiments import graph_count_sweep
from repro.core.presets import CI_PROFILE
from repro.core.runner import MethodCell, SizeStats
from repro.core.metrics import WorkloadStats
from repro.core.scheduling import CostHistory, estimate_cost
from repro.core.serialization import canonical_json, sweep_digest
from repro.core.sharding import (
    CellSelector,
    ManifestError,
    MergeError,
    SelectorError,
    ShardSpec,
    SweepPlan,
    cell_digest,
    cell_seconds,
    cost_history,
    load_manifest,
    manifest_for,
    manifest_from_json,
    manifest_path_for,
    manifest_to_json,
    merge_manifests,
    parse_only,
    parse_shard,
    save_manifest,
)

#: Micro profile: 2 x values, 2 methods -> a 4-cell grid in well under
#: a second, sequentially.
TINY = replace(
    CI_PROFILE,
    graph_count_values=(6, 10),
    default_nodes=10,
    default_density=0.2,
    default_labels=3,
    query_sizes=(3,),
    queries_per_size=2,
    method_configs={"naive": {}, "ggsx": {"max_path_edges": 2}},
)


@pytest.fixture(scope="module")
def full_sweep():
    return graph_count_sweep(TINY, seed=0)


@pytest.fixture()
def full_manifest(full_sweep):
    return manifest_for(full_sweep, experiment="graphs", seed=0, profile="tiny")


# ----------------------------------------------------------------------
# --only selector parsing
# ----------------------------------------------------------------------


class TestSelectorParsing:
    def test_no_flags_is_no_selector(self):
        assert parse_only([]) is None
        assert parse_only(None) is None

    def test_clauses_and_multi_value_or(self):
        selector = parse_only(["method=ggsx,method=naive", "graphs=6"])
        assert selector.as_dict() == {
            "graphs": ["6"],
            "method": ["ggsx", "naive"],
        }

    def test_duplicate_values_collapse(self):
        selector = parse_only(["method=ggsx,method=ggsx"])
        assert selector.as_dict() == {"method": ["ggsx"]}

    def test_unknown_key_rejected_loudly(self):
        with pytest.raises(SelectorError, match="unknown selector key 'metod'"):
            parse_only(["metod=ggsx"])

    def test_malformed_clause_rejected(self):
        with pytest.raises(SelectorError, match="KEY=VALUE"):
            parse_only(["method"])
        with pytest.raises(SelectorError, match="KEY=VALUE"):
            parse_only(["=ggsx"])
        with pytest.raises(SelectorError, match="KEY=VALUE"):
            parse_only(["method="])

    def test_empty_selection_rejected(self):
        with pytest.raises(SelectorError, match="selects nothing"):
            parse_only([""])
        with pytest.raises(SelectorError, match="selects nothing"):
            parse_only([",", ", ,"])


class TestSelectorNarrow:
    X = [6, 10]
    METHODS = ["naive", "ggsx"]

    def narrow(self, *specs):
        return parse_only(list(specs)).narrow(
            self.X, self.METHODS, "number of graphs"
        )

    def test_method_filter_preserves_roster_order(self):
        xs, methods = self.narrow("method=ggsx,method=naive")
        assert (xs, methods) == ([6, 10], ["naive", "ggsx"])

    def test_axis_filter_by_name_and_generic_x(self):
        assert self.narrow("graphs=10") == ([10], ["naive", "ggsx"])
        assert self.narrow("x=6") == ([6], ["naive", "ggsx"])

    def test_axis_alias_and_generic_x_intersect(self):
        """'graphs=...' and 'x=...' are distinct keys, so they AND —
        agreeing clauses select the intersection, disjoint ones select
        no cells and fail loudly."""
        assert self.narrow("graphs=10,x=10") == ([10], ["naive", "ggsx"])
        with pytest.raises(SelectorError, match="selects no cells"):
            self.narrow("graphs=6,x=10")

    def test_unknown_method_rejected(self):
        with pytest.raises(SelectorError, match="not in this sweep's roster"):
            self.narrow("method=grapes")

    def test_unknown_x_value_rejected(self):
        with pytest.raises(SelectorError, match="matches no x value"):
            self.narrow("graphs=999")

    def test_wrong_axis_key_rejected(self):
        with pytest.raises(SelectorError, match="does not apply to this sweep"):
            self.narrow("density=0.2")


# ----------------------------------------------------------------------
# --shard specs
# ----------------------------------------------------------------------


class TestShardSpec:
    def test_parse_and_str(self):
        spec = parse_shard("2/8")
        assert (spec.index, spec.count) == (2, 8)
        assert str(spec) == "2/8"
        assert parse_shard(None) is None

    @pytest.mark.parametrize("bad", ["2-8", "2", "a/b", "", "/", "2/"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(SelectorError, match="expects I/N"):
            parse_shard(bad)

    @pytest.mark.parametrize("bad", ["0/4", "5/4", "-1/4", "1/0"])
    def test_out_of_range_specs_rejected(self, bad):
        with pytest.raises(SelectorError):
            parse_shard(bad)

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 7])
    def test_shards_partition_the_grid(self, count):
        keys = [(x, m) for x in range(5) for m in "ab"]
        shares = [ShardSpec(i, count).take(keys) for i in range(1, count + 1)]
        flat = [key for share in shares for key in share]
        # Disjoint and jointly covering, deterministically.
        assert sorted(flat) == sorted(keys)
        assert len(flat) == len(set(flat))
        assert shares == [ShardSpec(i, count).take(keys) for i in range(1, count + 1)]

    def test_more_shards_than_cells_gives_empty_shares(self):
        keys = [("x", "m")]
        assert ShardSpec(1, 4).take(keys) == keys
        assert ShardSpec(3, 4).take(keys) == []


# ----------------------------------------------------------------------
# derived cell quantities
# ----------------------------------------------------------------------


def _cell(build_seconds=1.5, avg_query_seconds=0.25) -> MethodCell:
    cell = MethodCell(method="ggsx", build_status="ok", build_seconds=build_seconds)
    cell.per_size[3] = SizeStats(
        status="ok",
        stats=WorkloadStats(
            num_queries=4,
            avg_query_seconds=avg_query_seconds,
            avg_filter_seconds=0.0,
            avg_verify_seconds=0.0,
            avg_candidates=2.0,
            avg_answers=1.0,
            false_positive_ratio=0.5,
        ),
    )
    return cell


class TestCellDerived:
    def test_cell_seconds_sums_build_and_query_totals(self):
        assert cell_seconds(_cell()) == pytest.approx(1.5 + 4 * 0.25)

    def test_cell_seconds_tolerates_failed_cells(self):
        failed = MethodCell(method="ggsx", build_status="timeout")
        assert cell_seconds(failed) == 0.0

    def test_cell_digest_ignores_timings(self):
        slow = _cell(build_seconds=9.0, avg_query_seconds=3.0)
        fast = _cell(build_seconds=0.1, avg_query_seconds=0.01)
        assert cell_digest(slow) == cell_digest(fast)

    def test_cell_digest_sees_measured_content(self):
        other = _cell()
        other.per_size[3] = SizeStats(
            status="ok",
            stats=replace(other.per_size[3].stats, avg_candidates=99.0),
        )
        assert cell_digest(other) != cell_digest(_cell())


# ----------------------------------------------------------------------
# cost-model feedback
# ----------------------------------------------------------------------


class TestCostHistory:
    def test_exact_key_returns_measured_seconds(self):
        history = CostHistory([(("x1", "ggsx"), "ggsx", 12.0, 100.0)])
        assert history.calibrate(("x1", "ggsx"), "ggsx", 100.0) == pytest.approx(12.0)

    def test_method_rate_generalizes_to_new_cells(self):
        history = CostHistory(
            [
                (("x1", "ggsx"), "ggsx", 10.0, 100.0),
                (("x2", "ggsx"), "ggsx", 30.0, 100.0),
            ]
        )
        # mean rate 0.2 s/unit, applied to an unseen cell of the method
        assert history.calibrate(("x9", "ggsx"), "ggsx", 50.0) == pytest.approx(10.0)

    def test_global_rate_covers_unseen_methods(self):
        history = CostHistory([(("x1", "ggsx"), "ggsx", 10.0, 100.0)])
        assert history.calibrate(("x1", "gcode"), "gcode", 100.0) == pytest.approx(10.0)

    def test_empty_history_returns_static_units(self):
        assert CostHistory().calibrate(("x", "m"), "m", 42.0) == 42.0
        assert len(CostHistory()) == 0

    def test_zero_unit_records_do_not_poison_rates(self):
        history = CostHistory([(("x1", "ggsx"), "ggsx", 10.0, 0.0)])
        assert history.calibrate(("x2", "ggsx"), "ggsx", 7.0) == 7.0

    def test_estimate_cost_uses_history(self, full_sweep, full_manifest):
        from repro.core.runner import CellTask
        from repro.generators.graphgen import GraphGenConfig, generate_dataset

        history = cost_history(full_manifest)
        assert len(history) == len(full_sweep.cells)
        key = next(iter(full_sweep.cells))
        dataset = generate_dataset(
            GraphGenConfig(
                num_graphs=key[0], mean_nodes=10, mean_density=0.2, num_labels=3
            ),
            seed=0,
        )
        task = CellTask(key=key, method=key[1], dataset=dataset, workloads={})
        static = estimate_cost(task)
        calibrated = estimate_cost(task, history)
        entry = next(e for e in full_manifest.cells if e.key == key)
        rate = history.rate_for(key, key[1])
        assert rate is not None
        # The exact-key estimator prices by the measured rate, not the
        # static unit count.
        assert calibrated == pytest.approx(static * rate)
        assert history.calibrate(key, key[1], entry.cost_units) == pytest.approx(
            entry.seconds
        )

    def test_sweeps_record_static_cost_units(self, full_sweep):
        assert set(full_sweep.cost_units) == set(full_sweep.cells)
        assert all(units > 0 for units in full_sweep.cost_units.values())


# ----------------------------------------------------------------------
# manifests
# ----------------------------------------------------------------------


class TestManifest:
    def test_round_trip_is_canonical(self, full_manifest):
        text = manifest_to_json(full_manifest)
        again = manifest_to_json(manifest_from_json(text))
        assert text == again

    def test_manifest_records_digests_and_seconds(self, full_sweep, full_manifest):
        assert len(full_manifest.cells) == len(full_sweep.cells)
        for entry in full_manifest.cells:
            assert entry.digest == cell_digest(full_sweep.cells[entry.key])
            assert entry.seconds >= 0.0
            assert entry.cost_units > 0.0

    def test_wrong_schema_rejected(self):
        with pytest.raises(ManifestError, match="not a repro-shard-manifest"):
            manifest_from_json("{}")
        with pytest.raises(ManifestError, match="not valid JSON"):
            manifest_from_json("nope")

    def test_truncated_document_rejected(self):
        """Right schema marker, missing fields: a ManifestError, not a
        bare KeyError traceback."""
        with pytest.raises(ManifestError, match="malformed"):
            manifest_from_json('{"schema": "repro-shard-manifest-v1"}')

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="not found"):
            load_manifest(tmp_path / "absent.manifest.json")

    def test_manifest_path_sits_beside_json(self):
        assert (
            manifest_path_for("out/sweep-graphs.json").name
            == "sweep-graphs.manifest.json"
        )

    def test_save_load_round_trip(self, full_manifest, tmp_path):
        path = tmp_path / "m.manifest.json"
        save_manifest(full_manifest, path)
        assert manifest_to_json(load_manifest(path)) == manifest_to_json(
            full_manifest
        )


# ----------------------------------------------------------------------
# sharded execution + merge
# ----------------------------------------------------------------------


def _shard_manifests(count: int) -> list:
    manifests = []
    for index in range(1, count + 1):
        plan = SweepPlan(shard=ShardSpec(index, count), experiment="graphs", seed=0)
        sweep = graph_count_sweep(TINY, seed=0, plan=plan)
        manifests.append(
            manifest_for(
                sweep,
                experiment="graphs",
                seed=0,
                profile="tiny",
                shard=plan.shard,
            )
        )
    return manifests


class TestMerge:
    @pytest.mark.parametrize("count", [1, 2, 4])
    def test_merge_matches_unsharded_run(self, count, full_sweep):
        merged, merged_manifest = merge_manifests(_shard_manifests(count))
        assert canonical_json(merged) == canonical_json(full_sweep)
        assert sweep_digest(merged) == sweep_digest(full_sweep)
        assert merged_manifest.shard is None

    def test_overlapping_consistent_shards_merge(self, full_sweep):
        shards = _shard_manifests(2)
        merged, _ = merge_manifests(shards + [shards[0]])
        assert sweep_digest(merged) == sweep_digest(full_sweep)

    def test_divergent_overlap_names_the_cell(self, full_manifest):
        import copy

        tampered = copy.deepcopy(full_manifest)
        entry = tampered.cells[1]
        entry.cell.per_size[3] = SizeStats(
            status="ok",
            stats=replace(entry.cell.per_size[3].stats, avg_candidates=123.0),
        )
        tampered.cells[1] = replace(entry, digest=cell_digest(entry.cell))
        with pytest.raises(MergeError, match="diverge on cell") as excinfo:
            merge_manifests([full_manifest, tampered])
        message = str(excinfo.value)
        assert f"number of graphs={entry.x}" in message
        assert f"method={entry.method}" in message

    def test_corrupt_digest_rejected(self, full_manifest):
        import copy

        corrupt = copy.deepcopy(full_manifest)
        corrupt.cells[0] = replace(corrupt.cells[0], digest="0" * 16)
        with pytest.raises(MergeError, match="corrupt manifest"):
            merge_manifests([corrupt])

    def test_missing_cells_rejected_unless_partial(self, full_manifest):
        shards = _shard_manifests(2)
        with pytest.raises(MergeError, match="missing"):
            merge_manifests(shards[:1])
        partial, manifest = merge_manifests(shards[:1], require_complete=False)
        assert len(partial.cells) == len(shards[0].cells)
        assert manifest.completed_keys() == shards[0].completed_keys()

    def test_incompatible_grids_rejected(self, full_manifest):
        import copy

        other = copy.deepcopy(full_manifest)
        other.seed = 999
        with pytest.raises(MergeError, match="different runs"):
            merge_manifests([full_manifest, other])

    def test_mismatched_profiles_rejected(self, full_manifest):
        import copy

        other = copy.deepcopy(full_manifest)
        other.profile = "paper"
        with pytest.raises(MergeError, match="profile"):
            merge_manifests([full_manifest, other])

    def test_merge_nothing_rejected(self):
        with pytest.raises(MergeError, match="no manifests"):
            merge_manifests([])

    def test_artifact_address_divergence_rejected(self, full_manifest):
        """ROADMAP index-store follow-on: two shards claiming the same
        cell with the same result digest but different index-artifact
        addresses built from different inputs — refused by name."""
        import copy

        other = copy.deepcopy(full_manifest)
        full_manifest.cells[0] = replace(
            full_manifest.cells[0], artifact="ggsx-aaaa-1111"
        )
        other.cells[0] = replace(other.cells[0], artifact="ggsx-bbbb-2222")
        with pytest.raises(MergeError, match="artifact address") as excinfo:
            merge_manifests([full_manifest, other])
        message = str(excinfo.value)
        assert "ggsx-aaaa-1111" in message and "ggsx-bbbb-2222" in message
        assert f"method={full_manifest.cells[0].method}" in message

    def test_empty_artifact_does_not_conflict(self, full_manifest):
        """A shard that ran without a store agrees with one that ran
        with one; the merged entry keeps the known address."""
        import copy

        with_store = copy.deepcopy(full_manifest)
        with_store.cells[0] = replace(
            with_store.cells[0], artifact="ggsx-aaaa-1111"
        )
        _, merged = merge_manifests([full_manifest, with_store])
        key = with_store.cells[0].key
        by_key = {entry.key: entry for entry in merged.cells}
        assert by_key[key].artifact == "ggsx-aaaa-1111"

    def test_matching_artifacts_merge_cleanly(self, full_manifest):
        import copy

        a = copy.deepcopy(full_manifest)
        b = copy.deepcopy(full_manifest)
        a.cells[0] = replace(a.cells[0], artifact="ggsx-aaaa-1111")
        b.cells[0] = replace(b.cells[0], artifact="ggsx-aaaa-1111")
        merged, _ = merge_manifests([a, b])
        assert len(merged.cells) == len(full_manifest.cells)


# ----------------------------------------------------------------------
# plans: subgrid, shard skip, resume
# ----------------------------------------------------------------------


class TestSweepPlan:
    def test_selector_narrows_before_sharding(self, full_sweep):
        plan = SweepPlan(selector=parse_only(["method=ggsx"]))
        sweep = graph_count_sweep(TINY, seed=0, plan=plan)
        assert sweep.methods == ["ggsx"]
        assert set(sweep.cells) == {(6, "ggsx"), (10, "ggsx")}
        for key, cell in sweep.cells.items():
            assert cell_digest(cell) == cell_digest(full_sweep.cells[key])

    def test_sharded_sweep_skips_unselected_datasets(self):
        plan = SweepPlan(shard=ShardSpec(1, 4), experiment="graphs", seed=0)
        sweep = graph_count_sweep(TINY, seed=0, plan=plan)
        # Shard 1/4 of the 4-cell grid holds exactly one cell; only its
        # x value's dataset statistics exist.
        assert len(sweep.cells) == 1
        assert set(sweep.dataset_stats) == {key[0] for key in sweep.cells}

    def test_resume_runs_only_missing_cells(self, full_sweep, monkeypatch):
        manifest = manifest_for(full_sweep, "graphs", 0, "tiny")
        manifest.cells = manifest.cells[:2]
        executed = []
        import repro.core.experiments as experiments
        import repro.core.runner as runner_module

        real_run_cell = runner_module.run_cell

        def counting_run_cell(task):
            executed.append(task.key)
            return real_run_cell(task)

        monkeypatch.setattr(experiments, "run_cell", counting_run_cell)
        plan = SweepPlan(resume=manifest, experiment="graphs", seed=0,
                         profile="tiny")
        resumed = graph_count_sweep(TINY, seed=0, plan=plan)
        done = {entry.key for entry in manifest.cells}
        assert set(executed) == set(full_sweep.cells) - done
        assert canonical_json(resumed) == canonical_json(full_sweep)
        # Grid ordering is restored even though resumed cells were
        # folded in after the freshly run ones.
        assert list(resumed.cells) == list(full_sweep.cells)

    def test_fully_resumed_sweep_runs_nothing(self, full_sweep, monkeypatch):
        manifest = manifest_for(full_sweep, "graphs", 0, "tiny")
        import repro.core.experiments as experiments

        def boom(task):  # pragma: no cover - the assertion is that it never runs
            raise AssertionError("no cell should execute")

        monkeypatch.setattr(experiments, "run_cell", boom)
        plan = SweepPlan(resume=manifest, experiment="graphs", seed=0,
                         profile="tiny")
        resumed = graph_count_sweep(TINY, seed=0, plan=plan)
        assert canonical_json(resumed) == canonical_json(full_sweep)

    def test_resume_rejects_mismatched_run(self, full_sweep):
        manifest = manifest_for(full_sweep, "graphs", 0, "tiny")
        plan = SweepPlan(resume=manifest, experiment="graphs", seed=7,
                         profile="tiny")
        with pytest.raises(ManifestError, match="does not match this run"):
            graph_count_sweep(TINY, seed=7, plan=plan)

    def test_resume_rejects_mismatched_shard(self, full_sweep):
        manifest = manifest_for(full_sweep, "graphs", 0, "tiny")
        plan = SweepPlan(
            shard=ShardSpec(1, 2), resume=manifest, experiment="graphs",
            seed=0, profile="tiny",
        )
        with pytest.raises(ManifestError, match="shard"):
            graph_count_sweep(TINY, seed=0, plan=plan)

    def test_resume_rejects_mismatched_profile(self, full_sweep):
        """A CI-scale manifest must not resume a paper-scale run: the
        grids coincide, the cells do not."""
        manifest = manifest_for(full_sweep, "graphs", 0, "tiny")
        plan = SweepPlan(resume=manifest, experiment="graphs", seed=0,
                         profile="paper")
        with pytest.raises(ManifestError, match="profile"):
            graph_count_sweep(TINY, seed=0, plan=plan)

    def test_resume_seeds_cost_history(self, full_sweep):
        manifest = manifest_for(full_sweep, "graphs", 0, "tiny")
        plan = SweepPlan(resume=manifest, experiment="graphs", seed=0,
                         profile="tiny")
        assert plan.history is not None and len(plan.history) == len(
            manifest.cells
        )

    def test_assignment_runs_exactly_the_named_cells(self, full_sweep):
        from repro.core.sharding import CellAssignment

        plan = SweepPlan(
            assignment=CellAssignment.parse(["6:ggsx,10:naive"]),
            experiment="graphs",
            seed=0,
        )
        sweep = graph_count_sweep(TINY, seed=0, plan=plan)
        # The grid stays whole (merge identity), only the named cells ran.
        assert sweep.x_values == [6, 10]
        assert sweep.methods == ["naive", "ggsx"]
        assert set(sweep.cells) == {(6, "ggsx"), (10, "naive")}
        for key, cell in sweep.cells.items():
            assert cell_digest(cell) == cell_digest(full_sweep.cells[key])

    def test_assignment_manifest_round_trips(self, full_sweep, tmp_path):
        from repro.core.sharding import CellAssignment

        assignment = CellAssignment.parse(["10:naive", "6:ggsx"])
        manifest = manifest_for(
            full_sweep, "graphs", 0, "tiny", assignment=assignment
        )
        assert manifest.assignment == [(6, "ggsx"), (10, "naive")]
        path = tmp_path / "a.manifest.json"
        save_manifest(manifest, path)
        again = load_manifest(path)
        assert again.assignment == manifest.assignment
        # Assignment is resume identity, not merge identity.
        assert again.grid_identity() == manifest_for(
            full_sweep, "graphs", 0, "tiny"
        ).grid_identity()

    def test_resume_rejects_mismatched_assignment(self, full_sweep):
        from repro.core.sharding import CellAssignment

        manifest = manifest_for(
            full_sweep, "graphs", 0, "tiny",
            assignment=CellAssignment.parse(["6:ggsx"]),
        )
        plan = SweepPlan(
            assignment=CellAssignment.parse(["10:naive"]),
            resume=manifest,
            experiment="graphs",
            seed=0,
            profile="tiny",
        )
        with pytest.raises(ManifestError, match="cells"):
            graph_count_sweep(TINY, seed=0, plan=plan)

    def test_assignments_from_different_shards_merge(self, full_sweep):
        from repro.core.sharding import CellAssignment

        halves = (["6:naive,10:ggsx"], ["6:ggsx,10:naive"])
        manifests = []
        for spec in halves:
            assignment = CellAssignment.parse(spec)
            plan = SweepPlan(assignment=assignment, experiment="graphs", seed=0)
            sweep = graph_count_sweep(TINY, seed=0, plan=plan)
            manifests.append(
                manifest_for(
                    sweep, "graphs", 0, "tiny", assignment=assignment
                )
            )
        merged, _ = merge_manifests(manifests)
        assert canonical_json(merged) == canonical_json(full_sweep)
        assert sweep_digest(merged) == sweep_digest(full_sweep)
