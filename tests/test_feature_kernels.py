"""Differential parity: CSR feature kernels vs the dict walk.

The CSR kernels (`repro.features.kernels`) promise *byte-identity* with
the dict-walk enumerations, not mere set-equality: same feature
multisets, same occurrence counts, same start-vertex sets, same dict
insertion order, same generator yield order.  This suite pins that
promise with hypothesis over random labeled graphs — disconnected and
empty inputs included — plus the budget contract (both cores poll at
the same per-start granularity, so exhaustion interrupts both at the
same point) and the `REPRO_FEATURE_CORE` dispatch itself.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import FEATURE_CORE_ENV, active_feature_core
from repro.features.cycles import enumerate_simple_cycles
from repro.features.kernels import csr_adjacency, csr_edge_list
from repro.features.paths import path_features
from repro.features.trees import connected_edge_subsets, enumerate_trees
from repro.graphs.csr import CSRGraph
from repro.graphs.graph import Graph
from repro.utils.budget import Budget, BudgetExceeded

from testkit import path_graph, random_graph, triangle


@st.composite
def labeled_graphs(draw, max_vertices=8, labels="ABC"):
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    vertex_labels = draw(
        st.lists(st.sampled_from(labels), min_size=n, max_size=n)
    )
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = (
        draw(st.lists(st.sampled_from(possible), unique=True))
        if possible
        else []
    )
    return Graph(vertex_labels, edges)


def _assert_paths_identical(expected, actual):
    """Byte-identity: same keys in the same order, same aggregates."""
    assert list(actual) == list(expected)
    for key, entry in expected.items():
        assert actual[key].count == entry.count
        assert actual[key].starts == entry.starts


class _CountingBudget:
    """A budget double counting ``check()`` calls, optionally raising
    after a fixed number — pins poll *granularity*, not wall clock."""

    def __init__(self, limit=None):
        self.checks = 0
        self.limit = limit

    def check(self):
        self.checks += 1
        if self.limit is not None and self.checks > self.limit:
            raise BudgetExceeded(0.0, phase="poll limit reached")


class TestDispatch:
    def test_default_core_is_csr(self, monkeypatch):
        monkeypatch.delenv(FEATURE_CORE_ENV, raising=False)
        assert active_feature_core() == "csr"

    def test_env_selects_dict(self, monkeypatch):
        monkeypatch.setenv(FEATURE_CORE_ENV, "dict")
        assert active_feature_core() == "dict"

    def test_unknown_env_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(FEATURE_CORE_ENV, "nonsense")
        assert active_feature_core() == "csr"

    def test_dict_graph_never_engages_kernels(self):
        assert csr_adjacency(path_graph("AB")) is None

    def test_csr_graph_engages_kernels_only_under_csr_core(self, monkeypatch):
        host = CSRGraph.from_graph(path_graph("AB"))
        monkeypatch.delenv(FEATURE_CORE_ENV, raising=False)
        assert csr_adjacency(host) is not None
        monkeypatch.setenv(FEATURE_CORE_ENV, "dict")
        assert csr_adjacency(host) is None


class TestPathParity:
    @settings(max_examples=80, deadline=None)
    @given(graph=labeled_graphs(), max_edges=st.integers(0, 4))
    def test_counts_and_starts_identical(self, graph, max_edges):
        host = CSRGraph.from_graph(graph)
        expected = path_features(graph, max_edges)
        _assert_paths_identical(expected, path_features(host, max_edges))

    @settings(max_examples=40, deadline=None)
    @given(graph=labeled_graphs(max_vertices=6))
    def test_vertex_exclusion_identical(self, graph):
        host = CSRGraph.from_graph(graph)
        expected = path_features(graph, 2, include_vertices=False)
        _assert_paths_identical(
            expected, path_features(host, 2, include_vertices=False)
        )

    def test_disconnected_graph(self):
        graph = Graph("ABAB", [(0, 1), (2, 3)])
        host = CSRGraph.from_graph(graph)
        _assert_paths_identical(
            path_features(graph, 3), path_features(host, 3)
        )

    def test_empty_graph(self):
        host = CSRGraph.from_graph(Graph([]))
        assert path_features(host, 2) == {}

    def test_isolated_vertices_only(self):
        graph = Graph("AB", [])
        host = CSRGraph.from_graph(graph)
        _assert_paths_identical(
            path_features(graph, 2), path_features(host, 2)
        )

    def test_negative_max_edges_rejected_on_csr_host(self):
        with pytest.raises(ValueError):
            path_features(CSRGraph.from_graph(path_graph("AB")), -1)

    def test_dict_core_fallback_identical_on_csr_host(self, monkeypatch, rng):
        for _ in range(10):
            graph = random_graph(rng, 1, 7)
            host = CSRGraph.from_graph(graph)
            monkeypatch.setenv(FEATURE_CORE_ENV, "csr")
            via_kernel = path_features(host, 3)
            monkeypatch.setenv(FEATURE_CORE_ENV, "dict")
            via_walk = path_features(host, 3)
            _assert_paths_identical(via_walk, via_kernel)


class TestCycleAndTreeParity:
    @settings(max_examples=80, deadline=None)
    @given(graph=labeled_graphs(), max_edges=st.integers(3, 6))
    def test_cycle_sequences_identical(self, graph, max_edges):
        host = CSRGraph.from_graph(graph)
        assert list(enumerate_simple_cycles(host, max_edges)) == list(
            enumerate_simple_cycles(graph, max_edges)
        )

    @settings(max_examples=60, deadline=None)
    @given(graph=labeled_graphs(max_vertices=6), max_edges=st.integers(1, 3))
    def test_edge_subset_sequences_identical(self, graph, max_edges):
        host = CSRGraph.from_graph(graph)
        assert list(connected_edge_subsets(host, max_edges)) == list(
            connected_edge_subsets(graph, max_edges)
        )

    @settings(max_examples=40, deadline=None)
    @given(graph=labeled_graphs(max_vertices=6))
    def test_tree_sequences_identical(self, graph):
        host = CSRGraph.from_graph(graph)
        assert list(enumerate_trees(host, 3)) == list(
            enumerate_trees(graph, 3)
        )

    def test_edge_list_matches_edges_order(self, rng):
        for _ in range(20):
            graph = random_graph(rng, 1, 8)
            host = CSRGraph.from_graph(graph)
            assert csr_edge_list(host) == [
                (u, v) if u < v else (v, u) for u, v in host.edges()
            ]

    def test_cycles_below_three_edges_empty(self):
        host = CSRGraph.from_graph(triangle("AAA"))
        assert list(enumerate_simple_cycles(host, 2)) == []


class TestBudgetParity:
    def test_paths_poll_once_per_start_on_both_cores(self, rng):
        graph = random_graph(rng, 4, 8)
        host = CSRGraph.from_graph(graph)
        dict_budget = _CountingBudget()
        csr_budget = _CountingBudget()
        path_features(graph, 3, budget=dict_budget)
        path_features(host, 3, budget=csr_budget)
        assert csr_budget.checks == dict_budget.checks == graph.order

    def test_paths_exhaustion_interrupts_both_cores(self, rng):
        graph = random_graph(rng, 4, 8)
        host = CSRGraph.from_graph(graph)
        for target in (graph, host):
            with pytest.raises(BudgetExceeded):
                path_features(target, 3, budget=_CountingBudget(limit=2))

    def test_cycles_poll_once_per_anchor_on_both_cores(self, rng):
        graph = random_graph(rng, 4, 8, connected=True)
        host = CSRGraph.from_graph(graph)
        dict_budget = _CountingBudget()
        csr_budget = _CountingBudget()
        list(enumerate_simple_cycles(graph, 5, budget=dict_budget))
        list(enumerate_simple_cycles(host, 5, budget=csr_budget))
        assert csr_budget.checks == dict_budget.checks == graph.order

    def test_cycles_exhaustion_interrupts_both_cores(self, rng):
        graph = random_graph(rng, 5, 9, connected=True)
        host = CSRGraph.from_graph(graph)
        for target in (graph, host):
            with pytest.raises(BudgetExceeded):
                list(enumerate_simple_cycles(target, 5, budget=_CountingBudget(limit=2)))

    def test_expired_real_budget_raises_on_csr_host(self):
        import time

        host = CSRGraph.from_graph(path_graph("ABCD"))
        budget = Budget(0.0)
        time.sleep(0.002)
        with pytest.raises(BudgetExceeded):
            path_features(host, 3, budget=budget)
