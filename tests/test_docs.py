"""Docs stay true: link integrity, CLI reference vs argparse, and the
index modules' structured docstrings.

PR 2 grew the CLI faster than the prose (multi-experiment sweeps,
engine flags); these tests make that drift impossible to reintroduce:
the complete flag set of every subcommand is audited against
``docs/cli.md`` and against the rendered ``--help`` text, and every
relative link in the documentation must resolve.
"""

import argparse
import importlib
import re
from pathlib import Path

import pytest

from repro.cli.main import build_parser

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
TABLE_FLAG = re.compile(r"^\|\s*`(--[a-z-]+)")


def _subcommands() -> dict[str, argparse.ArgumentParser]:
    parser = build_parser()
    action = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    # choices maps every alias; here each name maps to a distinct parser.
    return dict(action.choices)


def _flags(sub: argparse.ArgumentParser) -> set[str]:
    out = set()
    for action in sub._actions:
        for option in action.option_strings:
            if option.startswith("--") and option != "--help":
                out.add(option)
    return out


def _cli_md_sections() -> dict[str, str]:
    text = (REPO / "docs" / "cli.md").read_text(encoding="utf-8")
    sections: dict[str, str] = {}
    current = None
    for line in text.splitlines():
        heading = re.match(r"^## `repro (\w+)`", line)
        if heading:
            current = heading.group(1)
            sections[current] = ""
        elif line.startswith("## "):
            current = None
        elif current is not None:
            sections[current] += line + "\n"
    return sections


class TestDocLinks:
    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
    def test_relative_links_resolve(self, doc):
        broken = []
        for target in LINK.findall(doc.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            path = (doc.parent / target.split("#", 1)[0]).resolve()
            if not path.exists():
                broken.append(target)
        assert not broken, f"{doc.name}: broken links {broken}"

    def test_readme_links_to_the_docs_site(self):
        text = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/architecture.md" in text
        assert "docs/cli.md" in text


class TestCliReference:
    """docs/cli.md documents exactly the flags argparse defines."""

    def test_every_subcommand_has_a_section(self):
        sections = _cli_md_sections()
        missing = set(_subcommands()) - set(sections)
        assert not missing, f"docs/cli.md lacks sections for {sorted(missing)}"

    @pytest.mark.parametrize("name", sorted(_subcommands()))
    def test_every_flag_is_documented(self, name):
        section = _cli_md_sections()[name]
        undocumented = {
            flag for flag in _flags(_subcommands()[name]) if flag not in section
        }
        assert not undocumented, (
            f"docs/cli.md section for 'repro {name}' does not mention "
            f"{sorted(undocumented)}"
        )

    @pytest.mark.parametrize("name", sorted(_subcommands()))
    def test_no_stale_flags_in_tables(self, name):
        """Every flag row of a command's table must exist in argparse."""
        real = _flags(_subcommands()[name])
        stale = []
        for line in _cli_md_sections()[name].splitlines():
            match = TABLE_FLAG.match(line.strip())
            if match and match.group(1) not in real:
                stale.append(match.group(1))
        assert not stale, (
            f"docs/cli.md documents nonexistent 'repro {name}' flags {stale}"
        )

    @pytest.mark.parametrize("name", sorted(_subcommands()))
    def test_documented_flags_appear_in_help_output(self, name):
        """The docs, the --help text, and the parser agree."""
        help_text = _subcommands()[name].format_help()
        for line in _cli_md_sections()[name].splitlines():
            match = TABLE_FLAG.match(line.strip())
            if match:
                assert match.group(1) in help_text

    def test_exit_codes_and_env_vars_documented(self):
        text = (REPO / "docs" / "cli.md").read_text(encoding="utf-8")
        assert "## Exit codes" in text
        for var in ("REPRO_JOBS", "REPRO_SHARED_MEM", "REPRO_BATCH_QUERIES",
                    "REPRO_SCALE"):
            assert var in text, f"env var {var} undocumented"


class TestHelpTextDrift:
    """The PR 2 drift, pinned: help strings match current behavior."""

    def test_sweep_accepts_multiple_experiments(self):
        subs = _subcommands()
        experiment = next(
            a for a in subs["sweep"]._actions if a.dest == "experiment"
        )
        assert experiment.nargs == "+"
        assert "sweep(s)" in experiment.help

    def test_query_option_help_mentions_filtering(self):
        subs = _subcommands()
        option = next(
            a for a in subs["query"]._actions if "--option" in a.option_strings
        )
        assert "that accepts it" in option.help

    def test_sweep_json_help_mentions_the_manifest(self):
        subs = _subcommands()
        json_flag = next(
            a for a in subs["sweep"]._actions if "--json" in a.option_strings
        )
        assert "manifest" in json_flag.help

    def test_report_help_covers_merge_output(self):
        parser = build_parser()
        action = next(
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        )
        help_of = {
            choice.dest: choice.help for choice in action._choices_actions
        }
        assert "merge" in help_of["report"]


INDEX_MODULES = (
    "cni",
    "ctindex",
    "gcode",
    "ggsx",
    "gindex",
    "grapes",
    "naive",
    "pathtrie",
    "treedelta",
)


class TestIndexDocstrings:
    @pytest.mark.parametrize("name", INDEX_MODULES)
    def test_structured_provenance_block(self, name):
        module = importlib.import_module(f"repro.indexes.{name}")
        doc = module.__doc__ or ""
        for required in ("Reproduces:", "Feature class:", "Known deviations:"):
            assert required in doc, (
                f"repro.indexes.{name} docstring lacks a {required!r} line"
            )
