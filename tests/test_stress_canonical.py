"""Heavier randomized stress tests for the canonical-form stack.

These go beyond the quick randomized tests: larger graphs, more
automorphic structure (uniform labels), and cross-checks between the
independent canonical forms (DFS codes vs AHU for trees).
"""

import itertools

import networkx as nx
import pytest

from repro.canonical.dfscode import min_dfs_code
from repro.canonical.trees import tree_canonical
from repro.graphs.graph import Graph

from testkit import nx_label_match, random_graph, to_networkx


class TestLargerGraphs:
    def test_invariance_on_8_vertex_graphs(self, rng):
        for _ in range(40):
            graph = random_graph(rng, 7, 8, connected=True)
            permutation = list(range(graph.order))
            rng.shuffle(permutation)
            assert min_dfs_code(graph) == min_dfs_code(graph.relabeled(permutation))

    def test_uniform_labels_maximal_symmetry(self, rng):
        """All-same-label graphs maximize automorphisms — the hardest
        case for embedding-set canonicalization."""
        for _ in range(25):
            graph = random_graph(rng, 5, 7, labels="X", connected=True)
            permutation = list(range(graph.order))
            rng.shuffle(permutation)
            assert min_dfs_code(graph) == min_dfs_code(graph.relabeled(permutation))

    def test_classic_symmetric_graphs(self):
        # Complete graphs, cycles, complete bipartite: all permutations
        # must agree.
        k5 = Graph(["X"] * 5, list(itertools.combinations(range(5), 2)))
        c6 = Graph(["X"] * 6, [(i, (i + 1) % 6) for i in range(6)])
        k33 = Graph(
            ["X"] * 6, [(i, j) for i in range(3) for j in range(3, 6)]
        )
        for graph in (k5, c6, k33):
            reference = min_dfs_code(graph)
            for _ in range(5):
                permutation = list(range(graph.order))
                import random as random_module

                random_module.Random(len(reference)).shuffle(permutation)
                assert min_dfs_code(graph.relabeled(permutation)) == reference

    def test_petersen_graph_canonical(self):
        """The Petersen graph: vertex-transitive, girth 5."""
        petersen = nx.petersen_graph()
        labels = ["X"] * 10
        graph = Graph(labels, list(petersen.edges()))
        reference = min_dfs_code(graph)
        for seed in range(4):
            import random as random_module

            permutation = list(range(10))
            random_module.Random(seed).shuffle(permutation)
            assert min_dfs_code(graph.relabeled(permutation)) == reference


class TestCrossCanonicalConsistency:
    def test_dfs_code_and_ahu_agree_on_tree_isomorphism(self, rng):
        """Two independent canonical forms must induce the same
        equivalence classes on trees."""
        trees = []
        for _ in range(30):
            n = rng.randint(2, 7)
            labels = [rng.choice("AB") for _ in range(n)]
            edges = [(v, rng.randrange(v)) for v in range(1, n)]
            trees.append(Graph(labels, edges))
        for a, b in itertools.combinations(trees, 2):
            by_dfs = min_dfs_code(a) == min_dfs_code(b)
            by_ahu = tree_canonical(a, list(a.edges())) == tree_canonical(
                b, list(b.edges())
            )
            assert by_dfs == by_ahu, (
                list(a.edges()), a.labels, list(b.edges()), b.labels
            )

    def test_canonical_classes_match_networkx_on_trees(self, rng):
        trees = []
        for _ in range(20):
            n = rng.randint(2, 6)
            labels = [rng.choice("AB") for _ in range(n)]
            edges = [(v, rng.randrange(v)) for v in range(1, n)]
            trees.append(Graph(labels, edges))
        for a, b in itertools.combinations(trees, 2):
            ours = tree_canonical(a, list(a.edges())) == tree_canonical(
                b, list(b.edges())
            )
            theirs = nx.is_isomorphic(
                to_networkx(a), to_networkx(b), node_match=nx_label_match
            )
            assert ours == theirs
