"""Unit tests for the gSpan miner and discriminative selection."""

import pytest

from repro.canonical.dfscode import min_dfs_code
from repro.features.trees import connected_edge_subsets
from repro.graphs.graph import Graph
from repro.isomorphism.vf2 import is_subgraph
from repro.mining.discriminative import select_discriminative
from repro.mining.gspan import MinedPattern, mine_frequent_patterns

from testkit import path_graph, random_graph, triangle


def _dataset(rng, count=8, **kwargs):
    graphs = []
    for i in range(count):
        graph = random_graph(rng, 3, 6, connected=True, **kwargs)
        graph.graph_id = i
        graphs.append(graph)
    return graphs


def _brute_frequent(graphs, min_support, max_edges, trees_only=False):
    """Ground truth via exhaustive edge-subset enumeration."""
    support: dict = {}
    for graph in graphs:
        codes = set()
        for subset in connected_edge_subsets(graph, max_edges):
            vertices = sorted({v for e in subset for v in e})
            if trees_only and len(vertices) != len(subset) + 1:
                continue
            index = {v: i for i, v in enumerate(vertices)}
            pattern = Graph(
                [graph.label(v) for v in vertices],
                [(index[u], index[v]) for u, v in subset],
            )
            codes.add(min_dfs_code(pattern))
        for code in codes:
            support.setdefault(code, set()).add(graph.graph_id)
    return {
        code: ids for code, ids in support.items() if len(ids) >= min_support
    }


class TestMiner:
    def test_completeness_and_supports(self, rng):
        graphs = _dataset(rng)
        mined = mine_frequent_patterns(graphs, min_support=3, max_edges=3)
        expected = _brute_frequent(graphs, 3, 3)
        assert set(mined) == set(expected)
        for code, pattern in mined.items():
            assert pattern.support_set() == expected[code]

    def test_tree_mining_completeness(self, rng):
        graphs = _dataset(rng)
        mined = mine_frequent_patterns(
            graphs, min_support=3, max_edges=3, trees_only=True
        )
        expected = _brute_frequent(graphs, 3, 3, trees_only=True)
        assert set(mined) == set(expected)

    def test_tree_mining_yields_only_trees(self, rng):
        graphs = _dataset(rng)
        mined = mine_frequent_patterns(
            graphs, min_support=2, max_edges=4, trees_only=True
        )
        for pattern in mined.values():
            assert pattern.graph.size == pattern.graph.order - 1

    def test_supports_verified_by_vf2(self, rng):
        graphs = _dataset(rng, count=6)
        mined = mine_frequent_patterns(graphs, min_support=2, max_edges=3)
        for pattern in mined.values():
            true_support = {
                g.graph_id for g in graphs if is_subgraph(pattern.graph, g)
            }
            assert pattern.support_set() == true_support

    def test_antimonotone_support(self, rng):
        graphs = _dataset(rng)
        mined = mine_frequent_patterns(graphs, min_support=2, max_edges=3)
        by_code = {code: p.support_set() for code, p in mined.items()}
        for code, support in by_code.items():
            if len(code) < 2:
                continue
            # The prefix of a minimal code is a minimal sub-pattern.
            prefix = code[:-1]
            if prefix in by_code:
                assert support <= by_code[prefix]

    def test_min_support_threshold_respected(self, rng):
        graphs = _dataset(rng)
        mined = mine_frequent_patterns(graphs, min_support=5, max_edges=3)
        assert all(p.support >= 5 for p in mined.values())

    def test_max_edges_respected(self, rng):
        graphs = _dataset(rng)
        mined = mine_frequent_patterns(graphs, min_support=2, max_edges=2)
        assert all(p.size <= 2 for p in mined.values())

    def test_codes_are_minimal(self, rng):
        graphs = _dataset(rng)
        mined = mine_frequent_patterns(graphs, min_support=2, max_edges=3)
        for code, pattern in mined.items():
            assert code == min_dfs_code(pattern.graph)

    def test_keep_predicate_prunes_expansion(self, rng):
        graphs = _dataset(rng)
        allowed = set(mine_frequent_patterns(graphs, 2, 1))  # single edges only
        mined = mine_frequent_patterns(
            graphs, min_support=2, max_edges=3, keep=allowed.__contains__
        )
        assert set(mined) == allowed

    def test_query_side_growth(self, rng):
        """Mining a single graph with support 1 enumerates its patterns."""
        query = triangle("ABC")
        mined = mine_frequent_patterns([query], min_support=1, max_edges=3)
        sizes = sorted(p.size for p in mined.values())
        # 3 single edges, 3 two-edge paths, 1 triangle.
        assert sizes == [1, 1, 1, 2, 2, 2, 3]

    def test_empty_inputs(self):
        assert mine_frequent_patterns([], min_support=1, max_edges=3) == {}
        assert mine_frequent_patterns([triangle()], 1, 0) == {}

    def test_invalid_support_rejected(self):
        with pytest.raises(ValueError):
            mine_frequent_patterns([triangle()], min_support=0, max_edges=2)

    def test_embeddings_reference_host_edges(self, rng):
        graphs = _dataset(rng, count=4)
        by_id = {g.graph_id: g for g in graphs}
        mined = mine_frequent_patterns(graphs, min_support=2, max_edges=3)
        for pattern in mined.values():
            for embedding in pattern.embeddings:
                host = by_id[embedding.graph_id]
                for edge in embedding.used:
                    u, v = tuple(edge)
                    assert host.has_edge(u, v)


class TestDiscriminative:
    def _patterns(self, specs):
        """Build MinedPatterns from (graph, support-ids) pairs."""
        out = []
        for graph, ids in specs:
            pattern = MinedPattern(min_dfs_code(graph), graph)
            # support_set() only consults embedding.graph_id.
            pattern.embeddings = [_FakeEmbedding(graph_id) for graph_id in ids]
            out.append(pattern)
        return out

    def test_size_one_feature_selected_when_it_prunes(self):
        # |∩ D(sub)| = N = 10 >= γ·|D(f)| = 2·3: selected.
        edge = path_graph("AB")
        patterns = self._patterns([(edge, {0, 1, 2})])
        selected = select_discriminative(patterns, gamma=2.0, num_graphs=10)
        assert len(selected) == 1

    def test_ubiquitous_size_one_feature_dropped(self):
        # A fragment in every graph has no pruning power: N < γ·N.
        edge = path_graph("AB")
        patterns = self._patterns([(edge, {0, 1, 2, 3})])
        assert select_discriminative(patterns, gamma=2.0, num_graphs=4) == []

    def test_redundant_superfeature_dropped(self):
        edge = path_graph("AB")
        two_path = path_graph("ABB")
        # Same support as its indexed subfeature -> |∩D| = 2 < 2·2.
        patterns = self._patterns([(edge, {0, 1}), (two_path, {0, 1})])
        selected = select_discriminative(patterns, gamma=2.0, num_graphs=10)
        codes = {p.code for p in selected}
        assert min_dfs_code(edge) in codes
        assert min_dfs_code(two_path) not in codes

    def test_discriminative_superfeature_kept(self):
        edge = path_graph("AB")
        two_path = path_graph("ABB")
        # Support shrinks 4 -> 1: |∩D| = 4 >= 2·1.
        patterns = self._patterns([(edge, {0, 1, 2, 3}), (two_path, {0})])
        selected = select_discriminative(patterns, gamma=2.0, num_graphs=10)
        assert {p.code for p in selected} == {
            min_dfs_code(edge),
            min_dfs_code(two_path),
        }

    def test_gamma_one_selects_everything(self):
        edge = path_graph("AB")
        two_path = path_graph("ABB")
        patterns = self._patterns([(edge, {0, 1}), (two_path, {0, 1})])
        selected = select_discriminative(patterns, gamma=1.0, num_graphs=2)
        assert len(selected) == 2

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ValueError):
            select_discriminative([], gamma=0.5, num_graphs=1)

    def test_unrelated_features_do_not_interfere(self):
        ab = path_graph("AB")
        cd = path_graph("CD")
        patterns = self._patterns([(ab, {0, 1}), (cd, {0, 1})])
        selected = select_discriminative(patterns, gamma=2.0, num_graphs=10)
        assert len(selected) == 2


class _FakeEmbedding:
    """Only the graph_id is consulted by support_set()."""

    __slots__ = ("graph_id",)

    def __init__(self, graph_id: int) -> None:
        self.graph_id = graph_id
