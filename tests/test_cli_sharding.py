"""CLI shard/merge/resume end-to-end: the acceptance contract.

``repro sweep --shard i/n`` for n ∈ {1, 2, 4} followed by
``repro merge`` must produce canonical JSON byte-identical (same
``sweep_digest``) to a sequential unsharded run, across the four-method
equivalence roster (naive, ggsx, ctindex, gcode — trie, fingerprint,
and spectral designs plus the exhaustive baseline), and ``--resume`` on
a half-completed manifest must re-run only the missing cells.
"""

from dataclasses import replace

import pytest

import repro.cli.commands as commands
from repro.cli import main
from repro.core.presets import CI_PROFILE
from repro.core.serialization import canonical_json, load_sweep, sweep_digest
from repro.core.sharding import load_manifest, manifest_path_for, save_manifest


@pytest.fixture()
def tiny_profile(monkeypatch):
    profile = replace(
        CI_PROFILE,
        graph_count_values=(6, 10),
        default_num_graphs=8,
        default_nodes=10,
        default_density=0.2,
        default_labels=3,
        query_sizes=(3,),
        queries_per_size=2,
        build_budget_seconds=20.0,
        query_budget_seconds=20.0,
        method_configs={
            "naive": {},
            "ggsx": {"max_path_edges": 2},
            "ctindex": {"fingerprint_bits": 256, "feature_edges": 3},
            "gcode": {"path_depth": 2, "top_eigenvalues": 2, "counter_buckets": 16},
        },
    )
    monkeypatch.setattr(commands, "active_profile", lambda: profile)
    return profile


@pytest.fixture()
def unsharded(tiny_profile, tmp_path, capsys):
    path = tmp_path / "full.json"
    assert main(["sweep", "graphs", "--json", str(path)]) == 0
    capsys.readouterr()
    return path


class TestShardMergeRoundTrip:
    @pytest.mark.parametrize("count", [1, 2, 4])
    def test_sharded_run_merges_byte_identically(
        self, count, unsharded, tmp_path, capsys
    ):
        manifest_paths = []
        for index in range(1, count + 1):
            shard_json = tmp_path / f"shard{index}of{count}.json"
            code = main(
                ["sweep", "graphs", "--shard", f"{index}/{count}",
                 "--json", str(shard_json)]
            )
            assert code == 0
            manifest_paths.append(str(manifest_path_for(shard_json)))
        merged_json = tmp_path / f"merged{count}.json"
        assert main(["merge", *manifest_paths, "--json", str(merged_json)]) == 0
        out = capsys.readouterr().out
        assert "sweep digest" in out
        full = load_sweep(unsharded)
        merged = load_sweep(merged_json)
        assert canonical_json(merged) == canonical_json(full)
        assert sweep_digest(merged) == sweep_digest(full)

    def test_merged_output_renders_via_report(self, unsharded, tmp_path, capsys):
        shard_paths = []
        for index in (1, 2):
            shard_json = tmp_path / f"r{index}.json"
            assert main(
                ["sweep", "graphs", "--shard", f"{index}/2", "--json",
                 str(shard_json)]
            ) == 0
            shard_paths.append(str(manifest_path_for(shard_json)))
        merged_json = tmp_path / "merged.json"
        assert main(["merge", *shard_paths, "--json", str(merged_json)]) == 0
        capsys.readouterr()
        assert main(["report", str(merged_json), "--figure", "6"]) == 0
        assert "Figure 6(c)" in capsys.readouterr().out


class TestResume:
    def test_resume_runs_only_missing_cells(
        self, unsharded, tmp_path, capsys, monkeypatch
    ):
        json_path = tmp_path / "resumable.json"
        assert main(["sweep", "graphs", "--json", str(json_path)]) == 0
        manifest_path = manifest_path_for(json_path)
        manifest = load_manifest(manifest_path)
        total = len(manifest.cells)
        manifest.cells = manifest.cells[: total // 2]
        save_manifest(manifest, manifest_path)

        executed = []
        import repro.core.experiments as experiments
        import repro.core.runner as runner_module

        real_run_cell = runner_module.run_cell

        def counting_run_cell(task):
            executed.append(task.key)
            return real_run_cell(task)

        monkeypatch.setattr(experiments, "run_cell", counting_run_cell)
        capsys.readouterr()
        assert main(
            ["sweep", "graphs", "--json", str(json_path), "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert f"resuming graphs from {total // 2} completed cell(s)" in out
        assert len(executed) == total - total // 2
        assert sweep_digest(load_sweep(json_path)) == sweep_digest(
            load_sweep(unsharded)
        )
        # The rewritten manifest is whole again: resuming once more
        # executes nothing.
        executed.clear()
        assert main(
            ["sweep", "graphs", "--json", str(json_path), "--resume"]
        ) == 0
        assert executed == []

    def test_resume_without_prior_manifest_starts_fresh(
        self, tiny_profile, tmp_path, capsys
    ):
        json_path = tmp_path / "fresh.json"
        assert main(
            ["sweep", "graphs", "--json", str(json_path), "--resume"]
        ) == 0
        assert manifest_path_for(json_path).exists()


class TestCliErrors:
    def test_shard_requires_json(self, tiny_profile, capsys):
        assert main(["sweep", "graphs", "--shard", "1/2"]) == 2
        assert "--shard requires --json" in capsys.readouterr().err

    def test_resume_requires_json(self, tiny_profile, capsys):
        assert main(["sweep", "graphs", "--resume"]) == 2
        assert "--resume requires --json" in capsys.readouterr().err

    def test_unknown_selector_key_is_a_cli_error(self, tiny_profile, capsys):
        assert main(["sweep", "graphs", "--only", "metod=ggsx"]) == 2
        assert "unknown selector key" in capsys.readouterr().err

    def test_bad_shard_spec_is_a_cli_error(self, tiny_profile, capsys):
        assert main(["sweep", "graphs", "--shard", "5/2"]) == 2
        assert "--shard" in capsys.readouterr().err

    def test_merge_divergence_is_a_named_cell_error(
        self, unsharded, tmp_path, capsys
    ):
        import copy
        from dataclasses import replace as dc_replace

        from repro.core.runner import SizeStats
        from repro.core.sharding import cell_digest

        manifest = load_manifest(manifest_path_for(unsharded))
        tampered = copy.deepcopy(manifest)
        entry = tampered.cells[0]
        entry.cell.per_size[3] = SizeStats(
            status="ok",
            stats=dc_replace(entry.cell.per_size[3].stats, avg_candidates=77.0),
        )
        tampered.cells[0] = dc_replace(entry, digest=cell_digest(entry.cell))
        tampered_path = tmp_path / "tampered.manifest.json"
        save_manifest(tampered, tampered_path)
        code = main(
            ["merge", str(manifest_path_for(unsharded)), str(tampered_path),
             "--json", str(tmp_path / "out.json")]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "diverge on cell" in err
        assert f"method={entry.method}" in err

    def test_merge_missing_cells_error_and_allow_partial(
        self, unsharded, tmp_path, capsys
    ):
        shard_json = tmp_path / "half.json"
        assert main(
            ["sweep", "graphs", "--shard", "1/2", "--json", str(shard_json)]
        ) == 0
        capsys.readouterr()
        out_json = tmp_path / "partial.json"
        code = main(
            ["merge", str(manifest_path_for(shard_json)), "--json", str(out_json)]
        )
        assert code == 2
        assert "missing" in capsys.readouterr().err
        assert main(
            ["merge", str(manifest_path_for(shard_json)), "--json",
             str(out_json), "--allow-partial"]
        ) == 0
        assert out_json.exists()

    def test_only_selects_subgrid_via_cli(self, tiny_profile, tmp_path, capsys):
        json_path = tmp_path / "only.json"
        assert main(
            ["sweep", "graphs", "--only", "method=ggsx,graphs=6", "--json",
             str(json_path)]
        ) == 0
        sweep = load_sweep(json_path)
        assert sweep.methods == ["ggsx"]
        assert sweep.x_values == [6]
        assert set(sweep.cells) == {(6, "ggsx")}
