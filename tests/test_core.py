"""Tests for the evaluation core: metrics, runner, experiments, report."""

from dataclasses import replace

import pytest

from repro.core.experiments import (
    SweepResult,
    density_sweep,
    graph_count_sweep,
    labels_sweep,
    nodes_sweep,
    real_dataset_experiment,
)
from repro.core.metrics import false_positive_ratio, summarize_results
from repro.core.presets import CI_PROFILE, PAPER_PROFILE, active_profile
from repro.core.report import (
    breaking_point,
    ordering_fraction,
    render_series_table,
    render_sweep,
    render_table1,
    series_values,
)
from repro.core.runner import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    evaluate_method,
    make_method,
)
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.indexes.base import QueryResult


def _result(candidates, answers):
    return QueryResult(
        candidates=frozenset(candidates),
        answers=frozenset(answers),
        filter_seconds=0.25,
        verify_seconds=0.75,
    )


class TestMetrics:
    def test_fp_ratio_single_query(self):
        # Eq. (3): (|C| - |A|) / |C|.
        assert _result({1, 2, 3, 4}, {1}).false_positive_ratio == pytest.approx(0.75)

    def test_fp_ratio_empty_candidates(self):
        assert _result(set(), set()).false_positive_ratio == 0.0

    def test_fp_ratio_is_mean_of_per_query_ratios(self):
        results = [_result({1, 2}, {1}), _result({1, 2, 3, 4}, {1, 2, 3, 4})]
        # (0.5 + 0.0) / 2, not (2 + 0) / (2 + 4).
        assert false_positive_ratio(results) == pytest.approx(0.25)

    def test_fp_ratio_empty_workload(self):
        assert false_positive_ratio([]) == 0.0

    def test_summarize(self):
        stats = summarize_results([_result({1, 2}, {1}), _result({3}, {3})])
        assert stats.num_queries == 2
        assert stats.avg_candidates == pytest.approx(1.5)
        assert stats.avg_answers == pytest.approx(1.0)
        assert stats.avg_query_seconds == pytest.approx(1.0)
        assert stats.avg_filter_seconds == pytest.approx(0.25)
        assert stats.false_positive_ratio == pytest.approx(0.25)

    def test_summarize_empty(self):
        assert summarize_results([]).num_queries == 0


@pytest.fixture(scope="module")
def small_dataset():
    config = GraphGenConfig(
        num_graphs=15, mean_nodes=10, mean_density=0.25, num_labels=3, nodes_stddev=2
    )
    return generate_dataset(config, seed=33)


@pytest.fixture(scope="module")
def small_workloads(small_dataset):
    return {4: generate_queries(small_dataset, 3, 4, seed=0)}


class TestRunner:
    def test_make_method_known(self):
        index = make_method("ggsx", {"max_path_edges": 2})
        assert index.max_path_edges == 2

    def test_make_method_unknown(self):
        with pytest.raises(ValueError, match="unknown method"):
            make_method("btree")

    def test_ok_cell(self, small_dataset, small_workloads):
        cell = evaluate_method(
            "ggsx",
            small_dataset,
            small_workloads,
            method_config={"max_path_edges": 2},
        )
        assert cell.build_status == STATUS_OK
        assert cell.build_seconds > 0.0
        assert cell.index_bytes > 0
        assert cell.per_size[4].status == STATUS_OK
        assert cell.query_seconds() > 0.0
        assert 0.0 <= cell.fp_ratio() <= 1.0

    def test_build_timeout_recorded(self, small_dataset, small_workloads):
        cell = evaluate_method(
            "gindex",
            small_dataset,
            small_workloads,
            build_budget_seconds=0.0,
        )
        assert cell.build_status == STATUS_TIMEOUT
        assert cell.build_seconds is None
        assert cell.query_seconds() is None

    def test_query_timeout_recorded(self, small_dataset, small_workloads):
        cell = evaluate_method(
            "ggsx",
            small_dataset,
            small_workloads,
            method_config={"max_path_edges": 2},
            query_budget_seconds=0.0,
        )
        assert cell.build_status == STATUS_OK
        assert cell.per_size[4].status == STATUS_TIMEOUT
        assert cell.query_seconds() is None

    def test_per_size_accessor(self, small_dataset, small_workloads):
        cell = evaluate_method(
            "naive", small_dataset, small_workloads
        )
        assert cell.query_seconds_for(4) is not None
        assert cell.query_seconds_for(99) is None


@pytest.fixture(scope="module")
def tiny_profile():
    return replace(
        CI_PROFILE,
        nodes_values=(8, 12),
        density_values=(0.15, 0.25),
        label_values=(2, 4),
        graph_count_values=(8, 16),
        default_num_graphs=10,
        default_nodes=10,
        default_density=0.2,
        default_labels=3,
        query_sizes=(3,),
        queries_per_size=2,
        build_budget_seconds=10.0,
        query_budget_seconds=10.0,
        real_dataset_scale=0.01,
        real_dataset_names=("AIDS",),
        method_configs={
            "ggsx": {"max_path_edges": 2},
            "ctindex": {"fingerprint_bits": 256, "feature_edges": 2},
        },
    )


class TestSweeps:
    def test_nodes_sweep_structure(self, tiny_profile):
        sweep = nodes_sweep(tiny_profile)
        assert sweep.x_values == [8, 12]
        assert sweep.methods == ["ggsx", "ctindex"]
        assert set(sweep.cells) == {
            (x, m) for x in (8, 12) for m in ("ggsx", "ctindex")
        }

    def test_series_projections(self, tiny_profile):
        sweep = nodes_sweep(tiny_profile)
        times = sweep.indexing_time()
        assert set(times) == {"ggsx", "ctindex"}
        for points in times.values():
            assert len(points) == 2
            assert all(value is None or value >= 0.0 for _, value in points)
        sizes = sweep.index_size_mb()
        assert all(v > 0 for _, v in sizes["ggsx"])

    def test_density_sweep_runs(self, tiny_profile):
        sweep = density_sweep(tiny_profile, methods=["ggsx"])
        assert sweep.x_name == "density"
        assert series_values(sweep.query_time(), "ggsx")

    def test_labels_sweep_runs(self, tiny_profile):
        sweep = labels_sweep(tiny_profile, methods=["ggsx"])
        assert sweep.x_values == [2, 4]

    def test_graph_count_sweep_runs(self, tiny_profile):
        sweep = graph_count_sweep(tiny_profile, methods=["ggsx"])
        stats = sweep.dataset_stats
        assert stats[8].num_graphs == 8
        assert stats[16].num_graphs == 16

    def test_real_dataset_experiment(self, tiny_profile):
        result = real_dataset_experiment(tiny_profile)
        assert result.x_values == ["AIDS"]
        assert result.dataset_stats["AIDS"].num_graphs >= 5

    def test_progress_hook_called(self, tiny_profile):
        seen = []
        nodes_sweep(tiny_profile, methods=["ggsx"], progress=seen.append)
        assert len(seen) == 2

    def test_explicit_values_override_profile(self, tiny_profile):
        sweep = nodes_sweep(tiny_profile, methods=["ggsx"], values=[9])
        assert sweep.x_values == [9]


class TestReport:
    def _series(self):
        return {
            "ggsx": [(10, 0.5), (20, 1.0)],
            "gindex": [(10, 2.0), (20, None)],
        }

    def test_render_series_table(self):
        table = render_series_table("Figure X", self._series(), "nodes")
        assert "Figure X" in table
        assert "ggsx" in table and "gindex" in table
        assert "—" in table  # missing data point marker

    def test_render_sweep_contains_all_subfigures(self, tiny_profile):
        sweep = nodes_sweep(tiny_profile, methods=["ggsx"])
        text = render_sweep(sweep, "2")
        for panel in ("2(a)", "2(b)", "2(c)", "2(d)"):
            assert panel in text

    def test_render_table1(self, tiny_profile):
        result = real_dataset_experiment(tiny_profile, methods=["ggsx"])
        table = render_table1(result.dataset_stats)
        assert "Table 1" in table and "AIDS" in table

    def test_ordering_fraction(self):
        series = self._series()
        assert ordering_fraction(series, ["ggsx"], ["gindex"]) == 1.0
        assert ordering_fraction(series, ["gindex"], ["ggsx"]) == 0.0

    def test_ordering_fraction_ignores_missing(self):
        series = {"a": [(1, None)], "b": [(1, 5.0)]}
        assert ordering_fraction(series, ["a"], ["b"]) == 1.0  # vacuous

    def test_breaking_point(self):
        series = self._series()
        assert breaking_point(series, "gindex") == 20
        assert breaking_point(series, "ggsx") is None

    def test_series_values(self):
        assert series_values(self._series(), "gindex") == [2.0]


class TestProfiles:
    def test_paper_profile_matches_section_4(self):
        assert PAPER_PROFILE.default_nodes == 200
        assert PAPER_PROFILE.default_density == 0.025
        assert PAPER_PROFILE.default_labels == 20
        assert PAPER_PROFILE.default_num_graphs == 1000
        assert PAPER_PROFILE.query_sizes == (4, 8, 16, 32)
        assert PAPER_PROFILE.build_budget_seconds == 8 * 3600.0
        assert PAPER_PROFILE.method_configs["gindex"]["max_fragment_edges"] == 10
        assert PAPER_PROFILE.method_configs["grapes"]["workers"] == 6
        assert PAPER_PROFILE.method_configs["ctindex"]["fingerprint_bits"] == 4096

    def test_sweep_grids_match_paper(self):
        assert PAPER_PROFILE.nodes_values[0] == 50
        assert PAPER_PROFILE.nodes_values[-1] == 2000
        assert 0.005 in PAPER_PROFILE.density_values
        assert 0.3 in PAPER_PROFILE.density_values
        assert PAPER_PROFILE.graph_count_values[-1] == 100000

    def test_active_profile_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert active_profile().name == "ci"
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert active_profile().name == "paper"

    def test_ci_profile_covers_same_methods(self):
        assert set(CI_PROFILE.method_configs) == set(PAPER_PROFILE.method_configs)
