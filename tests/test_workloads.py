"""Tests for workload characterization and selectivity analysis."""

import pytest

from repro.core.workloads import (
    characterize_queries,
    filtering_profile,
    selectivity_profile,
)
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.graphs.dataset import GraphDataset
from repro.graphs.graph import Graph
from repro.indexes import GraphGrepSXIndex, NaiveIndex

from testkit import path_graph, triangle


@pytest.fixture(scope="module")
def dataset():
    config = GraphGenConfig(
        num_graphs=20, mean_nodes=12, mean_density=0.2, num_labels=4
    )
    return generate_dataset(config, seed=42)


@pytest.fixture(scope="module")
def queries(dataset):
    return generate_queries(dataset, 8, 5, seed=0)


class TestCharacterize:
    def test_basic_statistics(self, queries):
        stats = characterize_queries(queries)
        assert stats.num_queries == 8
        assert stats.avg_edges == pytest.approx(5.0)
        assert stats.all_connected

    def test_empty_workload(self):
        stats = characterize_queries([])
        assert stats.num_queries == 0
        assert not stats.all_connected or stats.num_queries == 0

    def test_label_union(self):
        stats = characterize_queries([path_graph("AB"), path_graph("BC")])
        assert stats.num_distinct_labels == 3

    def test_disconnected_counted(self):
        stats = characterize_queries([Graph("AB"), triangle()])
        assert stats.num_connected == 1


class TestSelectivity:
    def test_counts_match_oracle(self, dataset, queries):
        profile = selectivity_profile(dataset, queries)
        oracle = NaiveIndex()
        oracle.build(dataset)
        for query, count in zip(queries, profile.answer_counts):
            assert count == len(oracle.query(query).answers)

    def test_walk_queries_never_empty(self, dataset, queries):
        profile = selectivity_profile(dataset, queries)
        assert profile.num_empty == 0
        assert profile.avg_selectivity > 0.0

    def test_impossible_query_selectivity(self, dataset):
        ghost = Graph(["NOPE", "NOPE"], [(0, 1)])
        profile = selectivity_profile(dataset, [ghost])
        assert profile.answer_counts == (0,)
        assert profile.num_empty == 1
        assert profile.avg_selectivity == 0.0

    def test_percentiles(self, dataset, queries):
        profile = selectivity_profile(dataset, queries)
        assert profile.percentile(0.0) == min(profile.answer_counts)
        assert profile.percentile(1.0) == max(profile.answer_counts)
        assert profile.percentile(0.0) <= profile.percentile(0.5) <= profile.percentile(1.0)

    def test_percentile_validation(self, dataset, queries):
        profile = selectivity_profile(dataset, queries)
        with pytest.raises(ValueError):
            profile.percentile(1.5)


class TestFilteringProfile:
    def test_fp_ratio_matches_query_results(self, dataset, queries):
        index = GraphGrepSXIndex(max_path_edges=3)
        index.build(dataset)
        profile = filtering_profile(index, queries)
        from repro.core.metrics import false_positive_ratio

        expected = false_positive_ratio([index.query(q) for q in queries])
        assert profile.false_positive_ratio == pytest.approx(expected)

    def test_naive_profile_is_all_candidates(self, dataset, queries):
        index = NaiveIndex()
        index.build(dataset)
        profile = filtering_profile(index, queries)
        assert profile.avg_candidates == len(dataset)
        assert profile.method == "naive"

    def test_perfect_queries_counted(self, dataset, queries):
        index = GraphGrepSXIndex(max_path_edges=3)
        index.build(dataset)
        profile = filtering_profile(index, queries)
        assert 0 <= profile.perfect_queries <= profile.num_queries

    def test_empty_workload(self, dataset):
        index = NaiveIndex()
        index.build(dataset)
        profile = filtering_profile(index, [])
        assert profile.false_positive_ratio == 0.0
        assert profile.avg_candidates == 0.0
