"""The online query service and its load generator.

PR 7's contracts end to end, without subprocesses (the CLI-level
daemon lifecycle lives in ``test_cli_serve.py``):

* serve-vs-batch identity — a warm :class:`QueryService` answers every
  query with exactly the payload a fresh batch build produces, and
  keeps doing so under concurrent HTTP clients (the per-method lock
  protects the Tree+Delta-style query-time mutation);
* the thread-safe memory-LRU of :class:`IndexStore` survives a
  mixed get/put/evict stampede with the bound intact;
* the scenario format and KPI evaluation of :mod:`repro.core.loadgen`;
* graceful drain: :func:`run_server` returns 0 after its shutdown
  event fires, having answered everything in flight.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.loadgen import (
    KpiSpec,
    LoadResult,
    ScenarioError,
    bench_record,
    evaluate_kpis,
    metrics_of,
    parse_scenario,
    post_query,
    run_load,
)
from repro.core.runner import make_method
from repro.core.serve import (
    QueryService,
    RequestMetrics,
    ServeError,
    answers_of,
    make_server,
    quantile,
    run_server,
)
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.graphs.csr import as_core_dataset
from repro.graphs.dataset import GraphDataset
from repro.graphs.io import dumps_dataset
from repro.indexes.store import (
    ArtifactHeader,
    ArtifactProvenance,
    IndexArtifact,
    IndexStore,
    clear_stores,
)

METHOD = "ggsx"
OPTIONS = {"max_path_edges": 2}


@pytest.fixture(autouse=True)
def _fresh_stores():
    clear_stores()
    yield
    clear_stores()


@pytest.fixture(scope="module")
def dataset():
    config = GraphGenConfig(
        num_graphs=12, mean_nodes=10, mean_density=0.25, num_labels=3
    )
    return generate_dataset(config, seed=77)


@pytest.fixture(scope="module")
def queries(dataset):
    return generate_queries(dataset, 4, 3, seed=3)


@pytest.fixture(scope="module")
def query_texts(queries):
    return [dumps_dataset(GraphDataset([query])) for query in queries]


@pytest.fixture(scope="module")
def service(dataset):
    svc = QueryService(dataset, methods=[METHOD], method_options=OPTIONS)
    svc.warm()
    return svc


@pytest.fixture(scope="module")
def batch_answers(dataset, queries):
    """What the batch engine answers: the identity reference."""
    index = make_method(METHOD, OPTIONS)
    index.build(as_core_dataset(dataset))
    return [answers_of([index.query(query)]) for query in queries]


# ----------------------------------------------------------------------
# metrics primitives
# ----------------------------------------------------------------------


class TestQuantile:
    def test_empty_is_zero(self):
        assert quantile([], 0.5) == 0.0

    def test_single_value(self):
        assert quantile([3.5], 0.5) == 3.5
        assert quantile([3.5], 0.99) == 3.5

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert quantile(values, 0.50) == 5.0
        assert quantile(values, 0.90) == 9.0
        assert quantile(values, 1.00) == 10.0
        assert quantile(values, 0.0) == 1.0


class TestRequestMetrics:
    def test_counts_and_latencies(self):
        metrics = RequestMetrics()
        for ms in (1.0, 2.0, 3.0):
            metrics.record(ms / 1e3)
        metrics.record(0.004, error=True)
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 4
        assert snapshot["errors"] == 1
        assert snapshot["latency_ms"]["q50"] == pytest.approx(2.0)
        # Error latencies are counted but not sampled: KPIs describe
        # the requests that answered.
        assert snapshot["latency_ms"]["max"] == pytest.approx(3.0)
        assert snapshot["qps"] > 0

    def test_concurrent_recording_loses_nothing(self):
        metrics = RequestMetrics()
        threads = [
            threading.Thread(
                target=lambda: [metrics.record(0.001) for _ in range(200)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert metrics.snapshot()["requests"] == 8 * 200


# ----------------------------------------------------------------------
# the service: warm-up and identity
# ----------------------------------------------------------------------


class TestQueryService:
    def test_unknown_method_fails_at_construction(self, dataset):
        with pytest.raises(ServeError, match="unknown method"):
            QueryService(dataset, methods=["vf9"])

    def test_cold_method_is_a_serve_error(self, service):
        with pytest.raises(ServeError, match="not warm"):
            service.answer("naive", [])

    def test_answers_match_the_batch_engine(
        self, service, queries, batch_answers
    ):
        for query, expected in zip(queries, batch_answers):
            results = service.answer(METHOD, [query])
            assert answers_of(results) == expected

    def test_answer_text_round_trips_the_gfd_body(
        self, service, query_texts, batch_answers
    ):
        document = service.answer_text(METHOD, query_texts[0])
        assert document["method"] == METHOD
        assert document["count"] == 1
        assert document["answers"] == batch_answers[0]
        assert len(document["candidates"]) == 1

    def test_malformed_and_empty_workloads_fail(self, service):
        with pytest.raises(ServeError, match="malformed"):
            service.answer_text(METHOD, "not a gfd file")
        with pytest.raises(ServeError, match="empty"):
            service.answer_text(METHOD, "")

    def test_warm_is_idempotent(self, service):
        states = service.warm()
        assert set(states) == {METHOD}
        assert states[METHOD].index is service.warm()[METHOD].index

    def test_parallel_warm_matches_sequential(self, dataset, queries):
        sequential = QueryService(
            dataset, methods=["naive", METHOD], method_options=OPTIONS
        )
        sequential.warm(jobs=1)
        parallel = QueryService(
            dataset, methods=["naive", METHOD], method_options=OPTIONS
        )
        parallel.warm(jobs=2)
        for method in ("naive", METHOD):
            for query in queries:
                assert answers_of(
                    parallel.answer(method, [query])
                ) == answers_of(sequential.answer(method, [query]))

    def test_store_round_trip_serves_identical_answers(
        self, dataset, queries, batch_answers, tmp_path
    ):
        warmer = QueryService(
            dataset,
            methods=[METHOD],
            method_options=OPTIONS,
            index_store_dir=str(tmp_path / "store"),
        )
        assert not warmer.warm()[METHOD].reused
        clear_stores()  # a "restarted" daemon: fresh process-level cache
        served = QueryService(
            dataset,
            methods=[METHOD],
            method_options=OPTIONS,
            index_store_dir=str(tmp_path / "store"),
        )
        assert served.warm()[METHOD].reused
        for query, expected in zip(queries, batch_answers):
            assert answers_of(served.answer(METHOD, [query])) == expected


# ----------------------------------------------------------------------
# the HTTP face under concurrency
# ----------------------------------------------------------------------


@pytest.fixture()
def live_server(service):
    server = make_server(service, port=0)
    acceptor = threading.Thread(target=server.serve_forever)
    acceptor.start()
    host, port = server.server_address[:2]
    try:
        yield server, f"http://{host}:{port}"
    finally:
        server.shutdown()
        acceptor.join()
        server.server_close()


class TestHttpEndpoints:
    def test_healthz_reports_the_inventory(self, live_server, dataset):
        _, url = live_server
        with urllib.request.urlopen(f"{url}/healthz") as response:
            document = json.loads(response.read())
        assert document["status"] == "ok"
        assert document["graphs"] == len(dataset)
        assert METHOD in document["methods"]
        assert document["methods"][METHOD]["index_bytes"] > 0

    def test_unknown_path_is_404(self, live_server):
        _, url = live_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{url}/nope")
        assert excinfo.value.code == 404

    def test_bad_requests_are_400_not_500(self, live_server, query_texts):
        _, url = live_server
        status, document = post_query(url, "vf9", query_texts[0])
        assert status == 400
        assert "not warm" in document["error"]
        request = urllib.request.Request(
            f"{url}/query", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_concurrent_clients_get_identical_answers(
        self, live_server, query_texts, batch_answers
    ):
        _, url = live_server
        failures: list = []

        def client() -> None:
            for index, text in enumerate(query_texts):
                status, document = post_query(url, METHOD, text)
                if status != 200:
                    failures.append((index, status, document))
                elif document["answers"] != batch_answers[index]:
                    failures.append((index, "diverged", document["answers"]))

        threads = [threading.Thread(target=client) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []

    def test_metrics_endpoint_counts_the_traffic(
        self, live_server, query_texts
    ):
        _, url = live_server
        before = json.loads(
            urllib.request.urlopen(f"{url}/metrics").read()
        )["requests"]
        post_query(url, METHOD, query_texts[0])
        after = json.loads(
            urllib.request.urlopen(f"{url}/metrics").read()
        )["requests"]
        assert after == before + 1


# ----------------------------------------------------------------------
# the load generator
# ----------------------------------------------------------------------


SCENARIO_TEXT = """\
# a comment line
name: stress          # trailing comments too
description: mixed clients
method: ggsx
clients: 3
requests: 18
rps: 0
timeout_seconds: 10
kpi: q50_ms <= 5000
kpi: qps >= 0.5
kpi: errors <= 0
"""


class TestScenarioFormat:
    def test_parse_round_trip(self):
        scenario = parse_scenario(SCENARIO_TEXT)
        assert scenario.name == "stress"
        assert scenario.method == "ggsx"
        assert (scenario.clients, scenario.requests) == (3, 18)
        assert scenario.rps == 0.0
        assert [spec.spec() for spec in scenario.kpis] == [
            "q50_ms <= 5000",
            "qps >= 0.5",
            "errors <= 0",
        ]

    def test_defaults_apply(self):
        scenario = parse_scenario("name: minimal\n")
        assert (scenario.clients, scenario.requests) == (1, 1)
        assert scenario.timeout_seconds == 30.0
        assert scenario.kpis == ()

    def test_errors_are_loud(self):
        for bad, match in [
            ("unknown_key: 3", "unknown scenario key"),
            ("clients: many", "clients expects int"),
            ("clients: 0", "clients must be >= 1"),
            ("kpi: q50_ms < 5", "METRIC"),
            ("kpi: made_up <= 5", "unknown KPI metric"),
            ("kpi: q50_ms <= fast", "must be a number"),
            ("just words", "expected 'key: value'"),
        ]:
            with pytest.raises(ScenarioError, match=match):
                parse_scenario(bad)

    def test_kpi_evaluation(self):
        metrics = {"q50_ms": 12.0, "qps": 80.0}
        outcomes = evaluate_kpis(
            (
                KpiSpec("q50_ms", "<=", 50.0),
                KpiSpec("qps", ">=", 100.0),
            ),
            metrics,
        )
        assert [outcome.passed for outcome in outcomes] == [True, False]
        assert "PASS" in outcomes[0].render()
        assert "FAIL" in outcomes[1].render()

    def test_bench_record_shape(self):
        scenario = parse_scenario(SCENARIO_TEXT)
        result = LoadResult(
            latencies=[0.001, 0.002], errors=0, requests=2, seconds=0.5
        )
        metrics = metrics_of(result)
        record = bench_record(
            scenario, metrics, evaluate_kpis(scenario.kpis, metrics)
        )
        assert record["schema"] == "repro-serve-bench-v2"
        assert record["passed"] is True
        assert len(record["kpis"]) == 3
        json.dumps(record)  # must be JSON-able as-is


class TestLoadGenerator:
    def test_run_load_covers_the_workload(
        self, live_server, query_texts, batch_answers
    ):
        _, url = live_server
        scenario = parse_scenario(SCENARIO_TEXT)
        result = run_load(url, scenario, query_texts)
        assert result.requests == scenario.requests
        assert result.errors == 0
        assert result.divergent_queries() == []
        # 18 requests over 4 queries: every query asked, none diverged.
        assert set(result.answers_by_query) == set(range(len(query_texts)))
        for index, seen in result.answers_by_query.items():
            assert seen == [batch_answers[index]]
        metrics = metrics_of(result)
        assert metrics["requests"] == scenario.requests
        assert metrics["qps"] > 0
        assert metrics["q50_ms"] > 0
        assert metrics["q50_ms"] <= metrics["max_ms"]

    def test_rps_pacing_slows_the_run(self, live_server, query_texts):
        _, url = live_server
        scenario = parse_scenario(
            "name: paced\nmethod: ggsx\nclients: 2\nrequests: 6\nrps: 50\n"
        )
        result = run_load(url, scenario, query_texts)
        # 6 requests at 50 req/s: the last is scheduled at t=100ms.
        assert result.seconds >= 0.1
        assert result.errors == 0

    def test_divergence_detection(self):
        result = LoadResult()
        result.record_answers(0, [[1, 2]])
        result.record_answers(0, [[1, 2]])
        result.record_answers(1, [[1, 2]])
        result.record_answers(1, [[1, 3]])
        assert result.divergent_queries() == [1]

    def test_unreachable_daemon_counts_errors(self, query_texts):
        scenario = parse_scenario(
            "name: down\nmethod: ggsx\nrequests: 2\ntimeout_seconds: 1\n"
        )
        # A port from the ephemeral range nothing listens on.
        result = run_load("http://127.0.0.1:9", scenario, query_texts)
        assert result.errors == result.requests == 2
        assert result.latencies == []


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------


class TestGracefulShutdown:
    def test_run_server_drains_and_returns_zero(self, service, query_texts):
        server = make_server(service, port=0)
        host, port = server.server_address[:2]
        stop = threading.Event()
        announced: list[str] = []
        codes: list[int] = []
        runner = threading.Thread(
            target=lambda: codes.append(
                run_server(
                    server,
                    announce=announced.append,
                    install_signals=False,
                    shutdown_event=stop,
                )
            )
        )
        runner.start()
        url = f"http://{host}:{port}"
        status, _ = post_query(url, METHOD, query_texts[0])
        assert status == 200
        stop.set()
        runner.join(timeout=30)
        assert not runner.is_alive()
        assert codes == [0]
        assert any("serving on" in line for line in announced)
        assert any("served 1 request" in line for line in announced)
        # The socket is released: nothing answers any more.
        status, _ = post_query(url, METHOD, query_texts[0], timeout=2)
        assert status == 0


# ----------------------------------------------------------------------
# the thread-safe store LRU (the concurrency bug this PR fixes)
# ----------------------------------------------------------------------


def _toy_artifact(tag: int) -> IndexArtifact:
    header = ArtifactHeader(
        method="naive",
        index_params=(("tag", tag),),
        dataset_digest=tag,
        num_graphs=1,
        provenance=ArtifactProvenance(build_seconds=0.0, size_bytes=8),
    )
    return IndexArtifact(header=header, payload=tag)


class TestConcurrentStore:
    def test_stampede_keeps_the_lru_bounded(self):
        slots = 8
        store = IndexStore(root=None, memory_items=slots)
        artifacts = [_toy_artifact(tag) for tag in range(32)]
        errors: list[BaseException] = []
        barrier = threading.Barrier(8)

        def worker(seed: int) -> None:
            try:
                barrier.wait()
                for step in range(300):
                    artifact = artifacts[(seed * 7 + step) % len(artifacts)]
                    if step % 3 == 0:
                        store.put(artifact)
                    else:
                        found = store.get(
                            "naive",
                            dict(artifact.header.index_params),
                            artifact.header.dataset_digest,
                        )
                        if found is not None:
                            assert found.payload == artifact.payload
                    assert len(store) <= slots
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(store) <= slots
        assert store.stats.puts > 0
        assert store.stats.memory_hits + store.stats.misses > 0

    def test_concurrent_disk_writers_race_harmlessly(self, tmp_path):
        store = IndexStore(root=tmp_path / "store", memory_items=4)
        artifact = _toy_artifact(1)
        threads = [
            threading.Thread(target=lambda: store.put(artifact))
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.get("naive", {"tag": 1}, 1).payload == 1
        assert len(list((tmp_path / "store").glob("*.idx"))) == 1


# ----------------------------------------------------------------------
# dynamic datasets: POST /update (PR 8)
# ----------------------------------------------------------------------


@pytest.fixture()
def mutable_server(dataset):
    """A private service + live server: update tests mutate state, so
    they must not share the module-scoped fixtures."""
    svc = QueryService(dataset, methods=[METHOD], method_options=OPTIONS)
    svc.warm()
    server = make_server(svc, port=0)
    acceptor = threading.Thread(target=server.serve_forever)
    acceptor.start()
    host, port = server.server_address[:2]
    try:
        yield svc, server, f"http://{host}:{port}"
    finally:
        server.shutdown()
        acceptor.join()
        server.server_close()


def post_raw_update(url, body):
    request = urllib.request.Request(
        f"{url}/update",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestUpdateEndpoint:
    def added_text(self, seed=123):
        extra = generate_dataset(
            GraphGenConfig(
                num_graphs=2, mean_nodes=8, mean_density=0.3, num_labels=3
            ),
            seed=seed,
            name="delta",
        )
        return dumps_dataset(extra), list(extra)

    def test_update_changes_the_inventory(self, mutable_server, dataset):
        svc, _, url = mutable_server
        text, graphs = self.added_text()
        status, document = post_raw_update(
            url, {"add": text, "remove": [0, 3]}
        )
        assert status == 200
        assert document["graphs"] == len(dataset) - 2 + len(graphs)
        assert document["added"] == len(graphs)
        assert document["removed"] == 2
        assert document["methods"][METHOD]["maintenance"] in (
            "incremental",
            "rebuild",
        )
        with urllib.request.urlopen(f"{url}/healthz") as response:
            health = json.loads(response.read())
        assert health["graphs"] == document["graphs"]
        assert svc.updates_applied == 1

    def test_post_update_answers_match_cold_batch_build(
        self, mutable_server, dataset, queries
    ):
        from repro.graphs.dataset import DatasetDelta, apply_delta

        _, _, url = mutable_server
        text, graphs = self.added_text(seed=321)
        status, _ = post_raw_update(url, {"add": text, "remove": [1]})
        assert status == 200
        after = apply_delta(
            dataset, DatasetDelta(added=tuple(graphs), removed=(1,))
        )
        cold = make_method(METHOD, OPTIONS)
        cold.build(as_core_dataset(after))
        for query, text in zip(
            queries, [dumps_dataset(GraphDataset([q])) for q in queries]
        ):
            status, document = post_query(url, METHOD, text)
            assert status == 200
            assert document["answers"] == answers_of([cold.query(query)])

    def test_metrics_gain_update_counters(self, mutable_server):
        _, _, url = mutable_server
        with urllib.request.urlopen(f"{url}/metrics") as response:
            before = json.loads(response.read())
        assert before["staleness"] == 0
        assert before["updates_applied"] == 0
        assert before["updates"]["requests"] == 0
        text, _ = self.added_text()
        status, _ = post_raw_update(url, {"add": text})
        assert status == 200
        with urllib.request.urlopen(f"{url}/metrics") as response:
            after = json.loads(response.read())
        assert after["staleness"] == 0  # nothing in flight
        assert after["updates_applied"] == 1
        assert after["updates"]["requests"] == 1
        assert after["updates"]["errors"] == 0
        # Maintenance latency must not pollute the query quantiles.
        assert after["requests"] == before["requests"]

    def test_bad_updates_are_400(self, mutable_server, dataset):
        _, _, url = mutable_server
        status, document = post_raw_update(url, {})
        assert status == 400
        assert "error" in document
        status, document = post_raw_update(
            url, {"remove": [len(dataset) + 5]}
        )
        assert status == 400
        assert "error" in document
        status, document = post_raw_update(url, {"remove": "nope"})
        assert status == 400
        status, document = post_raw_update(url, {"add": "not a gfd {"})
        assert status == 400

    def test_concurrent_queries_during_updates_stay_coherent(
        self, mutable_server, query_texts
    ):
        """Queries racing an update see either the old or the new
        dataset's answers — never an error, never a torn state."""
        _, _, url = mutable_server
        failures: list = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                status, document = post_query(url, METHOD, query_texts[0])
                if status != 200:
                    failures.append((status, document))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for seed in range(3):
                text, _ = self.added_text(seed=seed)
                status, document = post_raw_update(url, {"add": text})
                assert status == 200
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert failures == []


class TestMixedLoad:
    def test_run_load_interleaves_updates(self, mutable_server, query_texts):
        from repro.core.loadgen import Scenario

        svc, _, url = mutable_server
        extra = generate_dataset(
            GraphGenConfig(
                num_graphs=4, mean_nodes=6, mean_density=0.3, num_labels=3
            ),
            seed=9,
            name="pool",
        )
        update_texts = [dumps_dataset(GraphDataset([g])) for g in extra]
        scenario = Scenario(
            name="mixed",
            method=METHOD,
            clients=3,
            requests=24,
            update_every=6,
        )
        result = run_load(url, scenario, query_texts, update_texts)
        assert result.update_errors == 0
        assert result.updates >= 1
        assert result.updates == svc.updates_applied
        assert len(result.update_latencies) == result.updates
        metrics = metrics_of(result)
        assert metrics["updates"] == result.updates
        assert metrics["update_q50_ms"] > 0

    def test_update_every_requires_update_texts(self, query_texts):
        from repro.core.loadgen import Scenario, ScenarioError

        scenario = Scenario(
            name="mixed", method=METHOD, clients=1, requests=4, update_every=2
        )
        with pytest.raises(ScenarioError):
            run_load("http://127.0.0.1:1", scenario, query_texts, None)
