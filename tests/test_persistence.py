"""Tests for index persistence (save/load with dataset fingerprinting)."""

import warnings

import pytest

from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.indexes import (
    CTIndex,
    GCodeIndex,
    GIndex,
    GraphGrepSXIndex,
    GrapesIndex,
    TreeDeltaIndex,
)
from repro.graphs.dataset import dataset_fingerprint
from repro.indexes.store import IndexFileError, load_index, save_index

FACTORIES = {
    "ggsx": lambda: GraphGrepSXIndex(max_path_edges=3),
    "grapes": lambda: GrapesIndex(max_path_edges=3, workers=2),
    "ctindex": lambda: CTIndex(fingerprint_bits=256, feature_edges=3),
    "gcode": lambda: GCodeIndex(),
    "gindex": lambda: GIndex(max_fragment_edges=3, support_ratio=0.25),
    "tree+delta": lambda: TreeDeltaIndex(max_feature_edges=3, support_ratio=0.25),
}


@pytest.fixture(scope="module")
def dataset():
    config = GraphGenConfig(
        num_graphs=15, mean_nodes=10, mean_density=0.25, num_labels=3
    )
    return generate_dataset(config, seed=55)


@pytest.fixture(scope="module")
def queries(dataset):
    return generate_queries(dataset, 4, 4, seed=1)


@pytest.mark.parametrize("name", list(FACTORIES))
def test_roundtrip_preserves_answers(name, dataset, queries, tmp_path):
    index = FACTORIES[name]()
    index.build(dataset)
    expected = [index.query(q).answers for q in queries]
    path = tmp_path / f"{name}.idx"
    save_index(index, path)
    loaded = load_index(path, expect_dataset=dataset)
    assert loaded.name == name
    assert [loaded.query(q).answers for q in queries] == expected


def test_unbuilt_index_refuses_save(tmp_path):
    with pytest.raises(RuntimeError):
        save_index(GraphGrepSXIndex(), tmp_path / "x.idx")


def test_fingerprint_detects_different_dataset(dataset, tmp_path):
    index = FACTORIES["ggsx"]()
    index.build(dataset)
    path = tmp_path / "a.idx"
    save_index(index, path)
    other = generate_dataset(
        GraphGenConfig(num_graphs=15, mean_nodes=10, mean_density=0.25, num_labels=3),
        seed=56,
    )
    with pytest.raises(IndexFileError, match="different dataset"):
        load_index(path, expect_dataset=other)


def test_load_without_expectation_skips_check(dataset, tmp_path):
    index = FACTORIES["ctindex"]()
    index.build(dataset)
    path = tmp_path / "b.idx"
    save_index(index, path)
    assert load_index(path).name == "ctindex"


def test_garbage_file_rejected(tmp_path):
    path = tmp_path / "garbage.idx"
    path.write_bytes(b"this is not an index")
    with pytest.raises(IndexFileError):
        load_index(path)


def test_fingerprint_stability(dataset):
    assert dataset_fingerprint(dataset) == dataset_fingerprint(dataset)


def test_fingerprint_sensitive_to_content(dataset):
    other = generate_dataset(
        GraphGenConfig(num_graphs=15, mean_nodes=10, mean_density=0.25, num_labels=3),
        seed=56,
    )
    assert dataset_fingerprint(dataset) != dataset_fingerprint(other)


class TestDeprecatedShim:
    def test_shim_warns_once_and_delegates(self):
        import importlib

        from repro.indexes import persistence, store

        importlib.reload(persistence)  # reset the warn-once latch
        with pytest.warns(DeprecationWarning, match="repro.indexes.store"):
            assert persistence.save_index is store.save_index
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second access must not warn
            assert persistence.load_index is store.load_index
            assert persistence.IndexFileError is store.IndexFileError

    def test_shim_rejects_unknown_attribute(self):
        from repro.indexes import persistence

        with pytest.raises(AttributeError):
            persistence.does_not_exist
