"""Soundness properties of the per-method filtering primitives.

Each index's filter rests on a mathematical dominance claim; these
property tests attack each claim directly with query/data pairs where
containment holds *by construction*:

* CT-Index: fingerprint(g) ⊇ fingerprint(q) whenever q ⊆ g;
* gCode: sig(φ(u)) dominates sig(u) for every vertex u under any
  monomorphism φ (label counters + eigenvalue interlacing);
* GGSX/Grapes: path-occurrence counts of g dominate q's;
* gIndex/Tree+Δ: every frequent fragment of q is a fragment of g.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.paths import path_features
from repro.indexes.ctindex import CTIndex
from repro.indexes.gcode import GCodeIndex
from repro.isomorphism.vf2 import find_embedding
from repro.graphs.graph import Graph


@st.composite
def containment_pair(draw):
    """A (query, data) pair with a known embedding: the query is a
    random connected partial subgraph of the data graph."""
    n = draw(st.integers(4, 9))
    labels = [draw(st.sampled_from("ABC")) for _ in range(n)]
    seed = draw(st.integers(0, 2**32 - 1))
    rng = random.Random(seed)
    data = Graph(labels)
    order = list(range(1, n))
    rng.shuffle(order)
    for position, v in enumerate(order):
        anchor = rng.choice(([0] + order[:position]))
        data.add_edge(v, anchor)
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        u, v = rng.sample(range(n), 2)
        if not data.has_edge(u, v):
            data.add_edge(u, v)
    # Query: connected sub-walk of the data graph (vertex-induced on a
    # connected seed region, with a random subset of internal edges
    # kept — still a monomorphic subgraph).
    start = rng.randrange(n)
    region = [start]
    seen = {start}
    while len(region) < draw(st.integers(2, min(5, n))):
        frontier = [
            w for v in region for w in data.neighbors(v) if w not in seen
        ]
        if not frontier:
            break
        nxt = rng.choice(frontier)
        seen.add(nxt)
        region.append(nxt)
    index_of = {v: i for i, v in enumerate(region)}
    query = Graph([data.label(v) for v in region])
    internal = [
        (u, v)
        for u in region
        for v in data.neighbors(u)
        if v in index_of and u < v
    ]
    kept_any = False
    for u, v in internal:
        if rng.random() < 0.8:
            query.add_edge(index_of[u], index_of[v])
            kept_any = True
    if not kept_any and internal:
        u, v = internal[0]
        query.add_edge(index_of[u], index_of[v])
    return query, data


@given(containment_pair())
@settings(max_examples=60, deadline=None)
def test_ctindex_fingerprint_containment(pair):
    query, data = pair
    if find_embedding(query, data) is None:
        return  # construction guarantees containment, but double-check
    index = CTIndex(fingerprint_bits=256, feature_edges=3)
    assert index.fingerprint(data).contains(index.fingerprint(query))


@given(containment_pair())
@settings(max_examples=40, deadline=None)
def test_gcode_signature_dominance_along_embedding(pair):
    query, data = pair
    embedding = find_embedding(query, data)
    if embedding is None:
        return
    index = GCodeIndex(path_depth=2, counter_buckets=16)
    for q_vertex, d_vertex in embedding.items():
        q_sig = index.vertex_signature(query, q_vertex)
        d_sig = index.vertex_signature(data, d_vertex)
        assert d_sig.dominates(q_sig), (
            f"signature dominance violated at {q_vertex}->{d_vertex}"
        )


@given(containment_pair())
@settings(max_examples=60, deadline=None)
def test_path_count_dominance(pair):
    query, data = pair
    if find_embedding(query, data) is None:
        return
    query_features = path_features(query, 3)
    data_features = path_features(data, 3)
    for label, occurrences in query_features.items():
        assert label in data_features
        assert data_features[label].count >= occurrences.count


@given(containment_pair())
@settings(max_examples=25, deadline=None)
def test_query_fragments_are_data_fragments(pair):
    from repro.mining.gspan import mine_frequent_patterns

    query, data = pair
    if find_embedding(query, data) is None:
        return
    if query.size == 0:
        return
    query_fragments = set(mine_frequent_patterns([query], 1, 3))
    data_fragments = set(mine_frequent_patterns([data], 1, 3))
    assert query_fragments <= data_fragments


# ---------------------------------------------------------------------------
# Dynamic datasets: candidate-set supersets must survive every delta
# ---------------------------------------------------------------------------


@st.composite
def delta_plan(draw):
    """A containment pair plus a small delta over a 4-graph dataset
    holding the data graph: filtering must still yield a candidate
    superset of the true answers after the delta is applied."""
    query, data = draw(containment_pair())
    seed = draw(st.integers(0, 2**32 - 1))
    rng = random.Random(seed)
    from tests.testkit import random_graph

    fillers = [random_graph(rng, 3, 7, "ABC") for _ in range(3)]
    removed = tuple(sorted(draw(st.sets(st.integers(1, 3), max_size=2))))
    num_added = draw(st.integers(0, 2))
    added = tuple(random_graph(rng, 3, 7, "ABC") for _ in range(num_added))
    return query, data, fillers, removed, added


@given(delta_plan())
@settings(max_examples=20, deadline=None)
def test_candidate_supersets_hold_after_delta(plan):
    """After update(delta), filter() ⊇ true answers for every method.

    The data graph (id 0) is never removed, so the known embedding
    pins at least one guaranteed answer post-delta.
    """
    from repro.core.runner import make_method
    from repro.graphs.dataset import DatasetDelta, GraphDataset, apply_delta
    from repro.isomorphism.vf2 import SubgraphMatcher

    query, data, fillers, removed, added = plan
    if find_embedding(query, data) is None:
        return
    base = GraphDataset([data] + fillers, name="delta-soundness")
    delta = DatasetDelta(added=added, removed=removed)
    after = apply_delta(base, delta)
    truth = {
        graph_id
        for graph_id in after.all_ids()
        if SubgraphMatcher(query, after[graph_id]).exists()
    }
    assert 0 in truth  # data graph survived and contains the query
    options = {
        "ggsx": {"max_path_edges": 2},
        "grapes": {"max_path_edges": 2, "workers": 1},
        "ctindex": {"fingerprint_bits": 128, "feature_edges": 2},
        "gindex": {"max_fragment_edges": 2, "support_ratio": 0.5},
        "tree+delta": {"max_feature_edges": 2, "support_ratio": 0.5},
        "gcode": {},
        "naive": {},
    }
    for method, config in options.items():
        index = make_method(method, config)
        index.build(base)
        index.update(delta)
        result = index.query(query)
        assert truth <= result.candidates, (
            f"{method}: filtering dropped true answers after the delta"
        )
        assert result.answers == truth, f"{method}: wrong answers after delta"
