"""CLI end-to-end for ``repro serve`` and ``repro bench serve``.

The daemon lifecycle exactly as CI drives it: a real subprocess daemon
warmed from an ``--index-store``, queried over HTTP, drained with
SIGTERM, and gone with exit code 0; and the load generator's
self-hosted path with ``--verify`` holding the serve-vs-batch answer
identity plus a ``BENCH_pr7.json`` trajectory point.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli.main import main
from repro.core.loadgen import post_query
from repro.core.runner import make_method
from repro.core.serve import answers_of
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.generators.queries import generate_queries
from repro.graphs.csr import as_core_dataset
from repro.graphs.dataset import GraphDataset
from repro.graphs.io import write_dataset
from repro.indexes.store import clear_stores

@pytest.fixture(autouse=True)
def _fresh_stores():
    clear_stores()
    yield
    clear_stores()


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-corpus")
    config = GraphGenConfig(
        num_graphs=10, mean_nodes=9, mean_density=0.25, num_labels=3
    )
    dataset = generate_dataset(config, seed=11)
    queries = generate_queries(dataset, 3, 3, seed=5)
    dataset_path = root / "data.gfd"
    queries_path = root / "queries.gfd"
    write_dataset(dataset, dataset_path)
    write_dataset(GraphDataset(queries, name="queries"), queries_path)
    return dataset, queries, dataset_path, queries_path


def write_scenario(path: Path, **overrides) -> Path:
    lines = {
        "name": "cli-test",
        "method": "naive",
        "clients": 2,
        "requests": 8,
        "rps": 0,
        "timeout_seconds": 15,
    }
    lines.update(overrides)
    kpis = lines.pop("kpis", ["q50_ms <= 10000", "qps >= 0.1", "errors <= 0"])
    text = "".join(f"{key}: {value}\n" for key, value in lines.items())
    text += "".join(f"kpi: {kpi}\n" for kpi in kpis)
    path.write_text(text, encoding="utf-8")
    return path


class TestBenchServe:
    def test_self_hosted_run_verifies_and_records(self, corpus, tmp_path, capsys):
        _, _, dataset_path, queries_path = corpus
        scenario = write_scenario(tmp_path / "scenario.txt")
        json_path = tmp_path / "BENCH_pr7.json"
        code = main(
            [
                "bench",
                "--dataset", str(dataset_path),
                "--queries", str(queries_path),
                "--verify",
                "--json", str(json_path),
                "serve", str(scenario),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "verified: daemon answers identical" in out
        assert out.count("PASS") == 3 and "FAIL" not in out
        record = json.loads(json_path.read_text())
        assert record["schema"] == "repro-serve-bench-v2"
        assert record["passed"] is True
        assert record["verified"] is True
        assert record["requests"] == 8
        assert record["errors"] == 0

    def test_failing_kpi_fails_the_command(self, corpus, tmp_path, capsys):
        _, _, dataset_path, queries_path = corpus
        scenario = write_scenario(
            tmp_path / "strict.txt", kpis=["qps >= 1000000"]
        )
        json_path = tmp_path / "bench.json"
        code = main(
            [
                "bench",
                "--dataset", str(dataset_path),
                "--queries", str(queries_path),
                "--json", str(json_path),
                "serve", str(scenario),
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "KPI assertion(s) failed" in captured.err
        # The trajectory point is still written — a failed run is a
        # data point, not a lost one.
        assert json.loads(json_path.read_text())["passed"] is False

    def test_method_flag_overrides_scenario(self, corpus, tmp_path, capsys):
        _, _, dataset_path, queries_path = corpus
        scenario = write_scenario(tmp_path / "scenario.txt", method="ggsx")
        code = main(
            [
                "bench",
                "--dataset", str(dataset_path),
                "--queries", str(queries_path),
                "--method", "naive",
                "--option", "max_path_edges=2",
                "serve", str(scenario),
            ]
        )
        assert code == 0
        assert "against naive" in capsys.readouterr().out

    def test_missing_target_is_a_clear_error(self, corpus, tmp_path, capsys):
        _, _, _, queries_path = corpus
        scenario = write_scenario(tmp_path / "scenario.txt")
        code = main(
            ["bench", "--queries", str(queries_path), "serve", str(scenario)]
        )
        assert code == 2
        assert "--url" in capsys.readouterr().err

    def test_bad_scenario_is_a_clear_error(self, corpus, tmp_path, capsys):
        _, _, dataset_path, queries_path = corpus
        bad = tmp_path / "bad.txt"
        bad.write_text("clients: zero\n", encoding="utf-8")
        code = main(
            [
                "bench",
                "--dataset", str(dataset_path),
                "--queries", str(queries_path),
                "serve", str(bad),
            ]
        )
        assert code == 2
        assert "clients expects int" in capsys.readouterr().err


def spawn_daemon(args, cwd):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=cwd,
        env=env,
    )


def read_announced_url(process, deadline_seconds=120) -> tuple[str, list[str]]:
    """Read daemon stdout until the 'serving on <url>' line."""
    lines: list[str] = []
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                f"daemon exited before announcing: {''.join(lines)}"
            )
        lines.append(line)
        if "serving on http://" in line:
            url = line.split("serving on ", 1)[1].split(" ", 1)[0]
            return url, lines
    raise AssertionError(f"daemon never announced: {''.join(lines)}")


class TestServeDaemon:
    def test_daemon_answers_then_drains_on_sigterm(self, corpus, tmp_path):
        dataset, queries, dataset_path, queries_path = corpus
        process = spawn_daemon(
            [
                str(dataset_path),
                "--method", "naive",
                "--port", "0",
                "--index-store", str(tmp_path / "store"),
            ],
            cwd=tmp_path,
        )
        try:
            url, _ = read_announced_url(process)
            status, document = post_query(
                url, "naive", queries_path.read_text(encoding="utf-8")
            )
            assert status == 200
            index = make_method("naive", {})
            index.build(as_core_dataset(dataset))
            expected = answers_of([index.query(query) for query in queries])
            assert document["answers"] == expected

            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=60)
            tail = process.stdout.read()
            assert code == 0, tail
            assert "draining" in tail
            assert "served 1 request(s)" in tail
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
            process.stdout.close()
        # The store was written through: a second daemon reuses it.
        assert list((tmp_path / "store").glob("*.idx"))

    def test_unknown_method_fails_before_binding(self, corpus, tmp_path):
        _, _, dataset_path, _ = corpus
        process = spawn_daemon(
            [str(dataset_path), "--method", "vf9"], cwd=tmp_path
        )
        out, _ = process.communicate(timeout=60)
        assert process.returncode == 2
        assert "unknown method" in out
