"""Unit tests for the Graph data model (paper Definition 1)."""

import pytest

from repro.graphs.graph import Graph, GraphError

from testkit import cycle_graph, path_graph, star_graph, triangle


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph([])
        assert graph.order == 0 and graph.size == 0

    def test_vertices_from_labels(self):
        graph = Graph(["C", "O", "N"])
        assert graph.order == 3
        assert [graph.label(v) for v in graph.vertices()] == ["C", "O", "N"]

    def test_edges_from_constructor(self):
        graph = Graph("AAB", [(0, 1), (1, 2)])
        assert graph.size == 2
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_from_edge_list_uniform_label(self):
        graph = Graph.from_edge_list(3, "X", [(0, 1)])
        assert graph.label(2) == "X"

    def test_from_edge_list_label_sequence(self):
        graph = Graph.from_edge_list(2, ["A", "B"], [(0, 1)])
        assert graph.label(1) == "B"

    def test_from_edge_list_length_mismatch(self):
        with pytest.raises(GraphError):
            Graph.from_edge_list(3, ["A", "B"], [])

    def test_graph_id_defaults_to_none(self):
        assert Graph(["A"]).graph_id is None


class TestEdgeValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(["A", "B"], [(0, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(["A", "B"], [(0, 1), (1, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            Graph(["A", "B"], [(0, 2)])

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphError):
            Graph(["A", "B"], [(-1, 0)])


class TestAccessors:
    def test_neighbors(self):
        graph = star_graph("C", "HHH")
        assert set(graph.neighbors(0)) == {1, 2, 3}
        assert set(graph.neighbors(1)) == {0}

    def test_degree(self):
        graph = star_graph("C", "HHHH")
        assert graph.degree(0) == 4
        assert graph.degree(1) == 1

    def test_edges_listed_once(self):
        graph = triangle()
        edges = list(graph.edges())
        assert len(edges) == 3
        assert all(u < v for u, v in edges)

    def test_vertices_by_label(self):
        graph = Graph(["A", "B", "A"])
        groups = graph.vertices_by_label()
        assert groups == {"A": [0, 2], "B": [1]}

    def test_label_histogram(self):
        graph = Graph(["A", "B", "A"])
        assert graph.label_histogram() == {"A": 2, "B": 1}

    def test_distinct_labels(self):
        assert Graph(["A", "B", "A"]).distinct_labels() == {"A", "B"}


class TestNeighborsImmutability:
    """``neighbors()`` used to hand out the live internal adjacency set;
    any caller could silently corrupt the graph (PR 6 regression)."""

    def test_neighbors_returns_immutable_snapshot(self):
        graph = star_graph("C", "HH")
        row = graph.neighbors(0)
        assert isinstance(row, tuple)
        assert not hasattr(row, "add") and not hasattr(row, "discard")

    def test_snapshot_survives_later_mutation(self):
        graph = Graph("ABC", [(0, 1)])
        before = graph.neighbors(0)
        graph.add_edge(0, 2)
        assert before == (1,)
        assert set(graph.neighbors(0)) == {1, 2}

    def test_mutating_set_copy_does_not_corrupt_graph(self):
        graph = star_graph("C", "HHH")
        taken = set(graph.neighbors(0))
        taken.clear()
        assert graph.degree(0) == 3
        assert set(graph.neighbors(0)) == {1, 2, 3}

    def test_neighbor_set_is_documented_read_only_view(self):
        graph = star_graph("C", "HH")
        assert graph.neighbor_set(0) == {1, 2}
        assert graph.neighbor_set(1) == {0}


class TestMetrics:
    """Equations (1) and (2) of the paper."""

    def test_density_of_complete_graph_is_one(self):
        graph = Graph("AAAA", [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert graph.density() == pytest.approx(1.0)

    def test_density_of_triangle(self):
        assert triangle().density() == pytest.approx(1.0)

    def test_density_of_path(self):
        # 3 vertices, 2 edges: d = 2*2 / (3*2) = 2/3.
        assert path_graph("AAA").density() == pytest.approx(2 / 3)

    def test_density_of_tiny_graphs_is_zero(self):
        assert Graph(["A"]).density() == 0.0
        assert Graph([]).density() == 0.0

    def test_average_degree(self):
        # Eq. (2): 2|E| / |V|.
        assert path_graph("AAA").average_degree() == pytest.approx(4 / 3)

    def test_average_degree_empty(self):
        assert Graph([]).average_degree() == 0.0


class TestConnectivity:
    def test_connected_path(self):
        assert path_graph("ABCD").is_connected()

    def test_disconnected_graph(self):
        assert not Graph("AB").is_connected()

    def test_empty_graph_not_connected(self):
        assert not Graph([]).is_connected()

    def test_single_vertex_connected(self):
        assert Graph(["A"]).is_connected()

    def test_components(self):
        graph = Graph("AABB", [(0, 1), (2, 3)])
        assert graph.connected_components() == [[0, 1], [2, 3]]

    def test_component_of_isolated_vertices(self):
        assert Graph("AB").connected_components() == [[0], [1]]


class TestSubgraphsAndRelabeling:
    def test_induced_subgraph(self):
        graph = cycle_graph("ABCD")
        sub, mapping = graph.induced_subgraph([0, 1, 2])
        assert sub.order == 3 and sub.size == 2
        assert mapping == [0, 1, 2]
        assert [sub.label(i) for i in range(3)] == ["A", "B", "C"]

    def test_induced_subgraph_keeps_internal_edges_only(self):
        graph = triangle("ABC")
        sub, _ = graph.induced_subgraph([0, 1])
        assert sub.size == 1

    def test_relabeled_preserves_structure(self):
        graph = path_graph("ABC")
        permuted = graph.relabeled([2, 0, 1])
        assert permuted.label(2) == "A"
        assert permuted.has_edge(2, 0) and permuted.has_edge(0, 1)

    def test_relabeled_requires_permutation(self):
        with pytest.raises(GraphError):
            path_graph("AB").relabeled([0, 0])

    def test_copy_is_deep_for_structure(self):
        graph = path_graph("ABC")
        clone = graph.copy()
        clone.add_edge(0, 2)
        assert not graph.has_edge(0, 2)
        assert clone.has_edge(0, 2)

    def test_copy_preserves_graph_id(self):
        graph = path_graph("AB")
        graph.graph_id = 17
        assert graph.copy().graph_id == 17


class TestEqualityAndSignature:
    def test_structural_equality(self):
        assert path_graph("AB") == path_graph("AB")

    def test_label_difference_breaks_equality(self):
        assert path_graph("AB") != path_graph("AC")

    def test_signature_invariant_under_edge_order(self):
        a = Graph("ABC", [(0, 1), (1, 2)])
        b = Graph("ABC", [(1, 2), (0, 1)])
        assert a.signature() == b.signature()

    def test_signature_differs_for_different_structures(self):
        assert triangle("ABC").signature() != path_graph("ABC").signature()

    def test_hashable(self):
        assert len({path_graph("AB"), path_graph("AB")}) == 1

    def test_repr_mentions_counts(self):
        assert "|V|=3" in repr(triangle())
