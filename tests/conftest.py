"""Shared fixtures for the unit-test suite.

The graph builders and networkx bridges formerly defined here moved to
:mod:`testkit` (``tests/testkit.py``), which is importable from both
``tests/`` and ``benchmarks/`` under pytest's importlib import mode.
Only fixtures live in conftest now.
"""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    """A per-test deterministic RNG."""
    return random.Random(0xC0FFEE)
