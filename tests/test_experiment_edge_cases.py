"""Edge cases of the experiment machinery: timeouts in figures,
infeasible workloads, and method-specific details."""

from dataclasses import replace

import pytest

from repro.core.experiments import nodes_sweep
from repro.core.presets import CI_PROFILE
from repro.core.report import breaking_point, render_sweep
from repro.core.runner import STATUS_TIMEOUT
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.indexes import CTIndex, GCodeIndex, GrapesIndex
from repro.generators.queries import generate_queries


class TestTimeoutsInFigures:
    @pytest.fixture(scope="class")
    def strangled_sweep(self):
        """A sweep where gindex gets an impossible budget, so every
        point records a build timeout."""
        profile = replace(
            CI_PROFILE,
            nodes_values=(8, 10),
            default_num_graphs=6,
            default_nodes=8,
            default_density=0.25,
            default_labels=2,
            query_sizes=(3,),
            queries_per_size=2,
            build_budget_seconds=0.0005,
            query_budget_seconds=5.0,
            method_configs={
                "gindex": {"max_fragment_edges": 4, "support_ratio": 0.2},
            },
        )
        return nodes_sweep(profile)

    def test_timeout_recorded_as_missing_point(self, strangled_sweep):
        series = strangled_sweep.indexing_time()
        assert all(value is None for _, value in series["gindex"])

    def test_timeout_cells_have_status(self, strangled_sweep):
        for cell in strangled_sweep.cells.values():
            assert cell.build_status == STATUS_TIMEOUT

    def test_rendered_figure_shows_missing_marker(self, strangled_sweep):
        assert "—" in render_sweep(strangled_sweep, "2")

    def test_breaking_point_none_when_never_started(self, strangled_sweep):
        # Missing from the very first point: no "breaking point" inside
        # the sweep (the method never produced data to break from).
        assert breaking_point(strangled_sweep.indexing_time(), "gindex") is None


class TestInfeasibleWorkloads:
    def test_oversized_query_sizes_skipped(self):
        """Query sizes the dataset cannot produce are dropped from the
        workloads rather than failing the sweep."""
        profile = replace(
            CI_PROFILE,
            nodes_values=(6,),
            default_num_graphs=5,
            default_nodes=6,
            default_density=0.25,
            default_labels=2,
            query_sizes=(2, 500),  # 500-edge queries are impossible
            queries_per_size=2,
            build_budget_seconds=10.0,
            query_budget_seconds=10.0,
            method_configs={"ggsx": {"max_path_edges": 2}},
        )
        sweep = nodes_sweep(profile)
        cell = sweep.cells[(6, "ggsx")]
        assert 2 in cell.per_size
        assert 500 not in cell.per_size


class TestMethodDetails:
    @pytest.fixture(scope="class")
    def dataset(self):
        config = GraphGenConfig(
            num_graphs=12, mean_nodes=10, mean_density=0.25, num_labels=3
        )
        return generate_dataset(config, seed=8)

    def test_ctindex_multiple_bits_per_feature(self, dataset):
        single = CTIndex(fingerprint_bits=512, feature_edges=2, bits_per_feature=1)
        double = CTIndex(fingerprint_bits=512, feature_edges=2, bits_per_feature=2)
        single.build(dataset)
        double.build(dataset)
        queries = generate_queries(dataset, 4, 4, seed=1)
        # More bits per feature: equal or stronger filtering (Bloom),
        # and identical answers either way.
        for query in queries:
            single_result = single.query(query)
            double_result = double.query(query)
            assert double_result.answers == single_result.answers

    def test_ctindex_saturation_detail(self, dataset):
        index = CTIndex(fingerprint_bits=64, feature_edges=3)
        report = index.build(dataset)
        assert 0.0 < report.details["avg_saturation"] <= 1.0

    def test_grapes_filter_then_verify_component_cache(self, dataset):
        index = GrapesIndex(max_path_edges=2, workers=1)
        index.build(dataset)
        queries = generate_queries(dataset, 3, 4, seed=2)
        for query in queries:
            candidates = index.filter(query)
            # Verify twice: the cache from filter() must not corrupt a
            # second verification pass.
            first = index.verify(query, candidates)
            second = index.verify(query, candidates)
            assert first == second

    def test_gcode_code_for_graph_without_edges(self):
        from repro.graphs.dataset import GraphDataset
        from repro.graphs.graph import Graph

        dataset = GraphDataset([Graph(["A", "B"]), Graph(["A"])])
        index = GCodeIndex()
        index.build(dataset)
        assert index.filter(Graph(["A"])) == {0, 1}
        assert index.query(Graph(["A", "B"])).answers == {0}
