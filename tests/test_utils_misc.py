"""Unit tests for sizeof, timing, rng, hashing and budget utilities."""

import time

import numpy as np
import pytest

from repro.utils.budget import Budget, BudgetExceeded
from repro.utils.hashing import hash_positions, stable_hash
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.sizeof import deep_sizeof
from repro.utils.timing import Timer


class TestDeepSizeof:
    def test_larger_container_is_larger(self):
        assert deep_sizeof(list(range(1000))) > deep_sizeof(list(range(10)))

    def test_nested_structures_counted(self):
        flat = deep_sizeof([1, 2, 3])
        nested = deep_sizeof([[1, 2, 3], [4, 5, 6]])
        assert nested > flat

    def test_shared_objects_counted_once(self):
        payload = ["x" * 10_000]
        shared = [payload, payload]
        duplicated = [["x" * 10_000], ["y" * 10_000]]
        assert deep_sizeof(shared) < deep_sizeof(duplicated)

    def test_dict_keys_and_values_counted(self):
        small = deep_sizeof({})
        big = deep_sizeof({"k" * 100: "v" * 1000})
        assert big > small + 1000

    def test_numpy_buffer_counted(self):
        small = deep_sizeof(np.zeros(10))
        big = deep_sizeof(np.zeros(10_000))
        assert big - small > 70_000

    def test_slots_instances_counted(self):
        class Slotted:
            __slots__ = ("payload",)

            def __init__(self):
                self.payload = "z" * 5000

        assert deep_sizeof(Slotted()) > 5000

    def test_bitset_payload_counted(self):
        from repro.utils.bitset import Bitset

        small = deep_sizeof(Bitset(64))
        big = deep_sizeof(Bitset(1 << 16))
        assert big - small >= (1 << 16) // 8 - 64


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_restart(self):
        timer = Timer()
        with timer:
            pass
        timer.restart()
        assert timer.lap() >= 0.0

    def test_lap_requires_start(self):
        with pytest.raises(RuntimeError):
            Timer().lap()


class TestRng:
    def test_make_rng_from_int_is_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_make_rng_passthrough(self):
        rng = make_rng(1)
        assert make_rng(rng) is rng

    def test_spawn_rngs_independent_and_reproducible(self):
        children_a = spawn_rngs(make_rng(7), 3)
        children_b = spawn_rngs(make_rng(7), 3)
        for a, b in zip(children_a, children_b):
            assert a.random() == b.random()

    def test_spawn_rngs_distinct_streams(self):
        children = spawn_rngs(make_rng(7), 2)
        assert children[0].random() != children[1].random()

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(make_rng(0), -1)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("A", "B")) == stable_hash(("A", "B"))

    def test_distinct_inputs_differ(self):
        assert stable_hash(("A", "B")) != stable_hash(("B", "A"))

    def test_salt_changes_hash(self):
        assert stable_hash("x") != stable_hash("x", salt=b"s")

    def test_hash_positions_in_range(self):
        for position in hash_positions(("A", "B", "C"), width=512, count=8):
            assert 0 <= position < 512

    def test_hash_positions_deterministic(self):
        assert hash_positions("f", 100, 3) == hash_positions("f", 100, 3)

    def test_hash_positions_validation(self):
        with pytest.raises(ValueError):
            hash_positions("f", 0, 1)
        with pytest.raises(ValueError):
            hash_positions("f", 10, 0)


class TestBudget:
    def test_unlimited_never_raises(self):
        budget = Budget(None)
        budget.check()
        assert not budget.exceeded
        assert budget.remaining() == float("inf")

    def test_expired_budget_raises(self):
        budget = Budget(0.0)
        time.sleep(0.002)
        with pytest.raises(BudgetExceeded):
            budget.check()

    def test_exceeded_flag(self):
        budget = Budget(0.0)
        time.sleep(0.002)
        assert budget.exceeded

    def test_fresh_budget_does_not_raise(self):
        Budget(60.0).check()

    def test_remaining_decreases(self):
        budget = Budget(60.0)
        first = budget.remaining()
        time.sleep(0.002)
        assert budget.remaining() < first

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Budget(-1.0)

    def test_phase_in_message(self):
        budget = Budget(0.0, phase="gindex build")
        time.sleep(0.002)
        with pytest.raises(BudgetExceeded, match="gindex build"):
            budget.check()

    def test_restarted_gets_fresh_deadline(self):
        budget = Budget(0.05)
        time.sleep(0.06)
        assert budget.exceeded
        assert not budget.restarted().exceeded

    def test_elapsed_monotone(self):
        budget = Budget(None)
        first = budget.elapsed()
        time.sleep(0.002)
        assert budget.elapsed() > first
