"""Differential-update harness for dynamic datasets (PR 8).

The incremental-maintenance contract is strict: after ``update(delta)``,
every index must export a payload **byte-identical** (under pickle) to a
cold build over the post-delta dataset, and answer queries identically.
Tree+Δ and Grapes maintain their structures in place; the other methods
fall back to a rebuild — the contract is the same either way, so one
harness drives all seven.
"""

import math
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import make_method
from repro.generators.graphgen import GraphGenConfig, generate_dataset
from repro.graphs.dataset import (
    DatasetDelta,
    GraphDataset,
    apply_delta,
    dataset_fingerprint,
    delta_fingerprint,
    removal_remap,
)
from repro.graphs.graph import Graph
from tests.testkit import path_graph, random_graph, triangle

#: Method name -> constructor options tuned for fast small-data tests.
FAST_OPTIONS = {
    "naive": {},
    "ggsx": {"max_path_edges": 2},
    "grapes": {"max_path_edges": 2, "workers": 2},
    "ctindex": {"fingerprint_bits": 64, "feature_edges": 2},
    "gcode": {},
    "gindex": {"max_fragment_edges": 2, "support_ratio": 0.4},
    "tree+delta": {"max_feature_edges": 2, "support_ratio": 0.4},
}

ALL_METHODS = sorted(FAST_OPTIONS)

#: Methods with true in-place maintenance (everything else rebuilds).
INCREMENTAL_METHODS = {"grapes", "tree+delta"}


def small_dataset(num_graphs=6, seed=5):
    config = GraphGenConfig(
        num_graphs=num_graphs, mean_nodes=8, mean_density=0.3, num_labels=3
    )
    return generate_dataset(config, seed=seed, name="incr-base")


def extra_graphs(count, seed=77):
    rng = random.Random(seed)
    return tuple(
        random_graph(rng, min_vertices=4, max_vertices=8, labels=("L0", "L1", "L2"))
        for _ in range(count)
    )


def payload_bytes(index):
    return pickle.dumps(index.export_payload(), pickle.HIGHEST_PROTOCOL)


def cold_payload_bytes(method, dataset, options=None):
    cold = make_method(method, FAST_OPTIONS[method] if options is None else options)
    cold.build(dataset)
    return payload_bytes(cold), cold


# ---------------------------------------------------------------------------
# DatasetDelta / apply_delta primitives
# ---------------------------------------------------------------------------


class TestDatasetDelta:
    def test_removed_is_normalized_sorted(self):
        delta = DatasetDelta(removed=(3, 1, 2))
        assert delta.removed == (1, 2, 3)

    def test_rejects_negative_duplicate_and_non_int_ids(self):
        with pytest.raises(ValueError):
            DatasetDelta(removed=(-1,))
        with pytest.raises(ValueError):
            DatasetDelta(removed=(2, 2))
        with pytest.raises(TypeError):
            DatasetDelta(removed=(True,))
        with pytest.raises(TypeError):
            DatasetDelta(removed=("0",))

    def test_truthiness_tracks_content(self):
        assert not DatasetDelta()
        assert DatasetDelta(added=(triangle(),))
        assert DatasetDelta(removed=(0,))

    def test_apply_delta_orders_survivors_then_added(self):
        base = small_dataset(num_graphs=5)
        added = extra_graphs(2)
        result = apply_delta(base, DatasetDelta(added=added, removed=(1, 3)))
        assert len(result) == 5
        survivors = [0, 2, 4]
        for new_id, old_id in enumerate(survivors):
            assert result[new_id].labels == base[old_id].labels
        for offset, graph in enumerate(added):
            assert result[3 + offset].labels == graph.labels

    def test_apply_delta_rejects_out_of_range_removal(self):
        base = small_dataset(num_graphs=3)
        with pytest.raises(ValueError):
            apply_delta(base, DatasetDelta(removed=(3,)))

    def test_apply_delta_copies_graphs(self):
        base = GraphDataset([path_graph("ABC"), triangle()])
        result = apply_delta(base, DatasetDelta())
        assert result[0] is not base[0]
        fingerprint = dataset_fingerprint(base)
        result[0].add_edge(0, 2)  # the path lacks this closing edge
        assert dataset_fingerprint(base) == fingerprint

    def test_delta_fingerprint_is_content_addressed(self):
        graphs = extra_graphs(2)
        a = DatasetDelta(added=graphs, removed=(0, 2))
        b = DatasetDelta(added=extra_graphs(2), removed=(2, 0))
        assert delta_fingerprint(a) == delta_fingerprint(b)
        c = DatasetDelta(added=graphs, removed=(0,))
        assert delta_fingerprint(a) != delta_fingerprint(c)
        assert delta_fingerprint(a) != delta_fingerprint(DatasetDelta())

    def test_removal_remap(self):
        remap = removal_remap(5, (1, 3))
        assert remap == {0: 0, 2: 1, 4: 2}
        assert removal_remap(3, ()) == {0: 0, 1: 1, 2: 2}
        assert removal_remap(2, (0, 1)) == {}


# ---------------------------------------------------------------------------
# update(): contract plumbing
# ---------------------------------------------------------------------------


class TestUpdateContract:
    def test_update_requires_built_index(self):
        index = make_method("naive")
        with pytest.raises(RuntimeError):
            index.update(DatasetDelta(added=(triangle(),)))

    def test_update_validates_precomputed_dataset(self):
        index = make_method("naive")
        index.build(small_dataset(num_graphs=3))
        wrong = small_dataset(num_graphs=5, seed=9)
        with pytest.raises(ValueError):
            index.update(DatasetDelta(added=(triangle(),)), new_dataset=wrong)

    def test_fallback_methods_tag_rebuild_maintenance(self):
        index = make_method("naive")
        index.build(small_dataset(num_graphs=3))
        report = index.update(DatasetDelta(added=(triangle(),)))
        assert report.details["maintenance"] == "rebuild"

    @pytest.mark.parametrize("method", sorted(INCREMENTAL_METHODS))
    def test_incremental_methods_tag_incremental_maintenance(self, method):
        index = make_method(method, FAST_OPTIONS[method])
        index.build(small_dataset())
        report = index.update(DatasetDelta(added=(triangle(),), removed=(0,)))
        assert report.details["maintenance"] == "incremental"

    def test_treedelta_declines_when_min_support_moves(self):
        # 6 -> 9 graphs at ratio 0.4 moves the absolute min support
        # (ceil(2.4)=3 -> ceil(3.6)=4): the table update is no longer
        # exact, so the index must rebuild rather than guess.
        index = make_method("tree+delta", FAST_OPTIONS["tree+delta"])
        index.build(small_dataset(num_graphs=6))
        report = index.update(DatasetDelta(added=extra_graphs(3)))
        assert report.details["maintenance"] == "rebuild"
        old_min = max(1, math.ceil(0.4 * 6))
        new_min = max(1, math.ceil(0.4 * 9))
        assert old_min != new_min


# ---------------------------------------------------------------------------
# Differential harness: update == cold rebuild, byte for byte
# ---------------------------------------------------------------------------


def scripted_deltas(base_len):
    """A fixed gauntlet: mixed, empty, delete-everything, regrow."""
    pool = extra_graphs(6, seed=123)
    return [
        DatasetDelta(added=pool[:2], removed=(0, base_len - 1)),
        DatasetDelta(),
        DatasetDelta(added=pool[2:3], removed=(1,)),
        # delete-everything: base_len - 2 + 2 + 1 - 1 graphs remain
        DatasetDelta(removed=tuple(range(base_len))),
        DatasetDelta(added=pool[3:5]),
    ]


@pytest.mark.parametrize("method", ALL_METHODS)
def test_scripted_sequence_matches_cold_build(method):
    base = small_dataset()
    index = make_method(method, FAST_OPTIONS[method])
    index.build(base)
    dataset = base
    query = path_graph(["L0", "L1"])
    for step, delta in enumerate(scripted_deltas(len(base))):
        dataset = apply_delta(dataset, delta)
        index.update(delta)
        cold_bytes, cold = cold_payload_bytes(method, dataset)
        assert payload_bytes(index) == cold_bytes, (
            f"{method}: payload diverged from cold build at step {step}"
        )
        live = index.query(query)
        want = cold.query(query)
        assert live.candidates == want.candidates
        assert live.answers == want.answers


@st.composite
def delta_sequences(draw):
    """1-3 deltas over a known base size, tracking the evolving length.

    Covers the required shapes: pure insert, pure delete, mixed
    insert+delete, the empty delta, and delete-everything (when the
    drawn removal count hits the whole dataset).
    """
    base_len = draw(st.integers(3, 6))
    length = base_len
    pool = list(extra_graphs(9, seed=draw(st.integers(0, 2**16))))
    deltas = []
    for _ in range(draw(st.integers(1, 3))):
        num_added = draw(st.integers(0, 3))
        added = tuple(pool.pop() for _ in range(num_added))
        num_removed = draw(st.integers(0, length))
        removed = tuple(
            draw(
                st.lists(
                    st.integers(0, length - 1),
                    min_size=num_removed,
                    max_size=num_removed,
                    unique=True,
                )
            )
            if length
            else []
        )
        deltas.append(DatasetDelta(added=added, removed=removed))
        length = length - len(removed) + len(added)
    return base_len, deltas


@pytest.mark.parametrize("method", ALL_METHODS)
@settings(max_examples=8, deadline=None)
@given(data=delta_sequences())
def test_random_sequences_match_cold_build(method, data):
    base_len, deltas = data
    base = small_dataset(num_graphs=base_len)
    index = make_method(method, FAST_OPTIONS[method])
    index.build(base)
    dataset = base
    query = path_graph(["L1", "L2"])
    for delta in deltas:
        dataset = apply_delta(dataset, delta)
        index.update(delta)
        cold_bytes, cold = cold_payload_bytes(method, dataset)
        assert payload_bytes(index) == cold_bytes
        live = index.query(query)
        want = cold.query(query)
        assert live.candidates == want.candidates
        assert live.answers == want.answers


# ---------------------------------------------------------------------------
# Tree+Δ: query-time Δ-table state never leaks into update/export
# ---------------------------------------------------------------------------


class TestTreeDeltaIsolation:
    #: max_feature_edges >= 3 so simple cycles qualify as Δ features,
    #: and a low support ratio so the query's tree fragments are all
    #: frequent (the Δ stage only runs past a real tree candidate set).
    OPTIONS = {"max_feature_edges": 3, "support_ratio": 0.15}

    def build_with_delta_state(self):
        index = make_method("tree+delta", self.OPTIONS)
        base = small_dataset()
        index.build(base)
        # A cyclic query exercises the Δ-table adoption path: graph
        # features beyond the tree skeleton get memoized at query time.
        cyclic = triangle(("L0", "L0", "L0"))
        index.query(cyclic)
        return index, base

    def test_export_excludes_query_time_delta_state(self):
        index, base = self.build_with_delta_state()
        cold_bytes, _ = cold_payload_bytes("tree+delta", base, self.OPTIONS)
        assert payload_bytes(index) == cold_bytes

    def test_update_after_queries_matches_cold_build(self):
        index, base = self.build_with_delta_state()
        delta = DatasetDelta(added=extra_graphs(1), removed=(2,))
        dataset = apply_delta(base, delta)
        index.update(delta)
        cold_bytes, cold = cold_payload_bytes("tree+delta", dataset, self.OPTIONS)
        assert payload_bytes(index) == cold_bytes
        # Interleave further queries and a second update: answers and
        # payloads must stay pinned to the cold equivalents.
        cyclic = triangle(("L1", "L1", "L1"))
        assert index.query(cyclic).answers == cold.query(cyclic).answers
        second = DatasetDelta(added=extra_graphs(1, seed=31))
        dataset = apply_delta(dataset, second)
        index.update(second)
        cold_bytes, _ = cold_payload_bytes("tree+delta", dataset, self.OPTIONS)
        assert payload_bytes(index) == cold_bytes

    def test_adopted_delta_entries_answer_like_cold_index(self):
        index, base = self.build_with_delta_state()
        assert index._delta_ids  # the cyclic query populated the table
        _, cold = cold_payload_bytes("tree+delta", base, self.OPTIONS)
        queries = (triangle(("L0", "L0", "L0")), path_graph(["L0", "L1", "L2"]))
        for query in queries:
            live = index.query(query)
            want = cold.query(query)
            assert live.candidates == want.candidates
            assert live.answers == want.answers


# ---------------------------------------------------------------------------
# Maintenance across graph cores
# ---------------------------------------------------------------------------


def test_update_accepts_csr_added_graphs():
    # CSR graphs have no .copy(); apply_delta must still deep-copy them.
    from repro.graphs.csr import CSRGraph

    base = small_dataset(num_graphs=4)
    dense = Graph(["L0", "L1", "L2"])
    dense.add_edge(0, 1)
    dense.add_edge(1, 2)
    csr = CSRGraph.from_graph(dense)
    delta = DatasetDelta(added=(csr,))
    result = apply_delta(base, delta)
    assert tuple(result[4].labels) == tuple(dense.labels)
    index = make_method("grapes", FAST_OPTIONS["grapes"])
    index.build(base)
    index.update(delta)
    cold = make_method("grapes", FAST_OPTIONS["grapes"])
    cold.build(result)
    assert payload_bytes(index) == pickle.dumps(
        cold.export_payload(), pickle.HIGHEST_PROTOCOL
    )
