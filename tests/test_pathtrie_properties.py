"""Property tests for the shared path trie (GGSX/Grapes substrate)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.indexes.pathtrie import PathTrie

LABEL = st.sampled_from("ABC")
PATH = st.lists(LABEL, min_size=1, max_size=4).map(tuple)
INSERTION = st.tuples(
    PATH,
    st.integers(min_value=0, max_value=9),   # graph id
    st.integers(min_value=1, max_value=5),   # count
    st.sets(st.integers(min_value=0, max_value=20), max_size=3),  # starts
)


@given(st.lists(INSERTION, max_size=40))
def test_lookup_returns_accumulated_counts(insertions):
    trie = PathTrie(keep_locations=True)
    expected_counts: dict = {}
    expected_starts: dict = {}
    for path, graph_id, count, starts in insertions:
        trie.insert(path, graph_id, count, starts)
        expected_counts.setdefault(path, {}).setdefault(graph_id, 0)
        expected_counts[path][graph_id] += count
        expected_starts.setdefault(path, {}).setdefault(graph_id, set()).update(starts)
    for path, per_graph in expected_counts.items():
        node = trie.lookup(path)
        assert node is not None
        assert node.counts == per_graph
        assert node.starts == expected_starts[path]


@given(st.lists(INSERTION, max_size=30), st.lists(INSERTION, max_size=30))
def test_merge_equals_sequential_insertion(left_insertions, right_insertions):
    """Merging shard tries == inserting everything into one trie,
    provided the shards cover disjoint graph ids (as Grapes' parallel
    build guarantees).  Offsetting the right shard's ids enforces
    disjointness."""
    offset = 10
    merged = PathTrie(keep_locations=True)
    right = PathTrie(keep_locations=True)
    reference = PathTrie(keep_locations=True)
    for path, graph_id, count, starts in left_insertions:
        merged.insert(path, graph_id, count, starts)
        reference.insert(path, graph_id, count, starts)
    for path, graph_id, count, starts in right_insertions:
        right.insert(path, graph_id + offset, count, starts)
        reference.insert(path, graph_id + offset, count, starts)
    merged.merge(right)

    assert merged.node_count() == reference.node_count()
    assert merged.num_features == reference.num_features
    paths = {p for p, *_ in left_insertions} | {p for p, *_ in right_insertions}
    for path in paths:
        got, want = merged.lookup(path), reference.lookup(path)
        assert got is not None and want is not None
        assert got.counts == want.counts
        assert got.starts == want.starts


@given(st.lists(PATH, max_size=30))
def test_num_features_counts_distinct_terminals(paths):
    trie = PathTrie()
    for path in paths:
        trie.insert(path, 0, 1)
    assert trie.num_features == len(set(paths))


@given(st.lists(PATH, min_size=1, max_size=20))
def test_unseen_paths_not_found(paths):
    trie = PathTrie()
    for path in paths:
        trie.insert(path, 0, 1)
    probe = ("Z",) * 3
    assert trie.lookup(probe) is None
